/root/repo/target/release/deps/cbp_core-8b91aecbea6cd804.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs

/root/repo/target/release/deps/libcbp_core-8b91aecbea6cd804.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs

/root/repo/target/release/deps/libcbp_core-8b91aecbea6cd804.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/metrics.rs:
crates/core/src/scenario.rs:
crates/core/src/sim.rs:
crates/core/src/task.rs:
