/root/repo/target/release/deps/cbp-175fb67bcb60bfd8.d: src/lib.rs

/root/repo/target/release/deps/libcbp-175fb67bcb60bfd8.rlib: src/lib.rs

/root/repo/target/release/deps/libcbp-175fb67bcb60bfd8.rmeta: src/lib.rs

src/lib.rs:
