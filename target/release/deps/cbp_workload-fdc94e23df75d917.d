/root/repo/target/release/deps/cbp_workload-fdc94e23df75d917.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/facebook.rs crates/workload/src/google.rs crates/workload/src/kmeans.rs crates/workload/src/mapreduce.rs crates/workload/src/spec.rs

/root/repo/target/release/deps/libcbp_workload-fdc94e23df75d917.rlib: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/facebook.rs crates/workload/src/google.rs crates/workload/src/kmeans.rs crates/workload/src/mapreduce.rs crates/workload/src/spec.rs

/root/repo/target/release/deps/libcbp_workload-fdc94e23df75d917.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/facebook.rs crates/workload/src/google.rs crates/workload/src/kmeans.rs crates/workload/src/mapreduce.rs crates/workload/src/spec.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/facebook.rs:
crates/workload/src/google.rs:
crates/workload/src/kmeans.rs:
crates/workload/src/mapreduce.rs:
crates/workload/src/spec.rs:
