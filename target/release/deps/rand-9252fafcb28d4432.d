/root/repo/target/release/deps/rand-9252fafcb28d4432.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-9252fafcb28d4432.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-9252fafcb28d4432.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
