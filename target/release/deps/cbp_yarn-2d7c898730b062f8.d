/root/repo/target/release/deps/cbp_yarn-2d7c898730b062f8.d: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

/root/repo/target/release/deps/libcbp_yarn-2d7c898730b062f8.rlib: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

/root/repo/target/release/deps/libcbp_yarn-2d7c898730b062f8.rmeta: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

crates/yarn/src/lib.rs:
crates/yarn/src/components.rs:
crates/yarn/src/config.rs:
crates/yarn/src/report.rs:
crates/yarn/src/sim.rs:
