/root/repo/target/release/deps/serde_json-180e00a185bb6c31.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-180e00a185bb6c31.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-180e00a185bb6c31.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
