/root/repo/target/release/deps/cbp_simkit-b894ed744056d805.d: crates/simkit/src/lib.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/rng.rs crates/simkit/src/time.rs crates/simkit/src/dist.rs crates/simkit/src/stats.rs crates/simkit/src/stats_p2.rs crates/simkit/src/units.rs

/root/repo/target/release/deps/libcbp_simkit-b894ed744056d805.rlib: crates/simkit/src/lib.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/rng.rs crates/simkit/src/time.rs crates/simkit/src/dist.rs crates/simkit/src/stats.rs crates/simkit/src/stats_p2.rs crates/simkit/src/units.rs

/root/repo/target/release/deps/libcbp_simkit-b894ed744056d805.rmeta: crates/simkit/src/lib.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/rng.rs crates/simkit/src/time.rs crates/simkit/src/dist.rs crates/simkit/src/stats.rs crates/simkit/src/stats_p2.rs crates/simkit/src/units.rs

crates/simkit/src/lib.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/event.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/time.rs:
crates/simkit/src/dist.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/stats_p2.rs:
crates/simkit/src/units.rs:
