/root/repo/target/release/deps/rand_distr-557c48c2ae3429ed.d: /tmp/stubs/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-557c48c2ae3429ed.rlib: /tmp/stubs/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-557c48c2ae3429ed.rmeta: /tmp/stubs/rand_distr/src/lib.rs

/tmp/stubs/rand_distr/src/lib.rs:
