/root/repo/target/release/deps/cbp_obs-3c73e8b2e0d5a3dc.d: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libcbp_obs-3c73e8b2e0d5a3dc.rlib: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libcbp_obs-3c73e8b2e0d5a3dc.rmeta: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/diff.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
