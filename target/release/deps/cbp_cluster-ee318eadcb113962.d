/root/repo/target/release/deps/cbp_cluster-ee318eadcb113962.d: crates/cluster/src/lib.rs crates/cluster/src/energy.rs crates/cluster/src/node.rs crates/cluster/src/resources.rs

/root/repo/target/release/deps/libcbp_cluster-ee318eadcb113962.rlib: crates/cluster/src/lib.rs crates/cluster/src/energy.rs crates/cluster/src/node.rs crates/cluster/src/resources.rs

/root/repo/target/release/deps/libcbp_cluster-ee318eadcb113962.rmeta: crates/cluster/src/lib.rs crates/cluster/src/energy.rs crates/cluster/src/node.rs crates/cluster/src/resources.rs

crates/cluster/src/lib.rs:
crates/cluster/src/energy.rs:
crates/cluster/src/node.rs:
crates/cluster/src/resources.rs:
