/root/repo/target/release/deps/cbp_dfs-ceb192b4e7bbf4c5.d: crates/dfs/src/lib.rs crates/dfs/src/cluster.rs crates/dfs/src/namespace.rs

/root/repo/target/release/deps/libcbp_dfs-ceb192b4e7bbf4c5.rlib: crates/dfs/src/lib.rs crates/dfs/src/cluster.rs crates/dfs/src/namespace.rs

/root/repo/target/release/deps/libcbp_dfs-ceb192b4e7bbf4c5.rmeta: crates/dfs/src/lib.rs crates/dfs/src/cluster.rs crates/dfs/src/namespace.rs

crates/dfs/src/lib.rs:
crates/dfs/src/cluster.rs:
crates/dfs/src/namespace.rs:
