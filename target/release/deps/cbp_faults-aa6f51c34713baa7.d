/root/repo/target/release/deps/cbp_faults-aa6f51c34713baa7.d: crates/faults/src/lib.rs

/root/repo/target/release/deps/libcbp_faults-aa6f51c34713baa7.rlib: crates/faults/src/lib.rs

/root/repo/target/release/deps/libcbp_faults-aa6f51c34713baa7.rmeta: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
