/root/repo/target/release/deps/repro-7c0e4419e216ccda.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-7c0e4419e216ccda: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
