/root/repo/target/release/deps/cbp_telemetry-91f59d42dbeb75b9.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libcbp_telemetry-91f59d42dbeb75b9.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libcbp_telemetry-91f59d42dbeb75b9.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/reader.rs:
crates/telemetry/src/timeseries.rs:
crates/telemetry/src/trace.rs:
