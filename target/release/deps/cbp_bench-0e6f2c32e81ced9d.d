/root/repo/target/release/deps/cbp_bench-0e6f2c32e81ced9d.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablate.rs crates/bench/src/experiments/characterize.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/micro.rs crates/bench/src/experiments/qos.rs crates/bench/src/experiments/sensitivity.rs crates/bench/src/experiments/tracesim.rs crates/bench/src/experiments/yarnexp.rs crates/bench/src/table.rs crates/bench/src/telemetry_run.rs

/root/repo/target/release/deps/libcbp_bench-0e6f2c32e81ced9d.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablate.rs crates/bench/src/experiments/characterize.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/micro.rs crates/bench/src/experiments/qos.rs crates/bench/src/experiments/sensitivity.rs crates/bench/src/experiments/tracesim.rs crates/bench/src/experiments/yarnexp.rs crates/bench/src/table.rs crates/bench/src/telemetry_run.rs

/root/repo/target/release/deps/libcbp_bench-0e6f2c32e81ced9d.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablate.rs crates/bench/src/experiments/characterize.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/micro.rs crates/bench/src/experiments/qos.rs crates/bench/src/experiments/sensitivity.rs crates/bench/src/experiments/tracesim.rs crates/bench/src/experiments/yarnexp.rs crates/bench/src/table.rs crates/bench/src/telemetry_run.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablate.rs:
crates/bench/src/experiments/characterize.rs:
crates/bench/src/experiments/extensions.rs:
crates/bench/src/experiments/micro.rs:
crates/bench/src/experiments/qos.rs:
crates/bench/src/experiments/sensitivity.rs:
crates/bench/src/experiments/tracesim.rs:
crates/bench/src/experiments/yarnexp.rs:
crates/bench/src/table.rs:
crates/bench/src/telemetry_run.rs:
