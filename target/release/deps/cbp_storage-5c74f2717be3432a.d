/root/repo/target/release/deps/cbp_storage-5c74f2717be3432a.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs

/root/repo/target/release/deps/libcbp_storage-5c74f2717be3432a.rlib: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs

/root/repo/target/release/deps/libcbp_storage-5c74f2717be3432a.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/media.rs:
