/root/repo/target/release/deps/cbp_checkpoint-93385932e818f4df.d: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs

/root/repo/target/release/deps/libcbp_checkpoint-93385932e818f4df.rlib: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs

/root/repo/target/release/deps/libcbp_checkpoint-93385932e818f4df.rmeta: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs

crates/checkpoint/src/lib.rs:
crates/checkpoint/src/criu.rs:
crates/checkpoint/src/image.rs:
crates/checkpoint/src/memory.rs:
crates/checkpoint/src/nvram.rs:
