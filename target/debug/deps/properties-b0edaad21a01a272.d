/root/repo/target/debug/deps/properties-b0edaad21a01a272.d: crates/storage/tests/properties.rs

/root/repo/target/debug/deps/properties-b0edaad21a01a272: crates/storage/tests/properties.rs

crates/storage/tests/properties.rs:
