/root/repo/target/debug/deps/repro-dfd0946d07bb2509.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-dfd0946d07bb2509.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
