/root/repo/target/debug/deps/rand-16f70f377bde5d8d.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-16f70f377bde5d8d.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-16f70f377bde5d8d.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
