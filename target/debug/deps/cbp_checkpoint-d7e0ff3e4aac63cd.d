/root/repo/target/debug/deps/cbp_checkpoint-d7e0ff3e4aac63cd.d: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_checkpoint-d7e0ff3e4aac63cd.rmeta: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs Cargo.toml

crates/checkpoint/src/lib.rs:
crates/checkpoint/src/criu.rs:
crates/checkpoint/src/image.rs:
crates/checkpoint/src/memory.rs:
crates/checkpoint/src/nvram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
