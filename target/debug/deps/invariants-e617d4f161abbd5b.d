/root/repo/target/debug/deps/invariants-e617d4f161abbd5b.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-e617d4f161abbd5b: tests/invariants.rs

tests/invariants.rs:
