/root/repo/target/debug/deps/cbp_obs-47da848ffc185d12.d: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libcbp_obs-47da848ffc185d12.rlib: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libcbp_obs-47da848ffc185d12.rmeta: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/diff.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
