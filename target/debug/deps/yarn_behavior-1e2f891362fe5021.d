/root/repo/target/debug/deps/yarn_behavior-1e2f891362fe5021.d: crates/yarn/tests/yarn_behavior.rs

/root/repo/target/debug/deps/yarn_behavior-1e2f891362fe5021: crates/yarn/tests/yarn_behavior.rs

crates/yarn/tests/yarn_behavior.rs:
