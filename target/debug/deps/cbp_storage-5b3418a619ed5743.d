/root/repo/target/debug/deps/cbp_storage-5b3418a619ed5743.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs

/root/repo/target/debug/deps/cbp_storage-5b3418a619ed5743: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/media.rs:
