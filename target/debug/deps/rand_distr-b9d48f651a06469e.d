/root/repo/target/debug/deps/rand_distr-b9d48f651a06469e.d: /tmp/stubs/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-b9d48f651a06469e.rmeta: /tmp/stubs/rand_distr/src/lib.rs

/tmp/stubs/rand_distr/src/lib.rs:
