/root/repo/target/debug/deps/cbp_telemetry-381a55cb9bb9933e.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/cbp_telemetry-381a55cb9bb9933e: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/reader.rs:
crates/telemetry/src/timeseries.rs:
crates/telemetry/src/trace.rs:
