/root/repo/target/debug/deps/harness-4830848afec9da61.d: crates/bench/tests/harness.rs Cargo.toml

/root/repo/target/debug/deps/libharness-4830848afec9da61.rmeta: crates/bench/tests/harness.rs Cargo.toml

crates/bench/tests/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
