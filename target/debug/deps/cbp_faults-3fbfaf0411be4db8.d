/root/repo/target/debug/deps/cbp_faults-3fbfaf0411be4db8.d: crates/faults/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_faults-3fbfaf0411be4db8.rmeta: crates/faults/src/lib.rs Cargo.toml

crates/faults/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
