/root/repo/target/debug/deps/cbp_checkpoint-1541fb4d49e84181.d: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_checkpoint-1541fb4d49e84181.rmeta: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs Cargo.toml

crates/checkpoint/src/lib.rs:
crates/checkpoint/src/criu.rs:
crates/checkpoint/src/image.rs:
crates/checkpoint/src/memory.rs:
crates/checkpoint/src/nvram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
