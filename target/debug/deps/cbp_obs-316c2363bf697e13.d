/root/repo/target/debug/deps/cbp_obs-316c2363bf697e13.d: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/cbp_obs-316c2363bf697e13: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/diff.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
