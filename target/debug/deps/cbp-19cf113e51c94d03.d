/root/repo/target/debug/deps/cbp-19cf113e51c94d03.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcbp-19cf113e51c94d03.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
