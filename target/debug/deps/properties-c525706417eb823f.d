/root/repo/target/debug/deps/properties-c525706417eb823f.d: crates/dfs/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c525706417eb823f.rmeta: crates/dfs/tests/properties.rs Cargo.toml

crates/dfs/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
