/root/repo/target/debug/deps/cbp-4d885bdf30a984db.d: src/lib.rs

/root/repo/target/debug/deps/libcbp-4d885bdf30a984db.rlib: src/lib.rs

/root/repo/target/debug/deps/libcbp-4d885bdf30a984db.rmeta: src/lib.rs

src/lib.rs:
