/root/repo/target/debug/deps/repro-219ec31768b6d77e.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-219ec31768b6d77e: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
