/root/repo/target/debug/deps/cbp_simkit-1e3654caa9468d31.d: crates/simkit/src/lib.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/rng.rs crates/simkit/src/time.rs crates/simkit/src/dist.rs crates/simkit/src/stats.rs crates/simkit/src/stats_p2.rs crates/simkit/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_simkit-1e3654caa9468d31.rmeta: crates/simkit/src/lib.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/rng.rs crates/simkit/src/time.rs crates/simkit/src/dist.rs crates/simkit/src/stats.rs crates/simkit/src/stats_p2.rs crates/simkit/src/units.rs Cargo.toml

crates/simkit/src/lib.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/event.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/time.rs:
crates/simkit/src/dist.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/stats_p2.rs:
crates/simkit/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
