/root/repo/target/debug/deps/yarn_behavior-c46ea154ee6f0957.d: crates/yarn/tests/yarn_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libyarn_behavior-c46ea154ee6f0957.rmeta: crates/yarn/tests/yarn_behavior.rs Cargo.toml

crates/yarn/tests/yarn_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
