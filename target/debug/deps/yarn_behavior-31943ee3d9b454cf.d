/root/repo/target/debug/deps/yarn_behavior-31943ee3d9b454cf.d: crates/yarn/tests/yarn_behavior.rs

/root/repo/target/debug/deps/yarn_behavior-31943ee3d9b454cf: crates/yarn/tests/yarn_behavior.rs

crates/yarn/tests/yarn_behavior.rs:
