/root/repo/target/debug/deps/cbp_storage-c39602337264b977.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_storage-c39602337264b977.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/media.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
