/root/repo/target/debug/deps/properties-eaeddd245eeb2ad2.d: crates/simkit/tests/properties.rs

/root/repo/target/debug/deps/properties-eaeddd245eeb2ad2: crates/simkit/tests/properties.rs

crates/simkit/tests/properties.rs:
