/root/repo/target/debug/deps/telemetry_overhead-7227d2ee43fab141.d: crates/bench/benches/telemetry_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_overhead-7227d2ee43fab141.rmeta: crates/bench/benches/telemetry_overhead.rs Cargo.toml

crates/bench/benches/telemetry_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
