/root/repo/target/debug/deps/mapreduce-b79d69946c953c92.d: crates/yarn/tests/mapreduce.rs

/root/repo/target/debug/deps/mapreduce-b79d69946c953c92: crates/yarn/tests/mapreduce.rs

crates/yarn/tests/mapreduce.rs:
