/root/repo/target/debug/deps/cbp_core-9a915b475a67c666.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_core-9a915b475a67c666.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/metrics.rs:
crates/core/src/scenario.rs:
crates/core/src/sim.rs:
crates/core/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
