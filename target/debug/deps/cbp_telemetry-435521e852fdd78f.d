/root/repo/target/debug/deps/cbp_telemetry-435521e852fdd78f.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_telemetry-435521e852fdd78f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/reader.rs:
crates/telemetry/src/timeseries.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
