/root/repo/target/debug/deps/cbp_storage-6afa50a52576d271.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs

/root/repo/target/debug/deps/libcbp_storage-6afa50a52576d271.rlib: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs

/root/repo/target/debug/deps/libcbp_storage-6afa50a52576d271.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/media.rs:
