/root/repo/target/debug/deps/cbp_yarn-53d9ebcfa8a461b3.d: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

/root/repo/target/debug/deps/libcbp_yarn-53d9ebcfa8a461b3.rlib: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

/root/repo/target/debug/deps/libcbp_yarn-53d9ebcfa8a461b3.rmeta: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

crates/yarn/src/lib.rs:
crates/yarn/src/components.rs:
crates/yarn/src/config.rs:
crates/yarn/src/report.rs:
crates/yarn/src/sim.rs:
