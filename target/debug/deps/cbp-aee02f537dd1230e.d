/root/repo/target/debug/deps/cbp-aee02f537dd1230e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcbp-aee02f537dd1230e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
