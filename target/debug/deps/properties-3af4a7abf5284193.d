/root/repo/target/debug/deps/properties-3af4a7abf5284193.d: crates/storage/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3af4a7abf5284193.rmeta: crates/storage/tests/properties.rs Cargo.toml

crates/storage/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
