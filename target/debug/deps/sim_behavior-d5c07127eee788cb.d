/root/repo/target/debug/deps/sim_behavior-d5c07127eee788cb.d: crates/core/tests/sim_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libsim_behavior-d5c07127eee788cb.rmeta: crates/core/tests/sim_behavior.rs Cargo.toml

crates/core/tests/sim_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
