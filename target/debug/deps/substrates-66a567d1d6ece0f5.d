/root/repo/target/debug/deps/substrates-66a567d1d6ece0f5.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-66a567d1d6ece0f5.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
