/root/repo/target/debug/deps/criterion-73f4f32de18a288a.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-73f4f32de18a288a.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
