/root/repo/target/debug/deps/cbp_workload-a494f152e2987530.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/facebook.rs crates/workload/src/google.rs crates/workload/src/kmeans.rs crates/workload/src/mapreduce.rs crates/workload/src/spec.rs

/root/repo/target/debug/deps/cbp_workload-a494f152e2987530: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/facebook.rs crates/workload/src/google.rs crates/workload/src/kmeans.rs crates/workload/src/mapreduce.rs crates/workload/src/spec.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/facebook.rs:
crates/workload/src/google.rs:
crates/workload/src/kmeans.rs:
crates/workload/src/mapreduce.rs:
crates/workload/src/spec.rs:
