/root/repo/target/debug/deps/cbp_core-193290fcb5cd3fd8.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs

/root/repo/target/debug/deps/cbp_core-193290fcb5cd3fd8: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/metrics.rs:
crates/core/src/scenario.rs:
crates/core/src/sim.rs:
crates/core/src/task.rs:
