/root/repo/target/debug/deps/cbp_checkpoint-e15a1fbbd0249017.d: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs

/root/repo/target/debug/deps/cbp_checkpoint-e15a1fbbd0249017: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs

crates/checkpoint/src/lib.rs:
crates/checkpoint/src/criu.rs:
crates/checkpoint/src/image.rs:
crates/checkpoint/src/memory.rs:
crates/checkpoint/src/nvram.rs:
