/root/repo/target/debug/deps/cbp_yarn-a99463a638effc2d.d: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

/root/repo/target/debug/deps/libcbp_yarn-a99463a638effc2d.rlib: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

/root/repo/target/debug/deps/libcbp_yarn-a99463a638effc2d.rmeta: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

crates/yarn/src/lib.rs:
crates/yarn/src/components.rs:
crates/yarn/src/config.rs:
crates/yarn/src/report.rs:
crates/yarn/src/sim.rs:
