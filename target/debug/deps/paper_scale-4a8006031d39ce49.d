/root/repo/target/debug/deps/paper_scale-4a8006031d39ce49.d: crates/yarn/tests/paper_scale.rs

/root/repo/target/debug/deps/paper_scale-4a8006031d39ce49: crates/yarn/tests/paper_scale.rs

crates/yarn/tests/paper_scale.rs:
