/root/repo/target/debug/deps/mapreduce-e6ee2972d5a71684.d: crates/yarn/tests/mapreduce.rs

/root/repo/target/debug/deps/mapreduce-e6ee2972d5a71684: crates/yarn/tests/mapreduce.rs

crates/yarn/tests/mapreduce.rs:
