/root/repo/target/debug/deps/properties-177d1eda7ecc275a.d: crates/simkit/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-177d1eda7ecc275a.rmeta: crates/simkit/tests/properties.rs Cargo.toml

crates/simkit/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
