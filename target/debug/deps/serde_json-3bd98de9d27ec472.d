/root/repo/target/debug/deps/serde_json-3bd98de9d27ec472.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3bd98de9d27ec472.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3bd98de9d27ec472.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
