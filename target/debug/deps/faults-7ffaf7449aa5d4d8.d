/root/repo/target/debug/deps/faults-7ffaf7449aa5d4d8.d: crates/bench/tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-7ffaf7449aa5d4d8.rmeta: crates/bench/tests/faults.rs Cargo.toml

crates/bench/tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
