/root/repo/target/debug/deps/paper_scale-596bb75f38b58a85.d: crates/yarn/tests/paper_scale.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_scale-596bb75f38b58a85.rmeta: crates/yarn/tests/paper_scale.rs Cargo.toml

crates/yarn/tests/paper_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
