/root/repo/target/debug/deps/cbp_telemetry-1d37b3f14982ac66.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_telemetry-1d37b3f14982ac66.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/reader.rs:
crates/telemetry/src/timeseries.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
