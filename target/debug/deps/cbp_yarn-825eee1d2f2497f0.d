/root/repo/target/debug/deps/cbp_yarn-825eee1d2f2497f0.d: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

/root/repo/target/debug/deps/cbp_yarn-825eee1d2f2497f0: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

crates/yarn/src/lib.rs:
crates/yarn/src/components.rs:
crates/yarn/src/config.rs:
crates/yarn/src/report.rs:
crates/yarn/src/sim.rs:
