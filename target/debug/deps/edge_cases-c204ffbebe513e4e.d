/root/repo/target/debug/deps/edge_cases-c204ffbebe513e4e.d: crates/core/tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-c204ffbebe513e4e: crates/core/tests/edge_cases.rs

crates/core/tests/edge_cases.rs:
