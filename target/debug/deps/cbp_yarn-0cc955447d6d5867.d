/root/repo/target/debug/deps/cbp_yarn-0cc955447d6d5867.d: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_yarn-0cc955447d6d5867.rmeta: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs Cargo.toml

crates/yarn/src/lib.rs:
crates/yarn/src/components.rs:
crates/yarn/src/config.rs:
crates/yarn/src/report.rs:
crates/yarn/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
