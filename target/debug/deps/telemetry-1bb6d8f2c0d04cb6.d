/root/repo/target/debug/deps/telemetry-1bb6d8f2c0d04cb6.d: crates/core/tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-1bb6d8f2c0d04cb6.rmeta: crates/core/tests/telemetry.rs Cargo.toml

crates/core/tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
