/root/repo/target/debug/deps/cbp_core-04c7383c8c514f43.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs

/root/repo/target/debug/deps/libcbp_core-04c7383c8c514f43.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs

/root/repo/target/debug/deps/libcbp_core-04c7383c8c514f43.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/metrics.rs:
crates/core/src/scenario.rs:
crates/core/src/sim.rs:
crates/core/src/task.rs:
