/root/repo/target/debug/deps/cbp_storage-e23adb970ad6bc72.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_storage-e23adb970ad6bc72.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/media.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/media.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
