/root/repo/target/debug/deps/graceful_timeout-50bf9fbd8eccb919.d: crates/yarn/tests/graceful_timeout.rs Cargo.toml

/root/repo/target/debug/deps/libgraceful_timeout-50bf9fbd8eccb919.rmeta: crates/yarn/tests/graceful_timeout.rs Cargo.toml

crates/yarn/tests/graceful_timeout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
