/root/repo/target/debug/deps/failures-a0001e8a17ffcf6c.d: crates/core/tests/failures.rs Cargo.toml

/root/repo/target/debug/deps/libfailures-a0001e8a17ffcf6c.rmeta: crates/core/tests/failures.rs Cargo.toml

crates/core/tests/failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
