/root/repo/target/debug/deps/cbp_workload-8327b74d93308a12.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/facebook.rs crates/workload/src/google.rs crates/workload/src/kmeans.rs crates/workload/src/mapreduce.rs crates/workload/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_workload-8327b74d93308a12.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/facebook.rs crates/workload/src/google.rs crates/workload/src/kmeans.rs crates/workload/src/mapreduce.rs crates/workload/src/spec.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/facebook.rs:
crates/workload/src/google.rs:
crates/workload/src/kmeans.rs:
crates/workload/src/mapreduce.rs:
crates/workload/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
