/root/repo/target/debug/deps/invariants-064205b51c5e31ec.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-064205b51c5e31ec.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
