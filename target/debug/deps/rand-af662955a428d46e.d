/root/repo/target/debug/deps/rand-af662955a428d46e.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-af662955a428d46e.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
