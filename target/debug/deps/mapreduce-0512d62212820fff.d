/root/repo/target/debug/deps/mapreduce-0512d62212820fff.d: crates/yarn/tests/mapreduce.rs Cargo.toml

/root/repo/target/debug/deps/libmapreduce-0512d62212820fff.rmeta: crates/yarn/tests/mapreduce.rs Cargo.toml

crates/yarn/tests/mapreduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
