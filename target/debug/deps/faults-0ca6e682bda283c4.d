/root/repo/target/debug/deps/faults-0ca6e682bda283c4.d: crates/bench/tests/faults.rs

/root/repo/target/debug/deps/faults-0ca6e682bda283c4: crates/bench/tests/faults.rs

crates/bench/tests/faults.rs:
