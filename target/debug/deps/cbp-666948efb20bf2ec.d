/root/repo/target/debug/deps/cbp-666948efb20bf2ec.d: src/lib.rs

/root/repo/target/debug/deps/cbp-666948efb20bf2ec: src/lib.rs

src/lib.rs:
