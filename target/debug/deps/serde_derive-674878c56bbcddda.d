/root/repo/target/debug/deps/serde_derive-674878c56bbcddda.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-674878c56bbcddda.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
