/root/repo/target/debug/deps/repro-8dafc9ee080c12c7.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-8dafc9ee080c12c7.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
