/root/repo/target/debug/deps/sim_behavior-b74a01983cfadd72.d: crates/core/tests/sim_behavior.rs

/root/repo/target/debug/deps/sim_behavior-b74a01983cfadd72: crates/core/tests/sim_behavior.rs

crates/core/tests/sim_behavior.rs:
