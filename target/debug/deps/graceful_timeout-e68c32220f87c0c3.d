/root/repo/target/debug/deps/graceful_timeout-e68c32220f87c0c3.d: crates/yarn/tests/graceful_timeout.rs

/root/repo/target/debug/deps/graceful_timeout-e68c32220f87c0c3: crates/yarn/tests/graceful_timeout.rs

crates/yarn/tests/graceful_timeout.rs:
