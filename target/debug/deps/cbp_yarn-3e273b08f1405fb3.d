/root/repo/target/debug/deps/cbp_yarn-3e273b08f1405fb3.d: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

/root/repo/target/debug/deps/cbp_yarn-3e273b08f1405fb3: crates/yarn/src/lib.rs crates/yarn/src/components.rs crates/yarn/src/config.rs crates/yarn/src/report.rs crates/yarn/src/sim.rs

crates/yarn/src/lib.rs:
crates/yarn/src/components.rs:
crates/yarn/src/config.rs:
crates/yarn/src/report.rs:
crates/yarn/src/sim.rs:
