/root/repo/target/debug/deps/cbp_bench-f0acea7d130a84d8.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablate.rs crates/bench/src/experiments/characterize.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/micro.rs crates/bench/src/experiments/qos.rs crates/bench/src/experiments/sensitivity.rs crates/bench/src/experiments/tracesim.rs crates/bench/src/experiments/yarnexp.rs crates/bench/src/table.rs crates/bench/src/telemetry_run.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_bench-f0acea7d130a84d8.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablate.rs crates/bench/src/experiments/characterize.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/micro.rs crates/bench/src/experiments/qos.rs crates/bench/src/experiments/sensitivity.rs crates/bench/src/experiments/tracesim.rs crates/bench/src/experiments/yarnexp.rs crates/bench/src/table.rs crates/bench/src/telemetry_run.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablate.rs:
crates/bench/src/experiments/characterize.rs:
crates/bench/src/experiments/extensions.rs:
crates/bench/src/experiments/micro.rs:
crates/bench/src/experiments/qos.rs:
crates/bench/src/experiments/sensitivity.rs:
crates/bench/src/experiments/tracesim.rs:
crates/bench/src/experiments/yarnexp.rs:
crates/bench/src/table.rs:
crates/bench/src/telemetry_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
