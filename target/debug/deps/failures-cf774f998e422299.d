/root/repo/target/debug/deps/failures-cf774f998e422299.d: crates/core/tests/failures.rs

/root/repo/target/debug/deps/failures-cf774f998e422299: crates/core/tests/failures.rs

crates/core/tests/failures.rs:
