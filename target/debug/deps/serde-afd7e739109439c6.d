/root/repo/target/debug/deps/serde-afd7e739109439c6.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-afd7e739109439c6.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
