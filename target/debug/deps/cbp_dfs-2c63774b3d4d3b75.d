/root/repo/target/debug/deps/cbp_dfs-2c63774b3d4d3b75.d: crates/dfs/src/lib.rs crates/dfs/src/cluster.rs crates/dfs/src/namespace.rs

/root/repo/target/debug/deps/cbp_dfs-2c63774b3d4d3b75: crates/dfs/src/lib.rs crates/dfs/src/cluster.rs crates/dfs/src/namespace.rs

crates/dfs/src/lib.rs:
crates/dfs/src/cluster.rs:
crates/dfs/src/namespace.rs:
