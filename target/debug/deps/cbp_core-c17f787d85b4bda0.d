/root/repo/target/debug/deps/cbp_core-c17f787d85b4bda0.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs

/root/repo/target/debug/deps/libcbp_core-c17f787d85b4bda0.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs

/root/repo/target/debug/deps/libcbp_core-c17f787d85b4bda0.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/metrics.rs crates/core/src/scenario.rs crates/core/src/sim.rs crates/core/src/task.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/metrics.rs:
crates/core/src/scenario.rs:
crates/core/src/sim.rs:
crates/core/src/task.rs:
