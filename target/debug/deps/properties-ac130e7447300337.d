/root/repo/target/debug/deps/properties-ac130e7447300337.d: crates/checkpoint/tests/properties.rs

/root/repo/target/debug/deps/properties-ac130e7447300337: crates/checkpoint/tests/properties.rs

crates/checkpoint/tests/properties.rs:
