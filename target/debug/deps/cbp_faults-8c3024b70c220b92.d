/root/repo/target/debug/deps/cbp_faults-8c3024b70c220b92.d: crates/faults/src/lib.rs

/root/repo/target/debug/deps/libcbp_faults-8c3024b70c220b92.rlib: crates/faults/src/lib.rs

/root/repo/target/debug/deps/libcbp_faults-8c3024b70c220b92.rmeta: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
