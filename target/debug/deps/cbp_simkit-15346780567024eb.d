/root/repo/target/debug/deps/cbp_simkit-15346780567024eb.d: crates/simkit/src/lib.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/rng.rs crates/simkit/src/time.rs crates/simkit/src/dist.rs crates/simkit/src/stats.rs crates/simkit/src/stats_p2.rs crates/simkit/src/units.rs

/root/repo/target/debug/deps/libcbp_simkit-15346780567024eb.rlib: crates/simkit/src/lib.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/rng.rs crates/simkit/src/time.rs crates/simkit/src/dist.rs crates/simkit/src/stats.rs crates/simkit/src/stats_p2.rs crates/simkit/src/units.rs

/root/repo/target/debug/deps/libcbp_simkit-15346780567024eb.rmeta: crates/simkit/src/lib.rs crates/simkit/src/engine.rs crates/simkit/src/event.rs crates/simkit/src/rng.rs crates/simkit/src/time.rs crates/simkit/src/dist.rs crates/simkit/src/stats.rs crates/simkit/src/stats_p2.rs crates/simkit/src/units.rs

crates/simkit/src/lib.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/event.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/time.rs:
crates/simkit/src/dist.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/stats_p2.rs:
crates/simkit/src/units.rs:
