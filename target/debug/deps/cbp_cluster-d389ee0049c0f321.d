/root/repo/target/debug/deps/cbp_cluster-d389ee0049c0f321.d: crates/cluster/src/lib.rs crates/cluster/src/energy.rs crates/cluster/src/node.rs crates/cluster/src/resources.rs

/root/repo/target/debug/deps/cbp_cluster-d389ee0049c0f321: crates/cluster/src/lib.rs crates/cluster/src/energy.rs crates/cluster/src/node.rs crates/cluster/src/resources.rs

crates/cluster/src/lib.rs:
crates/cluster/src/energy.rs:
crates/cluster/src/node.rs:
crates/cluster/src/resources.rs:
