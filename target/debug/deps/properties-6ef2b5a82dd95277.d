/root/repo/target/debug/deps/properties-6ef2b5a82dd95277.d: crates/dfs/tests/properties.rs

/root/repo/target/debug/deps/properties-6ef2b5a82dd95277: crates/dfs/tests/properties.rs

crates/dfs/tests/properties.rs:
