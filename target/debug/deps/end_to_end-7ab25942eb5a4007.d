/root/repo/target/debug/deps/end_to_end-7ab25942eb5a4007.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7ab25942eb5a4007: tests/end_to_end.rs

tests/end_to_end.rs:
