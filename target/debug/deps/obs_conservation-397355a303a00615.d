/root/repo/target/debug/deps/obs_conservation-397355a303a00615.d: crates/bench/tests/obs_conservation.rs Cargo.toml

/root/repo/target/debug/deps/libobs_conservation-397355a303a00615.rmeta: crates/bench/tests/obs_conservation.rs Cargo.toml

crates/bench/tests/obs_conservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
