/root/repo/target/debug/deps/checkpoint-0468e5bdea0565c6.d: crates/bench/benches/checkpoint.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint-0468e5bdea0565c6.rmeta: crates/bench/benches/checkpoint.rs Cargo.toml

crates/bench/benches/checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
