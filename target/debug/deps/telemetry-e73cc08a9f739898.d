/root/repo/target/debug/deps/telemetry-e73cc08a9f739898.d: crates/core/tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-e73cc08a9f739898: crates/core/tests/telemetry.rs

crates/core/tests/telemetry.rs:
