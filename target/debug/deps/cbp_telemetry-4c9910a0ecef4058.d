/root/repo/target/debug/deps/cbp_telemetry-4c9910a0ecef4058.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libcbp_telemetry-4c9910a0ecef4058.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libcbp_telemetry-4c9910a0ecef4058.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/reader.rs crates/telemetry/src/timeseries.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/reader.rs:
crates/telemetry/src/timeseries.rs:
crates/telemetry/src/trace.rs:
