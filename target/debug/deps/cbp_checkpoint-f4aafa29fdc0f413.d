/root/repo/target/debug/deps/cbp_checkpoint-f4aafa29fdc0f413.d: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs

/root/repo/target/debug/deps/libcbp_checkpoint-f4aafa29fdc0f413.rlib: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs

/root/repo/target/debug/deps/libcbp_checkpoint-f4aafa29fdc0f413.rmeta: crates/checkpoint/src/lib.rs crates/checkpoint/src/criu.rs crates/checkpoint/src/image.rs crates/checkpoint/src/memory.rs crates/checkpoint/src/nvram.rs

crates/checkpoint/src/lib.rs:
crates/checkpoint/src/criu.rs:
crates/checkpoint/src/image.rs:
crates/checkpoint/src/memory.rs:
crates/checkpoint/src/nvram.rs:
