/root/repo/target/debug/deps/repro-9199babb74a53c6b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-9199babb74a53c6b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
