/root/repo/target/debug/deps/cbp_bench-26f0bc122cae0099.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablate.rs crates/bench/src/experiments/characterize.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/micro.rs crates/bench/src/experiments/qos.rs crates/bench/src/experiments/sensitivity.rs crates/bench/src/experiments/tracesim.rs crates/bench/src/experiments/yarnexp.rs crates/bench/src/table.rs crates/bench/src/telemetry_run.rs

/root/repo/target/debug/deps/libcbp_bench-26f0bc122cae0099.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablate.rs crates/bench/src/experiments/characterize.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/micro.rs crates/bench/src/experiments/qos.rs crates/bench/src/experiments/sensitivity.rs crates/bench/src/experiments/tracesim.rs crates/bench/src/experiments/yarnexp.rs crates/bench/src/table.rs crates/bench/src/telemetry_run.rs

/root/repo/target/debug/deps/libcbp_bench-26f0bc122cae0099.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablate.rs crates/bench/src/experiments/characterize.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/micro.rs crates/bench/src/experiments/qos.rs crates/bench/src/experiments/sensitivity.rs crates/bench/src/experiments/tracesim.rs crates/bench/src/experiments/yarnexp.rs crates/bench/src/table.rs crates/bench/src/telemetry_run.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablate.rs:
crates/bench/src/experiments/characterize.rs:
crates/bench/src/experiments/extensions.rs:
crates/bench/src/experiments/micro.rs:
crates/bench/src/experiments/qos.rs:
crates/bench/src/experiments/sensitivity.rs:
crates/bench/src/experiments/tracesim.rs:
crates/bench/src/experiments/yarnexp.rs:
crates/bench/src/table.rs:
crates/bench/src/telemetry_run.rs:
