/root/repo/target/debug/deps/cbp_dfs-02477d8243f5dd38.d: crates/dfs/src/lib.rs crates/dfs/src/cluster.rs crates/dfs/src/namespace.rs

/root/repo/target/debug/deps/libcbp_dfs-02477d8243f5dd38.rlib: crates/dfs/src/lib.rs crates/dfs/src/cluster.rs crates/dfs/src/namespace.rs

/root/repo/target/debug/deps/libcbp_dfs-02477d8243f5dd38.rmeta: crates/dfs/src/lib.rs crates/dfs/src/cluster.rs crates/dfs/src/namespace.rs

crates/dfs/src/lib.rs:
crates/dfs/src/cluster.rs:
crates/dfs/src/namespace.rs:
