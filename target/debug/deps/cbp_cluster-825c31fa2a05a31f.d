/root/repo/target/debug/deps/cbp_cluster-825c31fa2a05a31f.d: crates/cluster/src/lib.rs crates/cluster/src/energy.rs crates/cluster/src/node.rs crates/cluster/src/resources.rs

/root/repo/target/debug/deps/libcbp_cluster-825c31fa2a05a31f.rlib: crates/cluster/src/lib.rs crates/cluster/src/energy.rs crates/cluster/src/node.rs crates/cluster/src/resources.rs

/root/repo/target/debug/deps/libcbp_cluster-825c31fa2a05a31f.rmeta: crates/cluster/src/lib.rs crates/cluster/src/energy.rs crates/cluster/src/node.rs crates/cluster/src/resources.rs

crates/cluster/src/lib.rs:
crates/cluster/src/energy.rs:
crates/cluster/src/node.rs:
crates/cluster/src/resources.rs:
