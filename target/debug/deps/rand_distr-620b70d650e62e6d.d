/root/repo/target/debug/deps/rand_distr-620b70d650e62e6d.d: /tmp/stubs/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-620b70d650e62e6d.rlib: /tmp/stubs/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-620b70d650e62e6d.rmeta: /tmp/stubs/rand_distr/src/lib.rs

/tmp/stubs/rand_distr/src/lib.rs:
