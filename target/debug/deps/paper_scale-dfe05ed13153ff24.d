/root/repo/target/debug/deps/paper_scale-dfe05ed13153ff24.d: crates/yarn/tests/paper_scale.rs

/root/repo/target/debug/deps/paper_scale-dfe05ed13153ff24: crates/yarn/tests/paper_scale.rs

crates/yarn/tests/paper_scale.rs:
