/root/repo/target/debug/deps/cbp_dfs-f4508119db885070.d: crates/dfs/src/lib.rs crates/dfs/src/cluster.rs crates/dfs/src/namespace.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_dfs-f4508119db885070.rmeta: crates/dfs/src/lib.rs crates/dfs/src/cluster.rs crates/dfs/src/namespace.rs Cargo.toml

crates/dfs/src/lib.rs:
crates/dfs/src/cluster.rs:
crates/dfs/src/namespace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
