/root/repo/target/debug/deps/cbp_workload-7004ff2bc8daaf55.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/facebook.rs crates/workload/src/google.rs crates/workload/src/kmeans.rs crates/workload/src/mapreduce.rs crates/workload/src/spec.rs

/root/repo/target/debug/deps/libcbp_workload-7004ff2bc8daaf55.rlib: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/facebook.rs crates/workload/src/google.rs crates/workload/src/kmeans.rs crates/workload/src/mapreduce.rs crates/workload/src/spec.rs

/root/repo/target/debug/deps/libcbp_workload-7004ff2bc8daaf55.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/facebook.rs crates/workload/src/google.rs crates/workload/src/kmeans.rs crates/workload/src/mapreduce.rs crates/workload/src/spec.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/facebook.rs:
crates/workload/src/google.rs:
crates/workload/src/kmeans.rs:
crates/workload/src/mapreduce.rs:
crates/workload/src/spec.rs:
