/root/repo/target/debug/deps/telemetry-4d84cc7bcad34574.d: crates/core/tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-4d84cc7bcad34574: crates/core/tests/telemetry.rs

crates/core/tests/telemetry.rs:
