/root/repo/target/debug/deps/cbp_faults-a2c8c4a0d56b1c16.d: crates/faults/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_faults-a2c8c4a0d56b1c16.rmeta: crates/faults/src/lib.rs Cargo.toml

crates/faults/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
