/root/repo/target/debug/deps/cbp_faults-d353397056dbad67.d: crates/faults/src/lib.rs

/root/repo/target/debug/deps/cbp_faults-d353397056dbad67: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
