/root/repo/target/debug/deps/cbp_cluster-62c6da5899b72128.d: crates/cluster/src/lib.rs crates/cluster/src/energy.rs crates/cluster/src/node.rs crates/cluster/src/resources.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_cluster-62c6da5899b72128.rmeta: crates/cluster/src/lib.rs crates/cluster/src/energy.rs crates/cluster/src/node.rs crates/cluster/src/resources.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/energy.rs:
crates/cluster/src/node.rs:
crates/cluster/src/resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
