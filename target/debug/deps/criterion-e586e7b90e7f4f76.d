/root/repo/target/debug/deps/criterion-e586e7b90e7f4f76.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e586e7b90e7f4f76.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e586e7b90e7f4f76.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
