/root/repo/target/debug/deps/obs_conservation-2140bcc405036da5.d: crates/bench/tests/obs_conservation.rs

/root/repo/target/debug/deps/obs_conservation-2140bcc405036da5: crates/bench/tests/obs_conservation.rs

crates/bench/tests/obs_conservation.rs:
