/root/repo/target/debug/deps/cbp_obs-b8c2a41afba9b38e.d: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_obs-b8c2a41afba9b38e.rmeta: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/diff.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
