/root/repo/target/debug/deps/cbp_obs-f1e0b0a7cbfbbebb.d: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libcbp_obs-f1e0b0a7cbfbbebb.rmeta: crates/obs/src/lib.rs crates/obs/src/diff.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/diff.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
