/root/repo/target/debug/deps/serde-548f91f864feb75b.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-548f91f864feb75b.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-548f91f864feb75b.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
