/root/repo/target/debug/deps/scheduler-2e8d0c4df484685b.d: crates/bench/benches/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler-2e8d0c4df484685b.rmeta: crates/bench/benches/scheduler.rs Cargo.toml

crates/bench/benches/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
