/root/repo/target/debug/deps/serde_json-c3352bf256ca54a2.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c3352bf256ca54a2.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
