/root/repo/target/debug/deps/edge_cases-cf9ebcd75b1089de.d: crates/core/tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-cf9ebcd75b1089de.rmeta: crates/core/tests/edge_cases.rs Cargo.toml

crates/core/tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
