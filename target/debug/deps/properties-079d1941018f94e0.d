/root/repo/target/debug/deps/properties-079d1941018f94e0.d: crates/checkpoint/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-079d1941018f94e0.rmeta: crates/checkpoint/tests/properties.rs Cargo.toml

crates/checkpoint/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
