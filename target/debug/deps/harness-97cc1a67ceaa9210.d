/root/repo/target/debug/deps/harness-97cc1a67ceaa9210.d: crates/bench/tests/harness.rs

/root/repo/target/debug/deps/harness-97cc1a67ceaa9210: crates/bench/tests/harness.rs

crates/bench/tests/harness.rs:
