/root/repo/target/debug/examples/node_failures-3cc2dbe0a062c5d8.d: examples/node_failures.rs

/root/repo/target/debug/examples/node_failures-3cc2dbe0a062c5d8: examples/node_failures.rs

examples/node_failures.rs:
