/root/repo/target/debug/examples/trace_replay-6d9dc5a4118c5e81.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-6d9dc5a4118c5e81: examples/trace_replay.rs

examples/trace_replay.rs:
