/root/repo/target/debug/examples/mapreduce-7ae773fb1bc6dc4e.d: examples/mapreduce.rs Cargo.toml

/root/repo/target/debug/examples/libmapreduce-7ae773fb1bc6dc4e.rmeta: examples/mapreduce.rs Cargo.toml

examples/mapreduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
