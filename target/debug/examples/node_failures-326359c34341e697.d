/root/repo/target/debug/examples/node_failures-326359c34341e697.d: examples/node_failures.rs Cargo.toml

/root/repo/target/debug/examples/libnode_failures-326359c34341e697.rmeta: examples/node_failures.rs Cargo.toml

examples/node_failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
