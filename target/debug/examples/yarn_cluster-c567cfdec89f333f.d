/root/repo/target/debug/examples/yarn_cluster-c567cfdec89f333f.d: examples/yarn_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libyarn_cluster-c567cfdec89f333f.rmeta: examples/yarn_cluster.rs Cargo.toml

examples/yarn_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
