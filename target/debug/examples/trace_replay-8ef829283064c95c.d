/root/repo/target/debug/examples/trace_replay-8ef829283064c95c.d: examples/trace_replay.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_replay-8ef829283064c95c.rmeta: examples/trace_replay.rs Cargo.toml

examples/trace_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
