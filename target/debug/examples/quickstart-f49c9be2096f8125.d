/root/repo/target/debug/examples/quickstart-f49c9be2096f8125.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f49c9be2096f8125: examples/quickstart.rs

examples/quickstart.rs:
