/root/repo/target/debug/examples/adaptive_policy-7fab058dac104084.d: examples/adaptive_policy.rs

/root/repo/target/debug/examples/adaptive_policy-7fab058dac104084: examples/adaptive_policy.rs

examples/adaptive_policy.rs:
