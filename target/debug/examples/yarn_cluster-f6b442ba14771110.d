/root/repo/target/debug/examples/yarn_cluster-f6b442ba14771110.d: examples/yarn_cluster.rs

/root/repo/target/debug/examples/yarn_cluster-f6b442ba14771110: examples/yarn_cluster.rs

examples/yarn_cluster.rs:
