/root/repo/target/debug/examples/adaptive_policy-efdbfd6b08534f6a.d: examples/adaptive_policy.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_policy-efdbfd6b08534f6a.rmeta: examples/adaptive_policy.rs Cargo.toml

examples/adaptive_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
