/root/repo/target/debug/examples/mapreduce-651999f5cf4278e2.d: examples/mapreduce.rs

/root/repo/target/debug/examples/mapreduce-651999f5cf4278e2: examples/mapreduce.rs

examples/mapreduce.rs:
