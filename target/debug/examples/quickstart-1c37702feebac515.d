/root/repo/target/debug/examples/quickstart-1c37702feebac515.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-1c37702feebac515.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
