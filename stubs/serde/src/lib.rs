//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy architecture, this stub uses a
//! direct in-memory data model: [`Serialize`] converts a value into a
//! [`Value`] tree, [`Deserialize`] reconstructs a value from one. The
//! `serde_json` stub then renders/parses that tree. This supports everything
//! the workspace derives — named structs, newtype/tuple structs, enums with
//! unit and data variants, maps keyed by integers or unit-variant enums, and
//! `#[serde(skip)]` — with deterministic field ordering.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Map),
}

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no NaN/inf; serde_json writes null.
                    write!(f, "null")
                }
            }
        }
    }
}

impl Value {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as `f64` (integers convert losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// This number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// This number as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// True if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// An insertion-ordered string-keyed map (derive output keeps declaration
/// order, so serialized objects are deterministic).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Appends (or replaces) a key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The first entry, if any (used for externally-tagged enums).
    pub fn first(&self) -> Option<(&String, &Value)> {
        self.entries.first().map(|(k, v)| (k, v))
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> MapIter<'_> {
        MapIter(self.entries.iter())
    }
}

/// Iterator over [`Map`] entries.
pub struct MapIter<'a>(std::slice::Iter<'a, (String, Value)>);

impl<'a> Iterator for MapIter<'a> {
    type Item = (&'a String, &'a Value);
    fn next(&mut self) -> Option<Self::Item> {
        self.0.next().map(|(k, v)| (k, v))
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = MapIter<'a>;
    fn into_iter(self) -> MapIter<'a> {
        self.iter()
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Reads one named field of an object (derive helper). Missing fields are
/// deserialized from `null`, which succeeds only for nullable targets like
/// `Option`.
pub fn de_field<T: Deserialize>(v: &Value, field: &str) -> Result<T, Error> {
    let obj = match v {
        Value::Object(m) => m,
        other => {
            return Err(Error::msg(format!(
                "expected object with field `{field}`, got {other:?}"
            )))
        }
    };
    match obj.get(field) {
        Some(x) => T::from_value(x)
            .map_err(|e| Error::msg(format!("field `{field}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::msg(format!("missing field `{field}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U64(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::I64(v))
                } else {
                    Value::Number(Number::U64(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Non-finite floats serialize to null (as serde_json does);
            // round them back to NaN rather than failing.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::msg("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::msg("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                let expect = [$($idx),+].len();
                if a.len() != expect {
                    return Err(Error::msg(format!(
                        "expected tuple of {expect} elements, got {}", a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Renders a scalar serialized key as an object key string.
fn key_to_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map keys must serialize to scalars, got {other:?}"),
    }
}

/// Rebuilds a key type from its object-key string form.
fn key_from_str<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::U64(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::I64(i))) {
            return Ok(k);
        }
    }
    if let Ok(b) = s.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!("cannot rebuild map key from `{s}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_to_string(&k.to_value()), v.to_value());
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Hash iteration order is arbitrary; sort the rendered keys so
        // output stays deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        Value::Object(m)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
        let arr = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(<[f64; 5]>::from_value(&arr.to_value()).unwrap(), arr);
        let t = (1u32, "x".to_string());
        assert_eq!(
            <(u32, String)>::from_value(&t.to_value()).unwrap(),
            t
        );
    }

    #[test]
    fn maps_round_trip_with_integer_keys() {
        let mut m = BTreeMap::new();
        m.insert(3u8, "c".to_string());
        m.insert(1u8, "a".to_string());
        let back = BTreeMap::<u8, String>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z", Value::Null);
        m.insert("a", Value::Bool(true));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a"]);
    }
}
