//! Minimal offline stand-in for the `rand_distr` crate.
//!
//! Implements the distributions this workspace samples — `Exp`,
//! `LogNormal`, `Pareto`, `Uniform` and `Zipf` — by inverse-transform (and
//! Box–Muller for the normal), which is exact for all but `Zipf`, where a
//! continuous power-law inversion approximates the discrete ranks (correct
//! support, correct skew; the workspace only asserts those two properties).

use rand::RngCore;

/// Invalid-parameter error. The workspace only ever `.expect()`s these, so
/// one shared carrier type with a message is enough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be sampled from a distribution.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform in `[0, 1)`.
#[inline]
fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution; `lambda` must be positive and
    /// finite.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(Error("Exp: lambda must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: -ln(1-u)/λ; 1-u ∈ (0, 1] keeps ln finite.
        -(1.0 - unit(rng)).ln() / self.lambda
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution; `sigma` must be finite and
    /// non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma.is_finite() && sigma >= 0.0 && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(Error("LogNormal: sigma must be finite and non-negative"))
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: z = sqrt(-2 ln u1) · cos(2π u2), u1 ∈ (0, 1].
        let u1 = 1.0 - unit(rng);
        let u2 = unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Pareto distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution; both parameters must be positive and
    /// finite.
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if scale > 0.0 && scale.is_finite() && shape > 0.0 && shape.is_finite() {
            Ok(Pareto { scale, shape })
        } else {
            Err(Error("Pareto: scale and shape must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: x_min · (1-u)^(-1/α).
        self.scale * (1.0 - unit(rng)).powf(-1.0 / self.shape)
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<X> {
    lo: X,
    hi: X,
}

impl<X: PartialOrd> Uniform<X> {
    /// Creates a uniform distribution; requires `lo < hi`.
    pub fn new(lo: X, hi: X) -> Result<Self, Error> {
        if lo < hi {
            Ok(Uniform { lo, hi })
        } else {
            Err(Error("Uniform: requires lo < hi"))
        }
    }
}

impl Distribution<f64> for Uniform<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + unit(rng) * (self.hi - self.lo)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf<F> {
    n: F,
    s: F,
}

impl Zipf<f64> {
    /// Creates a Zipf distribution; `n >= 1` and `s` positive and finite.
    pub fn new(n: f64, s: f64) -> Result<Self, Error> {
        if n >= 1.0 && n.is_finite() && s > 0.0 && s.is_finite() {
            Ok(Zipf { n, s })
        } else {
            Err(Error("Zipf: need n >= 1 and positive finite s"))
        }
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Continuous power-law inversion over [1, n+1), floored to a rank:
        // density ∝ x^-s, CDF inverted in closed form. Approximates the
        // discrete Zipf pmf while keeping exact support and heavy skew.
        let u = unit(rng);
        let top = self.n + 1.0;
        let x = if (self.s - 1.0).abs() < 1e-9 {
            top.powf(u)
        } else {
            let one_minus_s = 1.0 - self.s;
            (1.0 + u * (top.powf(one_minus_s) - 1.0)).powf(1.0 / one_minus_s)
        };
        x.floor().clamp(1.0, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean(d: &impl Distribution<f64>, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exp_mean_matches_rate() {
        let d = Exp::new(0.1).unwrap();
        let m = mean(&d, 50_000, 1);
        assert!((m - 10.0).abs() < 0.3, "exp mean was {m}");
    }

    #[test]
    fn log_normal_mean_matches_closed_form() {
        let (mu, sigma) = (1.0, 0.5);
        let d = LogNormal::new(mu, sigma).unwrap();
        let want = (mu + sigma * sigma / 2.0f64).exp();
        let m = mean(&d, 100_000, 2);
        assert!((m - want).abs() < 0.05 * want, "lognormal mean {m} vs {want}");
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn uniform_bounds_and_errors() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        let d = Uniform::new(5.0, 6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((5.0..6.0).contains(&v));
        }
    }

    #[test]
    fn zipf_support_and_skew() {
        let d = Zipf::new(100.0, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut rank1 = 0;
        for _ in 0..1000 {
            let r = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&r));
            if r == 1.0 {
                rank1 += 1;
            }
        }
        assert!(rank1 > 100, "rank 1 should dominate, got {rank1}/1000");
    }
}
