//! Minimal offline stand-in for `serde_json`.
//!
//! Works over the stub `serde`'s in-memory [`Value`] data model: rendering
//! ([`to_string`], [`to_string_pretty`]), conversion ([`to_value`]) and a
//! small recursive-descent parser ([`from_str`]). Numbers round-trip
//! losslessly: integers stay integers (`u64`/`i64`), floats use Rust's
//! shortest round-trippable formatting.

pub use serde::{Error, Map, Number, Value};

/// `Result` alias matching upstream's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and deserializes it.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Rendering

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(colon);
                write_value(out, val, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // stub's writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::msg("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::msg("expected `,` or `}` in object")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn nested_round_trip() {
        let json = r#"{"a":[1,2,{"b":"x\ny"}],"c":null}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Value = from_str(r#"{"a":1}"#).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        let v: Value = from_str(&n.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(n));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{],").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
