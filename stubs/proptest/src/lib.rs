//! Minimal offline stand-in for `proptest`.
//!
//! Keeps the surface this workspace's property tests use — the `proptest!`
//! macro (with `#![proptest_config]` and explicit `#[test]` attributes),
//! range / tuple / `collection::vec` strategies, `prop_map`, `prop_oneof!`,
//! `Just`, `any`, `prop::sample::Index`, and the `prop_assert*` family —
//! while replacing the engine: cases are generated from a deterministic
//! per-(test, case) SplitMix64 stream and failures are **not shrunk**; the
//! failing case index and message are reported instead.

pub mod strategy;
pub mod test_runner;

pub mod sample {
    //! Random index selection.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A stand-in for an arbitrary collection index: holds raw randomness,
    /// projected onto `0..len` on demand.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// This index projected onto a collection of length `len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy producing [`Index`] values (used via `any::<Index>()`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()`: canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next_u64())
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector strategy: each case draws a length in `size`, then that
    /// many elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// `prop::` module alias (e.g. `prop::sample::Index`).
    pub use crate as prop;
}

// Re-export so `proptest::prop::...` paths also work.
pub use crate as prop;

/// Builds a strategy choosing uniformly among the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property-test assertion: fails the current case without panicking the
/// whole harness (the runner reports the case index and message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
}

/// Discards the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Declares property tests. Each `fn name(binding in strategy, ...) { .. }`
/// becomes a test running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $binding =
                                $crate::strategy::Strategy::generate(&$strategy, &mut __rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}
