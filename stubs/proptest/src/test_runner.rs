//! Deterministic case generation and runner plumbing.

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this stub trades a little coverage for
        // fast offline `cargo test` runs.
        ProptestConfig { cases: 64 }
    }
}

/// Why one generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case, count nothing.
    Reject(String),
    /// `prop_assert*!` failed: the property is violated.
    Fail(String),
}

/// Deterministic per-case random stream (SplitMix64 seeded from a hash of
/// the fully-qualified test name and the case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, then fold in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        let mut c = TestRng::for_case("x::y", 4);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }
}
