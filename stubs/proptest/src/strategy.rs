//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; requires at least one arm.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one strategy");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}
