//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides exactly the surface this workspace uses: `rngs::StdRng` seeded
//! via `SeedableRng::seed_from_u64`, the `RngCore` primitive-output trait,
//! and the `Rng` extension trait's `random_range` / `random_bool`.
//!
//! `StdRng` here is a SplitMix64 generator: 64-bit state, full-period,
//! passes the statistical needs of the simulators (uniformity, independence
//! across seeds). It is *not* stream-compatible with upstream `rand`; the
//! workspace's tests only rely on same-seed self-consistency.

use std::ops::Range;

/// Primitive random-output interface.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as u128) - (self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample from empty range {}..{}",
            self.start,
            self.end
        );
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p` (must be in `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): one add + two xor-mul
            // mixes; equidistributed over the full 2^64 period.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = r.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&u));
            let v: u64 = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let i: usize = r.random_range(0usize..5);
            assert!(i < 5);
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_is_centered() {
        let mut r = StdRng::seed_from_u64(6);
        let n = 100_000;
        let m: f64 = (0..n).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((m - 0.5).abs() < 0.01, "mean was {m}");
    }
}
