//! Offline stand-in for `serde_derive`.
//!
//! Derives the stub `serde`'s [`Serialize`]/[`Deserialize`] traits (the
//! direct value-model pair, not upstream serde's visitor machinery) by
//! walking the raw token stream — no `syn`/`quote`, so the stub stays
//! dependency-free. Supported shapes are exactly what this workspace
//! declares: non-generic named structs, tuple structs, unit structs, and
//! enums with unit / named-field / tuple variants, plus the field attribute
//! `#[serde(skip)]` (omitted on serialize, defaulted on deserialize).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Item model

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Named(Vec<Field>),
    /// Tuple struct: per-position skip flags.
    Tuple(Vec<bool>),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing

/// True if an attribute group (`[...]` contents) is `serde(skip)`.
fn attr_is_skip(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes leading attributes from `tokens[*i..]`, returning whether any
/// was `#[serde(skip)]`.
fn eat_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        skip |= attr_is_skip(g);
                        *i += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    skip
}

/// Consumes an optional `pub` / `pub(...)` from `tokens[*i..]`.
fn eat_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Splits a token slice at top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments don't split (grouped delimiters are
/// single trees already).
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses `name: Type` fields (with attributes/visibility) from the token
/// stream of a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_commas(stream.into_iter().collect())
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut i = 0;
            let skip = eat_attrs(&part, &mut i);
            eat_vis(&part, &mut i);
            let name = match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, found {other}"),
            };
            Field { name, skip }
        })
        .collect()
}

/// Parses tuple-struct/variant fields, returning per-position skip flags.
fn parse_tuple_fields(stream: TokenStream) -> Vec<bool> {
    split_commas(stream.into_iter().collect())
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut i = 0;
            let skip = eat_attrs(&part, &mut i);
            eat_vis(&part, &mut i);
            skip
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        eat_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected enum variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Discriminants (`= expr`) and trailing commas.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    eat_attrs(&tokens, &mut i);
    eat_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("stub serde_derive does not support generic types (deriving `{name}`)");
    }
    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Shape::Tuple(parse_tuple_fields(g.stream())))
            }
            _ => Body::Struct(Shape::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };
    Item { name, body }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize

/// Expression serializing named fields bound as local references into a map
/// expression.
fn ser_named(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::from("{ let mut __m = ::serde::Map::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "__m.insert(\"{n}\", ::serde::Serialize::to_value({a}));\n",
            n = f.name,
            a = access(&f.name)
        ));
    }
    out.push_str("::serde::Value::Object(__m) }");
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Shape::Named(fields)) => ser_named(fields, |f| format!("&self.{f}")),
        Body::Struct(Shape::Tuple(skips)) => {
            let live: Vec<usize> = (0..skips.len()).filter(|&i| !skips[i]).collect();
            if live.len() == 1 {
                // Newtype structs serialize transparently, as upstream does.
                format!("::serde::Serialize::to_value(&self.{})", live[0])
            } else {
                let elems: Vec<String> = live
                    .iter()
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            }
        }
        Body::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Named(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = ser_named(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => {{ let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(\"{vn}\", {inner});\n\
                             ::serde::Value::Object(__outer) }}\n",
                            b = binds.join(", ")
                        ));
                    }
                    Shape::Tuple(skips) => {
                        let binds: Vec<String> =
                            (0..skips.len()).map(|i| format!("__f{i}")).collect();
                        let live: Vec<&String> = binds
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| !skips[*i])
                            .map(|(_, b)| b)
                            .collect();
                        let payload = if live.len() == 1 {
                            format!("::serde::Serialize::to_value({})", live[0])
                        } else {
                            let elems: Vec<String> = live
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({b}) => {{ let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(\"{vn}\", {payload});\n\
                             ::serde::Value::Object(__outer) }}\n",
                            b = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize

/// `Name { f1: de_field(..)?, skipped: Default::default() }` initializer.
fn de_named(path: &str, fields: &[Field], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default()", f.name)
            } else {
                format!("{n}: ::serde::de_field({src}, \"{n}\")?", n = f.name)
            }
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn de_tuple(path: &str, skips: &[bool], src: &str) -> String {
    let live: Vec<usize> = (0..skips.len()).filter(|&i| !skips[i]).collect();
    if live.len() == 1 && skips.len() == 1 {
        return format!("{path}(::serde::Deserialize::from_value({src})?)");
    }
    let mut out = format!(
        "{{ let __a = {src}.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for {path}\"))?;\n\
         if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"wrong tuple arity for {path}\")); }}\n\
         {path}(",
        n = live.len()
    );
    let mut arg = 0usize;
    let inits: Vec<String> = skips
        .iter()
        .map(|&skip| {
            if skip {
                "::std::default::Default::default()".to_string()
            } else {
                let s = format!("::serde::Deserialize::from_value(&__a[{arg}])?");
                arg += 1;
                s
            }
        })
        .collect();
    out.push_str(&inits.join(", "));
    out.push_str(") }");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Shape::Named(fields)) => {
            format!(
                "::std::result::Result::Ok({})",
                de_named(name, fields, "__v")
            )
        }
        Body::Struct(Shape::Tuple(skips)) => {
            format!("::std::result::Result::Ok({})", de_tuple(name, skips, "__v"))
        }
        Body::Struct(Shape::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Named(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({}),\n",
                        de_named(&format!("{name}::{vn}"), fields, "__inner")
                    )),
                    Shape::Tuple(skips) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({}),\n",
                        de_tuple(&format!("{name}::{vn}"), skips, "__inner")
                    )),
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown {name} variant `{{__s}}`\"))),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = __m.first().expect(\"non-empty object\");\n\
                 match __tag.as_str() {{\n{data_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown {name} variant `{{__tag}}`\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected {name} variant\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
