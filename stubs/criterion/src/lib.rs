//! Minimal offline stand-in for `criterion`.
//!
//! Same authoring surface ([`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! `criterion_group!` / `criterion_main!`) but a much simpler engine: each
//! benchmark is timed over a fixed number of batches and the median batch
//! time is printed. There is no HTML report, no statistical analysis, and
//! no baseline storage. `cargo bench -- --test` (what CI uses) runs every
//! routine exactly once to smoke-test it; positional arguments act as
//! substring filters on benchmark names.

use std::time::Instant;

/// How `iter_batched` amortizes setup cost. The stub times setup and
/// routine together but runs batches small enough that it rarely matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input; setup runs once per timed iteration.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per batch of iterations.
    PerIteration,
}

/// Shared run options parsed from the command line.
#[derive(Debug, Clone)]
struct RunOpts {
    /// Run each routine once, untimed (CI smoke mode, `--test`).
    test_mode: bool,
    /// Positional substring filters; empty means "run everything".
    filters: Vec<String>,
}

impl RunOpts {
    fn from_args() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags the real harness accepts; ignore them (and one
                // value for the ones that take a value).
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline"
                | "--sample-size" | "--measurement-time" | "--warm-up-time"
                | "--noplot" | "--quiet" | "--verbose" | "--exact" => {}
                a if a.starts_with('-') => {}
                a => filters.push(a.to_string()),
            }
        }
        RunOpts { test_mode, filters }
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }
}

/// Per-routine timing handle passed to `bench_function` closures.
pub struct Bencher<'a> {
    opts: &'a RunOpts,
    /// Median seconds per iteration, filled in by `iter`/`iter_batched`.
    median_ns: Option<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, recording the median over several batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.opts.test_mode {
            std::hint::black_box(routine());
            return;
        }
        self.median_ns = Some(median_time_ns(|| {
            std::hint::black_box(routine());
        }));
    }

    /// Times `routine` over inputs produced by `setup`. The stub re-runs
    /// `setup` before every timed call; setup time is *excluded*.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.opts.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

const SAMPLES: usize = 11;

/// Runs `f` `SAMPLES` times and returns the median duration in ns.
fn median_time_ns(mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn report(name: &str, median_ns: Option<f64>, test_mode: bool) {
    if test_mode {
        println!("test {name} ... ok");
    } else if let Some(ns) = median_ns {
        println!("{name:<50} median {}", format_ns(ns));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The benchmark manager handed to each `criterion_group!` function.
pub struct Criterion {
    opts: RunOpts,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            opts: RunOpts::from_args(),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name = name.into();
        if self.opts.matches(&name) {
            let mut b = Bencher {
                opts: &self.opts,
                median_ns: None,
            };
            f(&mut b);
            report(&name, b.median_ns, self.opts.test_mode);
        }
        self
    }

    /// Opens a named group; benchmarks inside report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark inside this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        if self.criterion.opts.matches(&full) {
            let mut b = Bencher {
                opts: &self.criterion.opts,
                median_ns: None,
            };
            f(&mut b);
            report(&full, b.median_ns, self.criterion.opts.test_mode);
        }
        self
    }

    /// Ends the group (no-op beyond matching upstream's API).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut __c = <$crate::Criterion as ::std::default::Default>::default();
            $($target(&mut __c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_paths_and_filters() {
        let opts = RunOpts {
            test_mode: true,
            filters: vec!["queue".to_string()],
        };
        assert!(opts.matches("event_queue_push_pop"));
        assert!(!opts.matches("dfs_create"));
        let all = RunOpts {
            test_mode: true,
            filters: vec![],
        };
        assert!(all.matches("anything"));
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(500.0), "500 ns");
        assert_eq!(format_ns(2_500.0), "2.500 us");
        assert_eq!(format_ns(3_000_000.0), "3.000 ms");
        assert_eq!(format_ns(1.5e9), "1.500 s");
    }
}
