//! The §5 YARN scenario: a Facebook-derived workload on an 8-node cluster,
//! comparing stock kill-based preemption against checkpointing on NVM.
//!
//! ```text
//! cargo run --release --example yarn_cluster
//! ```

use cbp::core::PreemptionPolicy;
use cbp::storage::MediaKind;
use cbp::workload::facebook::FacebookConfig;
use cbp::yarn::YarnConfig;

fn main() {
    // 40 jobs / ~7,000 tasks, one production job larger than the cluster
    // (8 nodes x 24 containers), each task a ~1.8 GB k-means program.
    let workload = FacebookConfig::default().generate(7);
    println!(
        "workload: {} jobs / {} tasks on 8 nodes x 24 containers\n",
        workload.job_count(),
        workload.task_count()
    );

    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "policy", "wasted[c-h]", "kWh", "low[min]", "high[min]", "kills", "chks"
    );
    for (policy, media) in [
        (PreemptionPolicy::Kill, MediaKind::Ssd),
        (PreemptionPolicy::Checkpoint, MediaKind::Hdd),
        (PreemptionPolicy::Checkpoint, MediaKind::Ssd),
        (PreemptionPolicy::Checkpoint, MediaKind::Nvm),
        (PreemptionPolicy::Adaptive, MediaKind::Nvm),
    ] {
        let report = YarnConfig::paper_cluster(policy, media).run(&workload);
        let label = if policy == PreemptionPolicy::Kill {
            "Kill (stock)".to_string()
        } else {
            format!("{policy}-{media}")
        };
        println!(
            "{:<16} {:>12.2} {:>10.2} {:>10.1} {:>10.1} {:>8} {:>8}",
            label,
            report.wasted_cpu_hours(),
            report.energy_kwh,
            report.mean_low_response() / 60.0,
            report.mean_high_response() / 60.0,
            report.kills,
            report.checkpoints
        );
    }

    println!(
        "\nThe ContainerPreemptEvent -> AM Preemption Manager -> CRIU dump -> \
         HDFS -> restore pipeline runs at message granularity; see \
         crates/yarn for the protocol."
    );
}
