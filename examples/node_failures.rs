//! Node failures meet checkpoint replication.
//!
//! The Google trace's evictions include machines becoming unusable. With
//! kill-based preemption a machine failure throws away every victim's
//! progress; with checkpoint-based preemption *and* HDFS-replicated images,
//! tasks that had been suspended (or checkpointed earlier) resume from
//! their last image instead of restarting.
//!
//! ```text
//! cargo run --release --example node_failures
//! ```

use cbp::core::{PreemptionPolicy, SimConfig};
use cbp::simkit::SimDuration;
use cbp::storage::MediaKind;
use cbp::workload::google::GoogleTraceConfig;

fn main() {
    let workload = GoogleTraceConfig::small(250.0).generate(21);
    println!(
        "workload: {} jobs / {} tasks; every node fails about once per \
         20 simulated minutes\n",
        workload.job_count(),
        workload.task_count()
    );

    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>12}",
        "policy", "failures", "images lost", "lost CPU[c-h]", "makespan[s]"
    );
    for (label, policy, via_dfs) in [
        ("Kill", PreemptionPolicy::Kill, true),
        ("Checkpoint (local FS)", PreemptionPolicy::Checkpoint, false),
        ("Checkpoint (HDFS)", PreemptionPolicy::Checkpoint, true),
    ] {
        let mut config = SimConfig::trace_sim(policy, MediaKind::Ssd)
            .with_nodes(6)
            .with_failures(SimDuration::from_secs(1_200), SimDuration::from_secs(120));
        config.via_dfs = via_dfs;
        let report = config.run(&workload);
        let m = &report.metrics;
        println!(
            "{:<22} {:>10} {:>12} {:>14.2} {:>12.0}",
            label,
            m.failure_evictions,
            m.images_lost_to_failures,
            m.kill_lost_cpu_hours,
            m.makespan_secs
        );
    }

    println!(
        "\nHDFS replication keeps every checkpoint readable after a node \
         dies; the local-FS configuration loses the images stored on the \
         failed machine and their tasks restart from scratch."
    );
}
