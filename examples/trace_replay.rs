//! Trace replay + §2-style preemption analysis.
//!
//! Generates a Google-like trace, replays it through the kill-based
//! scheduler (the status quo the paper argues against), then applies the
//! paper's 5-second preemption-detection criterion to the emitted scheduler
//! event log — reproducing the shape of Fig. 1 and Tables 1–2.
//!
//! ```text
//! cargo run --release --example trace_replay [seed]
//! ```

use cbp::core::{PreemptionPolicy, SimConfig};
use cbp::storage::MediaKind;
use cbp::workload::analysis::PreemptionAnalysis;
use cbp::workload::google::GoogleTraceConfig;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    let workload = GoogleTraceConfig::one_day()
        .scaled(0.05)
        .with_load_factor(1.35)
        .generate(seed);
    println!(
        "trace: {} jobs / {} tasks (5% of the one-day Google-like trace)",
        workload.job_count(),
        workload.task_count()
    );

    let config = SimConfig::trace_sim(PreemptionPolicy::Kill, MediaKind::Hdd).with_nodes(10);
    let report = config.run(&workload);
    let analysis = PreemptionAnalysis::analyze(&report.trace);

    println!("\n-- Table 1: preemption per priority band (paper: 20.26 / 0.55 / 1.02 %)");
    for (band, counts) in &analysis.per_band {
        println!(
            "  {:<18} scheduled {:>8}   preempted {:>6.2}%",
            band.to_string(),
            counts.scheduled_tasks,
            counts.preempted_fraction() * 100.0
        );
    }

    println!("\n-- Table 2: preemption per latency class");
    for class in cbp::workload::LatencyClass::ALL {
        let counts = analysis.per_latency[class.0 as usize];
        println!(
            "  {:<10} scheduled {:>8}   preempted {:>6.2}%",
            class.to_string(),
            counts.scheduled_tasks,
            counts.preempted_fraction() * 100.0
        );
    }

    println!("\n-- Fig. 1c: repeated preemption");
    for (i, count) in analysis.preemption_count_histogram.iter().enumerate() {
        let label = if i == 9 {
            ">=10".into()
        } else {
            format!("{}", i + 1)
        };
        println!("  preempted {label:>4} time(s): {count} tasks");
    }

    println!(
        "\noverall: {:.1}% of scheduled tasks preempted (paper: 12.4%), \
         {:.1}% of preempted tasks hit more than once (paper: 43.5%)",
        analysis.overall.preempted_fraction() * 100.0,
        analysis.repeat_preemption_fraction() * 100.0
    );
    println!(
        "kill-based waste: {:.1} CPU-hours = {:.1}% of usage (paper: up to 35%)",
        analysis.wasted_cpu_hours,
        analysis.waste_fraction() * 100.0
    );
}
