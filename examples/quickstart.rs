//! Quickstart: run one contended workload under all four preemption
//! policies and compare what each one costs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cbp::core::{PreemptionPolicy, SimConfig};
use cbp::storage::MediaKind;
use cbp::workload::google::GoogleTraceConfig;
use cbp::workload::PriorityBand;

fn main() {
    // A small Google-like workload: ~300 jobs over one simulated hour,
    // heavy-tailed job sizes, twelve priority levels.
    let workload = GoogleTraceConfig::small(300.0).generate(42);
    println!(
        "workload: {} jobs / {} tasks / {:.1} CPU-hours of work\n",
        workload.job_count(),
        workload.task_count(),
        workload.total_cpu_hours()
    );

    println!(
        "{:<12} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "policy", "wasted[c-h]", "kWh", "low[s]", "high[s]", "preemptions"
    );
    for policy in PreemptionPolicy::ALL {
        // A six-node cluster with SSD checkpoint storage, checkpoints
        // replicated through the built-in HDFS model.
        let config = SimConfig::trace_sim(policy, MediaKind::Ssd).with_nodes(6);
        let report = config.run(&workload);
        let m = &report.metrics;
        println!(
            "{:<12} {:>12.2} {:>10.2} {:>12.0} {:>12.0} {:>12}",
            policy.to_string(),
            m.wasted_cpu_hours(),
            m.energy_kwh,
            m.mean_response(PriorityBand::Free),
            m.mean_response(PriorityBand::Production),
            m.preemptions
        );
    }

    println!(
        "\nKill loses victims' progress; Checkpoint suspends and resumes them; \
         Adaptive (the paper's Algorithm 1) picks per victim."
    );
}
