//! MapReduce under checkpoint-based preemption — the paper's §7 future
//! work, implemented: two-phase jobs whose reduces wait for every map.
//!
//! Killing a nearly-done map forces the whole split to re-run and delays
//! the reduce barrier; suspending it keeps the barrier moving. This example
//! runs the same MapReduce workload under kill and checkpoint preemption
//! and compares barrier-sensitive response times.
//!
//! ```text
//! cargo run --release --example mapreduce
//! ```

use cbp::core::PreemptionPolicy;
use cbp::storage::MediaKind;
use cbp::workload::mapreduce::MapReduceConfig;
use cbp::yarn::YarnConfig;

fn main() {
    let plan = MapReduceConfig::default().generate(11);
    println!(
        "workload: {} MapReduce jobs, {} maps + {} reduces\n",
        plan.workload.job_count(),
        plan.map_count(),
        plan.reduce_count()
    );

    println!(
        "{:<18} {:>12} {:>10} {:>10} {:>8} {:>8}",
        "policy", "wasted[c-h]", "low[min]", "high[min]", "kills", "chks"
    );
    for (policy, media) in [
        (PreemptionPolicy::Kill, MediaKind::Ssd),
        (PreemptionPolicy::Checkpoint, MediaKind::Ssd),
        (PreemptionPolicy::Checkpoint, MediaKind::Nvm),
        (PreemptionPolicy::Adaptive, MediaKind::Nvm),
    ] {
        let mut cfg = YarnConfig::paper_cluster(policy, media);
        cfg.nodes = 2;
        let r = cfg.run_mapreduce(&plan);
        let label = if policy == PreemptionPolicy::Kill {
            "Kill (stock)".to_string()
        } else {
            format!("{policy}-{media}")
        };
        println!(
            "{:<18} {:>12.2} {:>10.1} {:>10.1} {:>8} {:>8}",
            label,
            r.wasted_cpu_hours(),
            r.mean_low_response() / 60.0,
            r.mean_high_response() / 60.0,
            r.kills,
            r.checkpoints
        );
    }

    println!(
        "\nReduces start only after the last map of their job completes, so \
         every map kill delays the whole job; suspend-resume keeps map \
         progress and the barrier."
    );
}
