//! The adaptive-preemption decision up close (§3.3.3 / §4.2.2): two k-means
//! jobs on one machine, swept over checkpoint bandwidth.
//!
//! A low-priority 5 GB job runs for 30 s before a high-priority job needs
//! the machine. At each bandwidth the policies choose differently:
//! `Kill` is best for the high-priority job but wastes the victim's
//! progress; `Checkpoint` preserves progress but stalls the high-priority
//! job behind the dump; `Adaptive` applies Algorithm 1 — checkpoint only if
//! the progress at risk exceeds `size/bw_w + size/bw_r + queue`.
//!
//! ```text
//! cargo run --release --example adaptive_policy
//! ```

use cbp::core::scenario::SensitivityScenario;
use cbp::core::PreemptionPolicy;

fn main() {
    let scenario = SensitivityScenario::default();
    let base = scenario.undisturbed_secs();
    println!(
        "scenario: low-priority 5 GB k-means preempted after 30 s of its \
         {base:.0} s runtime\n"
    );

    println!(
        "{:>9} | {:>22} | {:>22} | {:>14}",
        "bw [GB/s]", "high-pri response [x]", "low-pri response [x]", "energy vs wait"
    );
    println!(
        "{:>9} | {:>4} {:>5} {:>5} {:>5} | {:>4} {:>5} {:>5} {:>5} | {:>6} {:>6}",
        "", "wait", "kill", "chk", "adapt", "wait", "kill", "chk", "adapt", "chk", "adapt"
    );
    for bw in [1.0, 2.0, 3.0, 4.0, 5.0] {
        let wait = scenario.run(PreemptionPolicy::Wait, bw);
        let kill = scenario.run(PreemptionPolicy::Kill, bw);
        let chk = scenario.run(PreemptionPolicy::Checkpoint, bw);
        let adapt = scenario.run(PreemptionPolicy::Adaptive, bw);
        println!(
            "{:>9.1} | {:>4.2} {:>5.2} {:>5.2} {:>5.2} | {:>4.2} {:>5.2} {:>5.2} {:>5.2} | {:>6.2} {:>6.2}",
            bw,
            wait.high_normalized(base),
            kill.high_normalized(base),
            chk.high_normalized(base),
            adapt.high_normalized(base),
            wait.low_normalized(base),
            kill.low_normalized(base),
            chk.low_normalized(base),
            adapt.low_normalized(base),
            chk.energy_kwh / wait.energy_kwh,
            adapt.energy_kwh / wait.energy_kwh,
        );
    }

    println!(
        "\nAt low bandwidth Adaptive matches Kill (checkpointing would cost \
         more than the 30 s at risk); at high bandwidth it matches \
         Checkpoint — never worse than either, exactly Fig. 6's shape."
    );
}
