//! # cbp — checkpoint-based preemption for shared clusters
//!
//! A Rust reproduction of *"Improving Preemptive Scheduling with
//! Application-Transparent Checkpointing in Shared Clusters"* (Middleware
//! 2015). This facade crate re-exports the workspace's sub-crates under one
//! namespace; see the repository `README.md` and `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the reproduced tables and figures.
//!
//! ```
//! use cbp::simkit::SimTime;
//! assert_eq!(SimTime::from_secs(1).as_micros(), 1_000_000);
//! ```

#![forbid(unsafe_code)]

pub use cbp_checkpoint as checkpoint;
pub use cbp_cluster as cluster;
pub use cbp_core as core;
pub use cbp_dfs as dfs;
pub use cbp_faults as faults;
pub use cbp_obs as obs;
pub use cbp_prof as prof;
pub use cbp_simkit as simkit;
pub use cbp_storage as storage;
pub use cbp_telemetry as telemetry;
pub use cbp_workload as workload;
pub use cbp_yarn as yarn;
