//! The trace-driven cluster scheduling simulator.
//!
//! One [`ClusterSim`] runs one [`Workload`] under one [`SimConfig`]. The
//! scheduler is priority-based (the paper's system model, §3.1): pending
//! tasks are served highest priority first, FIFO within a priority; when a
//! task cannot be placed, lower-priority running tasks are preempted
//! according to the configured [`PreemptionPolicy`].

use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap, HashSet};

use cbp_checkpoint::{plan_evictions, Criu, EvictionCandidate, NvramCheckpointer};
use cbp_cluster::{Container, ContainerId, EnergyMeter, Node, NodeId, Resources};
use cbp_dfs::{DfsCluster, DnId};
use cbp_faults::{BreakerTransition, FaultPlan, HealthMonitor};
use cbp_simkit::units::ByteSize;
use cbp_simkit::{
    run_until_observed, EventQueue, RunStats, SimDuration, SimRng, SimTime, Simulation,
};
use cbp_storage::{Device, MediaKind, OpKind};
use cbp_telemetry::{
    MetricsRegistry, NullTracer, PreemptAction, StreamingQuantiles, TimeSeries, TraceRecord, Tracer,
};
use cbp_workload::analysis::{TraceEvent, TraceEventKind, TraceLog};
use cbp_workload::{Priority, PriorityBand, TaskSpec, Workload};

use crate::config::{PreemptionPolicy, RestorePlacement, SimConfig, VictimSelection};
use crate::metrics::{MetricsCollector, RunReport, TelemetryReport};
use crate::task::{TaskState, TaskStatus};

/// Short stable device name for trace records.
fn media_name(kind: MediaKind) -> &'static str {
    match kind {
        MediaKind::Hdd => "hdd",
        MediaKind::Ssd => "ssd",
        MediaKind::Nvm => "nvm",
    }
}

/// Periodic sim-time probe state (see [`ClusterSim::enable_sampling`]).
struct Sampler {
    interval: SimDuration,
    next: SimTime,
    /// Cumulative device busy seconds at the previous sample, per node
    /// (used to derive a per-interval busy fraction).
    prev_busy: Vec<f64>,
    series: TimeSeries,
}

/// Simulation events (public because it is [`ClusterSim`]'s associated
/// [`Simulation::Event`] type; not intended for direct construction).
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A job's tasks enter the pending queue.
    JobSubmit(u32),
    /// A running task completes (stale if the epoch moved on).
    TaskFinish { task: u32, epoch: u32 },
    /// A checkpoint dump finished; the victim's resources can be released.
    DumpDone {
        task: u32,
        epoch: u32,
        started: SimTime,
    },
    /// A restore finished; the task resumes execution.
    RestoreDone {
        task: u32,
        epoch: u32,
        started: SimTime,
    },
    /// A node fails: every container on it is lost.
    NodeFail(u32),
    /// A failed node comes back into service.
    NodeRecover(u32),
    /// Window boundary of the chaos plan's crash schedule: evaluate the
    /// stateless crash oracle for every node (and rack) once per window.
    ChaosCrashTick,
    /// Window boundary of the chaos plan's partition schedule: start or
    /// heal the rack partition the stateless oracle dictates.
    ChaosPartitionTick,
    /// A chaos-crashed node comes back into service (separate from
    /// [`Event::NodeRecover`] so the MTBF chain stays untouched).
    ChaosRecover(u32),
    /// Window boundary of the pressure plan's leak schedule: evaluate the
    /// stateless leak oracle for every node once per window, reserving
    /// checkpoint-device bytes that no live image owns (simulating
    /// orphaned dump directories a real NM forgets to clean up).
    PressureTick,
}

/// Pending-queue key: highest priority first, then the discipline key
/// (0 under FIFO; the task's index within its job under Fair, which
/// interleaves jobs round-robin), then arrival order.
type PendingKey = (Reverse<u8>, u64, u64, u32);

struct NodeSlot {
    node: Node,
    device: Device,
    meter: EnergyMeter,
    /// NVRAM checkpoint engine (when the NVRAM backend is configured).
    nvram: Option<NvramCheckpointer>,
    /// False while the node is failed.
    up: bool,
}

/// The simulator. Most users go through [`SimConfig::run`]; constructing a
/// `ClusterSim` directly is useful for stepping or inspecting state in
/// tests.
pub struct ClusterSim {
    cfg: SimConfig,
    workload: Workload,
    nodes: Vec<NodeSlot>,
    tasks: Vec<TaskState>,
    pending: BTreeSet<PendingKey>,
    criu: Criu,
    dfs: Option<DfsCluster>,
    trace: TraceLog,
    metrics: MetricsCollector,
    rng: SimRng,
    next_container: u64,
    next_seq: u64,
    /// Capacity earmarked for a blocked task while its victims drain:
    /// owner task → reservation. Prevents both duplicate preemption rounds
    /// and backfill stealing the capacity a dump is freeing.
    reservations: HashMap<u32, Reservation>,
    /// Dumping victim → the blocked task its drain serves.
    drain_owner: HashMap<u32, u32>,
    /// Task → node holding its valid NVRAM mirror (NVRAM backend only).
    nvram_origin: HashMap<u32, u32>,
    /// Per-node sum of reservation amounts.
    node_reserved: Vec<Resources>,
    job_remaining: Vec<u32>,
    place_cursor: usize,
    /// Structured-event sink ([`NullTracer`] by default).
    tracer: Box<dyn Tracer>,
    /// Cached `tracer.enabled()` so the disabled path costs one branch.
    trace_on: bool,
    /// Periodic time-series probe (absent unless enabled).
    sampler: Option<Sampler>,
    /// Pending-queue depth after the previous event (for change records).
    last_queue_depth: usize,
    /// Deterministic fault oracle (absent when injection is off). Every
    /// decision is a pure hash of (plan seed, identity), so enabling an
    /// inert plan perturbs nothing and the same plan replays identically.
    faults: Option<FaultPlan>,
    /// Task → 0-based attempt index of its in-flight dump episode.
    dump_attempts: HashMap<u32, u32>,
    /// Task → durable bytes of its in-flight dump episode (the chunked
    /// resume frontier: monotone within an episode, cleared when the
    /// episode ends). A retried dump rewrites only the suffix past it.
    dump_frontier: HashMap<u32, u64>,
    /// Task → 0-based attempt index of its in-flight restore episode.
    restore_attempts: HashMap<u32, u32>,
    /// Tasks whose *current* image chain was corrupted at dump time
    /// (decided once per image: restore retries never help).
    corrupt_images: HashSet<u32>,
    /// Checkpoint-path circuit breakers (present iff the plan configures
    /// a breaker). Fed by dump/restore outcomes, capacity fallbacks and
    /// stall observations; consulted before every checkpoint preemption.
    health: Option<HealthMonitor>,
    /// Rack currently isolated by a chaos-plan network partition.
    active_partition: Option<u32>,
    /// Per-node checkpoint-device bytes reserved by injected leaks
    /// (pressure plan) that no live image owns. The conservation
    /// invariant is `device.used == ledger live bytes + leaked`; a GC
    /// pass reclaims these.
    leaked: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Reservation {
    node: usize,
    amount: Resources,
    drains_left: u32,
}

/// Outcome of chunk-level restore validation (resume mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainValidation {
    /// Every image verified (possibly after targeted replica re-fetches):
    /// the restore proceeds.
    Intact,
    /// The chain was cut to its longest valid prefix and a restore of the
    /// shorter chain is in flight.
    Truncated,
    /// No valid prefix survived: the task restarted from scratch.
    Dead,
}

impl ClusterSim {
    /// Builds a simulator for `workload` under `cfg`.
    pub fn new(cfg: SimConfig, workload: Workload) -> Self {
        let n_nodes = cfg.nodes;
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let faults = cfg
            .faults
            .clone()
            .filter(|spec| !spec.is_inert())
            .map(FaultPlan::new);
        // A pressure plan shrinks every node's checkpoint device before the
        // run starts (the fleet was provisioned smaller than the workload
        // needs); leak injection on top happens via `PressureTick`.
        let frac = faults.as_ref().map_or(1.0, |p| p.capacity_frac());
        let media = if frac < 1.0 {
            cfg.media.with_capacity(cfg.media.capacity().mul_f64(frac))
        } else {
            cfg.media
        };
        let nodes = (0..cfg.nodes)
            .map(|i| NodeSlot {
                node: Node::new(NodeId(i as u32), cfg.node_resources),
                device: Device::new(media),
                meter: EnergyMeter::new(cfg.energy),
                nvram: cfg.nvram.map(NvramCheckpointer::new),
                up: true,
            })
            .collect();
        let dfs = cfg.via_dfs.then(|| {
            DfsCluster::homogeneous(cfg.dfs, cfg.media, cfg.nodes, rng.fork(0xD0F5).next_seed())
        });

        let mut tasks = Vec::with_capacity(workload.task_count());
        let mut job_remaining = Vec::with_capacity(workload.job_count());
        for (job_idx, job) in workload.jobs().iter().enumerate() {
            job_remaining.push(job.tasks.len() as u32);
            for spec in &job.tasks {
                let spec = clamp_to_node(*spec, cfg.node_resources);
                tasks.push(TaskState::new(
                    spec,
                    job.priority,
                    job.latency,
                    job_idx as u32,
                    job.submit,
                ));
            }
        }

        let mut criu = Criu::new(cfg.incremental);
        if let Some(compression) = cfg.compression {
            criu = criu.with_compression(compression);
        }
        if let Some(plan) = &faults {
            // Manifests chunk at the plan's transfer granularity so the
            // per-chunk corruption draws and the resume frontier agree.
            criu = criu.with_chunk_bytes(plan.chunk_bytes());
        }
        let health = faults
            .as_ref()
            .and_then(|p| p.breaker())
            .map(|spec| HealthMonitor::new(*spec, n_nodes));
        ClusterSim {
            health,
            criu,
            faults,
            cfg,
            workload,
            nodes,
            tasks,
            pending: BTreeSet::new(),
            dfs,
            trace: TraceLog::new(),
            metrics: MetricsCollector::default(),
            rng,
            next_container: 1,
            next_seq: 0,
            reservations: HashMap::new(),
            drain_owner: HashMap::new(),
            nvram_origin: HashMap::new(),
            node_reserved: vec![Resources::ZERO; n_nodes],
            job_remaining,
            place_cursor: 0,
            tracer: Box::new(NullTracer),
            trace_on: false,
            sampler: None,
            last_queue_depth: 0,
            dump_attempts: HashMap::new(),
            dump_frontier: HashMap::new(),
            restore_attempts: HashMap::new(),
            corrupt_images: HashSet::new(),
            active_partition: None,
            leaked: vec![0; n_nodes],
        }
    }

    /// Replaces the structured-event tracer. The default is a
    /// [`NullTracer`]; pass a `JsonlTracer` / `ChromeTraceTracer` /
    /// `MultiTracer` to capture the run. The tracer's `finish()` is called
    /// at the end of [`ClusterSim::run`].
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.trace_on = tracer.enabled();
        self.tracer = tracer;
    }

    /// Enables the periodic time-series probe: every `interval` of sim
    /// time the simulator records cluster utilization, pending-queue depth
    /// per band, checkpoint-storage occupancy per node and device busy
    /// fraction. The series is returned in `RunReport.telemetry`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn enable_sampling(&mut self, interval: SimDuration) {
        assert!(!interval.is_zero(), "sampling interval must be non-zero");
        self.sampler = Some(Sampler {
            interval,
            next: SimTime::ZERO,
            prev_busy: vec![0.0; self.nodes.len()],
            series: TimeSeries::new(),
        });
    }

    fn schedule_next_failure(&mut self, node: usize, now: SimTime, q: &mut EventQueue<Event>) {
        // Once the workload has drained, stop injecting failures —
        // otherwise the fail/recover chain regenerates events forever and
        // the run never terminates.
        if self.job_remaining.iter().all(|&r| r == 0) {
            return;
        }
        if let Some(mtbf) = self.cfg.failure_mtbf_per_node {
            let gap = cbp_simkit::dist::Dist::Exp {
                mean: mtbf.as_secs_f64(),
            }
            .sample(&mut self.rng);
            q.push(
                now + SimDuration::from_secs_f64(gap),
                Event::NodeFail(node as u32),
            );
        }
    }

    /// Runs the workload to completion and returns the report.
    pub fn run(mut self) -> RunReport {
        let mut queue = EventQueue::with_capacity(self.tasks.len() * 2);
        // Task handles are assigned in job order; find each job's first task.
        for (job_idx, job) in self.workload.jobs().iter().enumerate() {
            queue.push(job.submit, Event::JobSubmit(job_idx as u32));
        }
        if self.cfg.failure_mtbf_per_node.is_some() {
            for node in 0..self.cfg.nodes {
                self.schedule_next_failure(node, SimTime::ZERO, &mut queue);
            }
        }
        if let Some(plan) = &self.faults {
            if plan.crash().is_some() {
                queue.push(SimTime::ZERO, Event::ChaosCrashTick);
            }
            if plan.partition().is_some() {
                queue.push(SimTime::ZERO, Event::ChaosPartitionTick);
            }
            if plan.pressure().is_some_and(|p| p.leak_prob > 0.0) {
                queue.push(SimTime::ZERO, Event::PressureTick);
            }
        }
        let stats = run_until_observed(&mut self, &mut queue, SimTime::MAX, &mut |_| {});
        let makespan = stats.now;
        if let Some(h) = &self.health {
            self.metrics.breaker_open_secs = h.open_secs_total(makespan);
        }
        self.tracer.finish();

        let label = format!("{}-{}", self.cfg.policy, self.cfg.media.kind());
        let energy_kwh: f64 = self.nodes.iter().map(|n| n.meter.kwh(makespan)).sum();
        let horizon = makespan.since(SimTime::ZERO);
        let io_overhead = mean(self.nodes.iter().map(|n| n.device.busy_fraction(horizon)));
        let storage_peak = mean(self.nodes.iter().map(|n| n.device.peak_used_fraction()));
        let incremental = self.criu.incremental_dumps();
        let registry = self.build_registry(makespan, energy_kwh, io_overhead, storage_peak, &stats);
        let telemetry = TelemetryReport {
            registry,
            timeseries: self.sampler.take().map(|s| s.series),
            engine_events: stats.events,
            engine_wall_secs: stats.wall.as_secs_f64(),
        };
        let metrics =
            self.metrics
                .into_metrics(makespan, energy_kwh, io_overhead, storage_peak, incremental);
        RunReport {
            label,
            metrics,
            trace: self.trace,
            telemetry,
        }
    }

    /// Snapshots every `subsystem.metric` this run tracked into a
    /// [`MetricsRegistry`].
    ///
    /// Everything registered here is a pure function of the simulation
    /// state, so the registry JSON is byte-stable across runs with the
    /// same seed (wall-clock engine throughput lives on
    /// [`TelemetryReport`] instead).
    fn build_registry(
        &self,
        makespan: SimTime,
        energy_kwh: f64,
        io_overhead: f64,
        storage_peak: f64,
        stats: &RunStats,
    ) -> MetricsRegistry {
        let m = &self.metrics;
        let mut reg = MetricsRegistry::new();
        reg.set_counter("engine.events", "events", stats.events);
        reg.set_counter("scheduler.preemptions", "ops", m.preemptions);
        reg.set_counter("scheduler.kills", "ops", m.kills);
        reg.set_counter("scheduler.checkpoints", "ops", m.checkpoints);
        reg.set_counter("scheduler.restores", "ops", m.restores);
        reg.set_counter("scheduler.remote_restores", "ops", m.remote_restores);
        reg.set_counter("scheduler.capacity_fallbacks", "ops", m.capacity_fallbacks);
        reg.set_counter(
            "lifecycle.gc_reclaimed_bytes",
            "bytes",
            m.gc_reclaimed_bytes,
        );
        reg.set_counter("lifecycle.evicted_chains", "ops", m.evicted_chains);
        reg.set_counter("lifecycle.spill_dumps", "ops", m.spill_dumps);
        reg.set_counter("lifecycle.no_space_kills", "ops", m.no_space_kills);
        reg.set_counter("scheduler.failure_evictions", "ops", m.failure_evictions);
        reg.set_counter(
            "scheduler.images_lost_to_failures",
            "ops",
            m.images_lost_to_failures,
        );
        reg.set_counter("scheduler.tasks_finished", "ops", m.tasks_finished);
        reg.set_counter("scheduler.jobs_finished", "ops", m.jobs_finished);
        reg.set_counter("faults.crash_evictions", "ops", m.crash_evictions);
        reg.set_counter("faults.breaker_open_kills", "ops", m.breaker_open_kills);
        reg.set_gauge("faults.breaker_open_secs", "s", m.breaker_open_secs);
        reg.set_counter("faults.dump_fail_retries", "ops", m.dump_fail_retries);
        reg.set_counter("faults.dump_fail_kills", "ops", m.dump_fail_kills);
        reg.set_counter("faults.restore_fail_retries", "ops", m.restore_fail_retries);
        reg.set_counter("faults.scratch_restarts", "ops", m.scratch_restarts);
        reg.set_counter("integrity.resumed_dumps", "ops", m.resumed_dumps);
        reg.set_counter("integrity.resumed_bytes", "bytes", m.resumed_bytes);
        reg.set_counter("integrity.chunk_refetches", "ops", m.chunk_refetches);
        reg.set_counter("integrity.chain_truncations", "ops", m.chain_truncations);
        reg.set_counter(
            "integrity.scratch_restarts",
            "ops",
            m.integrity_scratch_restarts,
        );
        reg.set_counter("dfs.blocks_repaired", "blocks", m.dfs_blocks_repaired);
        reg.set_counter("dfs.repair_bytes", "bytes", m.dfs_repair_bytes);
        reg.set_counter("dfs.blocks_lost", "blocks", m.dfs_blocks_lost);
        reg.set_gauge("scheduler.makespan_secs", "s", makespan.as_secs_f64());
        reg.set_gauge("cpu.useful_hours", "cpu-hours", m.useful_cpu_secs / 3600.0);
        reg.set_gauge(
            "cpu.kill_lost_hours",
            "cpu-hours",
            m.kill_lost_cpu_secs / 3600.0,
        );
        reg.set_gauge(
            "cpu.dump_overhead_hours",
            "cpu-hours",
            m.dump_overhead_cpu_secs / 3600.0,
        );
        reg.set_gauge(
            "cpu.restore_overhead_hours",
            "cpu-hours",
            m.restore_overhead_cpu_secs / 3600.0,
        );
        reg.set_gauge("energy.total_kwh", "kWh", energy_kwh);
        reg.set_gauge("storage.io_busy_fraction", "fraction", io_overhead);
        reg.set_gauge("storage.peak_used_fraction", "fraction", storage_peak);
        if let Some(first) = self.nodes.first() {
            let mut writes = first.device.write_latency().clone();
            let mut reads = first.device.read_latency().clone();
            for slot in &self.nodes[1..] {
                writes.merge(slot.device.write_latency());
                reads.merge(slot.device.read_latency());
            }
            reg.set_histogram("storage.write_latency_secs", "s", &writes);
            reg.set_histogram("storage.read_latency_secs", "s", &reads);
            let written: u64 = self
                .nodes
                .iter()
                .map(|n| n.device.bytes_written().as_u64())
                .sum();
            let read: u64 = self
                .nodes
                .iter()
                .map(|n| n.device.bytes_read().as_u64())
                .sum();
            reg.set_counter("storage.bytes_written", "bytes", written);
            reg.set_counter("storage.bytes_read", "bytes", read);
        }
        let underflows: u64 = self
            .nodes
            .iter()
            .map(|n| n.device.accounting_underflows())
            .sum();
        reg.set_counter("storage.accounting_underflows", "ops", underflows);
        let mut responses = StreamingQuantiles::new();
        for samples in m.responses.values() {
            for &v in samples.values() {
                responses.observe(v);
            }
        }
        if responses.count() > 0 {
            reg.set_quantiles("scheduler.response_secs", "s", responses.snapshot());
        }
        reg
    }

    // ---- telemetry probes ----------------------------------------------

    /// Records every due sample up to (and including) `now`. Samples are
    /// timestamped at their exact interval boundary and reflect the state
    /// *before* the event at `now` is processed, so the series is a pure
    /// function of the event stream (deterministic per seed).
    fn sample_up_to(&mut self, now: SimTime) {
        let Some(mut s) = self.sampler.take() else {
            return;
        };
        while s.next <= now {
            let t = s.next;
            self.record_sample(&mut s, t);
            s.next = t + s.interval;
        }
        self.sampler = Some(s);
    }

    fn record_sample(&mut self, s: &mut Sampler, t: SimTime) {
        let n = self.nodes.len();
        let mut util_sum = 0.0;
        let mut up_nodes = 0usize;
        let mut ckpt = Vec::with_capacity(n);
        let mut busy = Vec::with_capacity(n);
        for (i, slot) in self.nodes.iter().enumerate() {
            if slot.up {
                util_sum += slot.node.cpu_utilization();
                up_nodes += 1;
            }
            ckpt.push(slot.device.used_fraction());
            let total = slot.device.busy_time().as_secs_f64();
            let delta = (total - s.prev_busy[i]).max(0.0);
            s.prev_busy[i] = total;
            busy.push((delta / s.interval.as_secs_f64()).min(1.0));
        }
        let utilization = if up_nodes == 0 {
            0.0
        } else {
            util_sum / up_nodes as f64
        };
        let ckpt_mean = if n == 0 {
            0.0
        } else {
            ckpt.iter().sum::<f64>() / n as f64
        };
        let busy_mean = if n == 0 {
            0.0
        } else {
            busy.iter().sum::<f64>() / n as f64
        };
        let (mut free, mut middle, mut production) = (0u64, 0u64, 0u64);
        for key in &self.pending {
            match Priority(key.0 .0).band() {
                PriorityBand::Free => free += 1,
                PriorityBand::Middle => middle += 1,
                PriorityBand::Production => production += 1,
            }
        }
        s.series.push(
            t.as_micros(),
            &[
                ("ckpt_used_frac_mean", ckpt_mean),
                ("dev_busy_frac_mean", busy_mean),
                ("pending_free", free as f64),
                ("pending_middle", middle as f64),
                ("pending_production", production as f64),
                ("pending_total", (free + middle + production) as f64),
                ("utilization", utilization),
            ],
            &[("ckpt_used_frac", &ckpt), ("dev_busy_frac", &busy)],
        );
    }

    // ---- helpers -------------------------------------------------------

    fn task_handle_range(&self, job_idx: u32) -> std::ops::Range<usize> {
        // Tasks were pushed in job order; compute the dense range.
        let mut start = 0usize;
        for (i, job) in self.workload.jobs().iter().enumerate() {
            if i as u32 == job_idx {
                return start..start + job.tasks.len();
            }
            start += job.tasks.len();
        }
        start..start
    }

    fn enqueue_pending(&mut self, t: u32) {
        // Re-queued (preempted) tasks keep their first sequence number, so
        // they stay ahead of later same-priority arrivals and their images
        // are restored — and discarded — promptly.
        let seq = match self.tasks[t as usize].queue_seq {
            Some(seq) => seq,
            None => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.tasks[t as usize].queue_seq = Some(seq);
                seq
            }
        };
        let prio = self.tasks[t as usize].priority.0;
        let fair = match self.cfg.queue_discipline {
            crate::config::QueueDiscipline::Fifo => 0,
            crate::config::QueueDiscipline::Fair => self.tasks[t as usize].spec.id.index as u64,
        };
        self.tasks[t as usize].status = TaskStatus::Pending;
        self.pending.insert((Reverse(prio), fair, seq, t));
    }

    fn emit(&mut self, now: SimTime, t: u32, kind: TraceEventKind) {
        let task = &self.tasks[t as usize];
        self.trace.push(TraceEvent {
            time: now,
            task: task.spec.id,
            priority: task.priority,
            latency: task.latency,
            cpu_cores: task.spec.resources.cores_f64(),
            kind,
        });
    }

    fn update_meter(&mut self, node: usize, now: SimTime) {
        let util = self.nodes[node].node.cpu_utilization();
        self.nodes[node].meter.set_utilization(now, util);
    }

    fn max_available(&self) -> Resources {
        let mut cpu = 0u64;
        let mut mem = cbp_simkit::units::ByteSize::ZERO;
        for slot in &self.nodes {
            if !slot.up {
                continue;
            }
            let a = slot.node.available();
            cpu = cpu.max(a.cpu_milli());
            mem = mem.max(a.mem());
        }
        Resources::new(cpu, mem)
    }

    /// Free capacity of node `i` from task `t`'s point of view: physical
    /// availability minus capacity earmarked for *other* blocked tasks.
    fn free_for(&self, i: usize, t: u32) -> Resources {
        if !self.nodes[i].up {
            return Resources::ZERO;
        }
        let free = self.nodes[i].node.available();
        let mut reserved = self.node_reserved[i];
        if let Some(r) = self.reservations.get(&t) {
            if r.node == i {
                reserved = reserved.saturating_sub(&r.amount);
            }
        }
        free.saturating_sub(&reserved)
    }

    fn can_place(&self, i: usize, t: u32, demand: &Resources) -> bool {
        demand.fits_in(&self.free_for(i, t))
    }

    fn cancel_reservation(&mut self, t: u32) {
        if let Some(r) = self.reservations.remove(&t) {
            self.node_reserved[r.node] = self.node_reserved[r.node].saturating_sub(&r.amount);
        }
    }

    /// First-fit node for a fresh (non-checkpointed) task, round-robin.
    fn choose_fresh_node(&mut self, t: u32, demand: &Resources) -> Option<usize> {
        let n = self.nodes.len();
        for k in 0..n {
            let i = (self.place_cursor + k) % n;
            if self.can_place(i, t, demand) {
                self.place_cursor = (i + 1) % n;
                return Some(i);
            }
        }
        None
    }

    /// True if `t` can resume from a checkpoint (a CRIU image chain or an
    /// NVRAM mirror, depending on the configured backend).
    fn has_checkpoint(&self, t: u32) -> bool {
        if self.cfg.nvram.is_some() {
            self.nvram_origin.contains_key(&t)
        } else {
            self.criu.has_image(handle_u64(t))
        }
    }

    /// Algorithm 2: pick the restore node with the lowest total overhead.
    fn choose_restore_node(&mut self, t: u32, now: SimTime) -> Option<usize> {
        let task = &self.tasks[t as usize];
        let origin = match task.status {
            TaskStatus::Checkpointed { origin } => origin as usize,
            _ => unreachable!("choose_restore_node on non-checkpointed task"),
        };
        let demand = task.spec.resources;
        let origin_fits = self.can_place(origin, t, &demand);

        // NVRAM mirrors live in the origin node's memory: restore is
        // inherently local. Same for local-FS CRIU and the LocalOnly
        // ablation.
        if self.cfg.nvram.is_some()
            || self.cfg.restore_placement == RestorePlacement::LocalOnly
            || self.dfs.is_none()
        {
            return origin_fits.then_some(origin);
        }

        // Cost-aware: evaluate the origin plus a bounded sample of feasible
        // remote nodes (evaluating every node's DFS read plan would be
        // quadratic in cluster size for no modelling benefit).
        let mut candidates: Vec<usize> = Vec::new();
        if origin_fits {
            candidates.push(origin);
        }
        let n = self.nodes.len();
        let start = self.rng.index(n);
        for k in 0..n {
            if candidates.len() >= 5 {
                break;
            }
            let i = (start + k) % n;
            if i != origin && self.can_place(i, t, &demand) {
                candidates.push(i);
            }
        }
        candidates
            .into_iter()
            .map(|i| {
                let cost = self.restore_cost(t, i, now);
                (cost, i)
            })
            .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, i)| i)
    }

    /// Stall-window degradation multiplier for node `i` at `now` (1.0
    /// whenever fault injection is off or the node is healthy). While a
    /// rack partition isolates `i`'s rack, checkpoint I/O touching the
    /// node pays the partition penalty on top: the DFS write pipeline and
    /// remote reads cross the partition boundary. Cost estimators share
    /// this helper, so placement and victim ranking see the same penalty
    /// the actual transfers pay.
    fn device_factor(&self, i: usize, now: SimTime) -> f64 {
        let Some(plan) = self.faults.as_ref() else {
            return 1.0;
        };
        let mut factor = plan.device_factor(i as u32, now);
        if let (Some(rack), Some(p)) = (self.active_partition, plan.partition()) {
            if plan.rack_of(i as u32) == rack {
                factor *= p.penalty;
            }
        }
        factor
    }

    /// Feeds one checkpoint-path outcome on `node` into the breakers and
    /// traces any state transitions.
    fn observe_health(&mut self, node: usize, now: SimTime, ok: bool) {
        let Some(h) = self.health.as_mut() else {
            return;
        };
        let events = h.observe(node as u32, now, ok);
        if self.trace_on {
            for e in events {
                let rec = match e.transition {
                    BreakerTransition::Opened => TraceRecord::BreakerOpen {
                        node: e.node.unwrap_or(0),
                        global: e.node.is_none(),
                    },
                    BreakerTransition::Closed => TraceRecord::BreakerClose {
                        node: e.node.unwrap_or(0),
                        global: e.node.is_none(),
                    },
                };
                self.tracer.record(now.as_micros(), &rec);
            }
        }
    }

    /// Breaker gate for a checkpoint decision: when the checkpoint path
    /// on `node` is considered down, the victim is killed instead
    /// (graceful degradation) and `true` is returned.
    fn breaker_denies(&mut self, v: u32, node: usize, now: SimTime, policy: &'static str) -> bool {
        let Some(h) = self.health.as_mut() else {
            return false;
        };
        if h.allow(node as u32, now) {
            return false;
        }
        self.trace_preempt_decision(now, v, node, PreemptAction::Kill, policy, "breaker-open");
        if self.trace_on {
            self.tracer.record(
                now.as_micros(),
                &TraceRecord::DumpFallback {
                    task: v as u64,
                    node: node as u32,
                    reason: "breaker-open",
                },
            );
        }
        self.metrics.breaker_open_kills += 1;
        self.kill_task(v, node, now);
        true
    }

    /// Algorithm 2's overhead estimate for restoring `t` on node `i`.
    /// Degradation-aware: a stalled device makes its own restores look
    /// expensive, steering cost-aware placement elsewhere.
    fn restore_cost(&self, t: u32, i: usize, now: SimTime) -> SimDuration {
        let queue = self.nodes[i].device.queue_wait(now);
        let cost = queue + self.restore_service(t, i);
        let factor = self.device_factor(i, now);
        if factor > 1.0 {
            cost.mul_f64(factor)
        } else {
            cost
        }
    }

    /// The service (transfer) time of restoring `t` on node `i`.
    fn restore_service(&self, t: u32, i: usize) -> SimDuration {
        if let Some(spec) = &self.cfg.nvram {
            // Lazy NVRAM resume: only the hot fraction is copied up front.
            let footprint = self.tasks[t as usize].spec.resources.mem();
            return spec
                .restore_bw
                .transfer_time(footprint.mul_f64(spec.lazy_restore_fraction));
        }
        let task = &self.tasks[t as usize];
        match &self.dfs {
            Some(dfs) => task
                .dfs_paths
                .iter()
                .map(|p| {
                    dfs.read_cost(p, DnId(i as u32))
                        .map(|c| c.duration)
                        .unwrap_or(SimDuration::ZERO)
                })
                .sum(),
            None => {
                let size = self.criu.image_size(handle_u64(t));
                self.nodes[i].device.spec().read_time(size)
            }
        }
    }

    // ---- lifecycle transitions -----------------------------------------

    fn place_task(&mut self, t: u32, node: usize, now: SimTime, q: &mut EventQueue<Event>) {
        let cid = ContainerId(self.next_container);
        self.next_container += 1;
        let demand = self.tasks[t as usize].spec.resources;
        self.nodes[node]
            .node
            .allocate(Container::new(cid, demand, t as u64))
            .expect("placement checked can_fit before allocating");
        self.update_meter(node, now);
        self.cancel_reservation(t);
        self.emit(
            now,
            t,
            TraceEventKind::Schedule {
                machine: node as u32,
            },
        );

        let has_image = self.has_checkpoint(t);
        if self.trace_on {
            self.tracer.record(
                now.as_micros(),
                &TraceRecord::TaskSchedule {
                    task: t as u64,
                    node: node as u32,
                    restore: has_image,
                },
            );
        }
        if has_image {
            // Resume from checkpoint: read the image chain (or NVRAM
            // mirror) first.
            let origin = match self.tasks[t as usize].status {
                TaskStatus::Checkpointed { origin } => origin,
                _ => unreachable!("image implies checkpointed status"),
            };
            let mut service = self.restore_service(t, node);
            // A stall window on the reading device slows the restore.
            let factor = self.device_factor(node, now);
            if factor > 1.0 && self.cfg.nvram.is_none() {
                service = service.mul_f64(factor);
            }
            if self.faults.is_some() {
                // New restore episode: attempt numbering restarts.
                self.restore_attempts.insert(t, 0);
            }
            let (start, end) = if self.cfg.nvram.is_some() {
                // NVRAM resume is a memory copy; it does not queue on the
                // storage device. Record it on the engine for stats.
                if let Some(engine) = self.nodes[node].nvram.as_mut() {
                    let _ = engine.resume(handle_u64(t), true);
                }
                (now, now + service)
            } else {
                let size = self.criu.image_size(handle_u64(t));
                let op = self.nodes[node]
                    .device
                    .submit_custom(now, OpKind::Read, size, service);
                (op.start, op.end)
            };
            if self.trace_on {
                let (device, bytes) = if self.cfg.nvram.is_some() {
                    (
                        "nvram",
                        self.tasks[t as usize].spec.resources.mem().as_u64(),
                    )
                } else {
                    (
                        media_name(self.cfg.media.kind()),
                        self.criu.image_size(handle_u64(t)).as_u64(),
                    )
                };
                self.tracer.record(
                    now.as_micros(),
                    &TraceRecord::RestoreStart {
                        task: t as u64,
                        node: node as u32,
                        origin,
                        device,
                        bytes,
                        remote: origin != node as u32,
                    },
                );
            }
            let task = &mut self.tasks[t as usize];
            task.status = TaskStatus::Restoring {
                node: node as u32,
                container: cid,
            };
            let epoch = task.epoch;
            let remote = origin != node as u32;
            if remote {
                // Count it now; duration is charged at completion.
                self.metrics.remote_restores += 1;
            }
            // `started` is the service start: queue wait burns no CPU.
            q.push(
                end,
                Event::RestoreDone {
                    task: t,
                    epoch,
                    started: start,
                },
            );
        } else {
            let task = &mut self.tasks[t as usize];
            task.status = TaskStatus::Running {
                node: node as u32,
                container: cid,
            };
            task.run_started = now;
            task.mem_synced = now;
            let epoch = task.epoch;
            let finish = now + task.remaining();
            q.push(finish, Event::TaskFinish { task: t, epoch });
        }
    }

    fn release_container(&mut self, t: u32, now: SimTime) {
        let (node, cid) = match self.tasks[t as usize].status {
            TaskStatus::Running { node, container }
            | TaskStatus::Dumping { node, container }
            | TaskStatus::Restoring { node, container } => (node as usize, container),
            _ => return,
        };
        self.nodes[node]
            .node
            .release(cid)
            .expect("container must be on its node");
        self.update_meter(node, now);
    }

    /// Kills `t` (a Running victim): progress since the last checkpoint is
    /// lost; the task re-queues (from its image if it has one).
    fn kill_task(&mut self, t: u32, node: usize, now: SimTime) {
        self.tasks[t as usize].sync_progress(now);
        let lost = self.tasks[t as usize].progress_at_risk();
        let cores = self.tasks[t as usize].spec.resources.cores_f64();
        self.metrics.charge_kill(lost, cores);
        self.emit(
            now,
            t,
            TraceEventKind::Evict {
                machine: node as u32,
            },
        );
        if self.trace_on {
            self.tracer.record(
                now.as_micros(),
                &TraceRecord::TaskEvict {
                    task: t as u64,
                    node: node as u32,
                    reason: "kill",
                },
            );
        }
        self.release_container(t, now);

        let has_image = self.has_checkpoint(t);
        let origin = if self.cfg.nvram.is_some() {
            self.nvram_origin.get(&t).copied()
        } else {
            self.criu
                .chain(handle_u64(t))
                .and_then(|c| c.tip())
                .map(|r| r.origin_node)
        };
        let task = &mut self.tasks[t as usize];
        task.epoch += 1;
        task.preemptions += 1;
        task.progress = task.checkpointed_progress;
        if let Some(mem) = task.memory.as_mut() {
            if has_image {
                // In-memory writes since the last dump are lost; the image
                // is the ground truth, so nothing is dirty relative to it.
                mem.clear_dirty();
            } else {
                mem.mark_all_dirty();
            }
        }
        task.status = match origin {
            Some(origin) if has_image => TaskStatus::Checkpointed { origin },
            _ => TaskStatus::Pending,
        };
        self.enqueue_pending_preserving_status(t);
        self.emit(now, t, TraceEventKind::Submit);
    }

    /// `enqueue_pending` resets status to Pending; checkpointed tasks keep
    /// their status while queued.
    fn enqueue_pending_preserving_status(&mut self, t: u32) {
        let status = self.tasks[t as usize].status;
        self.enqueue_pending(t);
        if let TaskStatus::Checkpointed { .. } = status {
            self.tasks[t as usize].status = status;
        }
    }

    /// Picks the device that will hold a dump of `size` from `node`:
    /// node-local if it has room, else (HDFS only) the node with the most
    /// free checkpoint space — HDFS writes spill to any datanode.
    fn dump_origin_for(&self, node: usize, size: cbp_simkit::units::ByteSize) -> Option<usize> {
        if self.nodes[node].device.free_capacity() >= size {
            return Some(node);
        }
        self.dfs.as_ref()?;
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].up)
            .max_by_key(|&i| (self.nodes[i].device.free_capacity(), std::cmp::Reverse(i)))
            .filter(|&i| self.nodes[i].device.free_capacity() >= size)
    }

    // ---- image lifecycle (capacity backpressure ladder) -----------------

    /// Image bytes task `v`'s chain holds on node `node`'s device.
    fn chain_bytes_on(&self, v: u32, node: usize) -> ByteSize {
        let Some(chain) = self.criu.chain(handle_u64(v)) else {
            return ByteSize::ZERO;
        };
        chain
            .images()
            .iter()
            .filter(|r| r.origin_node == node as u32)
            .map(|r| r.size)
            .fold(ByteSize::ZERO, |a, b| a + b)
    }

    /// The degradation ladder, entered when no device can hold a dump of
    /// `size` from `node`: a GC pass (reclaiming leaked reservations and
    /// dead chains), then eviction of the cheapest-to-lose live chains on
    /// the local device, re-running the origin search after each rung —
    /// which also re-offers the remote spill. Returns the origin to dump
    /// to, or `None` when the ladder is exhausted.
    fn reclaim_for_dump(
        &mut self,
        t: u32,
        node: usize,
        size: ByteSize,
        now: SimTime,
    ) -> Option<usize> {
        self.gc_pass(now);
        if let Some(origin) = self.dump_origin_for(node, size) {
            return Some(origin);
        }
        self.evict_for(t, node, size, now);
        self.dump_origin_for(node, size)
    }

    /// GC pass: releases every injected leaked reservation and discards
    /// dead chains (corrupt images can never be restored, so their bytes
    /// are pure waste). Chains with an in-flight dump or restore are left
    /// alone — the episode owns them.
    fn gc_pass(&mut self, now: SimTime) {
        let n = self.nodes.len();
        let mut reclaimed = vec![0u64; n];
        let mut chains = vec![0u64; n];
        for (i, bytes) in self.leaked.iter_mut().enumerate() {
            if *bytes > 0 {
                self.nodes[i].device.release(ByteSize::from_bytes(*bytes));
                reclaimed[i] += *bytes;
                *bytes = 0;
            }
        }
        let mut corrupt: Vec<u32> = self.corrupt_images.iter().copied().collect();
        corrupt.sort_unstable();
        for v in corrupt {
            if matches!(
                self.tasks[v as usize].status,
                TaskStatus::Dumping { .. } | TaskStatus::Restoring { .. }
            ) {
                continue;
            }
            let tip_origin = self
                .criu
                .chain(handle_u64(v))
                .and_then(|c| c.tip())
                .map(|r| r.origin_node);
            let mut freed_any = false;
            if let Some(chain) = self.criu.chain(handle_u64(v)) {
                for r in chain.images() {
                    reclaimed[r.origin_node as usize] += r.size.as_u64();
                    freed_any = true;
                }
            }
            self.discard_chain(v);
            if freed_any {
                if let Some(o) = tip_origin {
                    chains[o as usize] += 1;
                }
                // Same degradation as losing the chain to a failure: the
                // checkpointed progress was never restorable anyway.
                let task = &mut self.tasks[v as usize];
                task.checkpointed_progress = SimDuration::ZERO;
                if let Some(mem) = task.memory.as_mut() {
                    mem.mark_all_dirty();
                }
                if matches!(task.status, TaskStatus::Checkpointed { .. }) {
                    task.status = TaskStatus::Pending;
                }
            }
        }
        for i in 0..n {
            if reclaimed[i] == 0 && chains[i] == 0 {
                continue;
            }
            self.metrics.gc_reclaimed_bytes += reclaimed[i];
            if self.trace_on {
                self.tracer.record(
                    now.as_micros(),
                    &TraceRecord::GcPass {
                        node: i as u32,
                        reclaimed: reclaimed[i],
                        chains: chains[i],
                    },
                );
            }
        }
    }

    /// Evicts the cheapest-to-lose live chains holding bytes on `node`'s
    /// device until a dump of `size` fits (or no plan covers the
    /// shortfall; partial eviction would destroy progress for nothing).
    /// Evicted tasks degrade exactly like tasks whose chain was lost: the
    /// next dump is full, a queued restore becomes a fresh start.
    fn evict_for(&mut self, t: u32, node: usize, size: ByteSize, now: SimTime) {
        let shortfall = size.saturating_sub(self.nodes[node].device.free_capacity());
        if shortfall.is_zero() {
            return;
        }
        let mut candidates: Vec<EvictionCandidate> = Vec::new();
        for v in 0..self.tasks.len() as u32 {
            if v == t
                || matches!(
                    self.tasks[v as usize].status,
                    TaskStatus::Dumping { .. } | TaskStatus::Restoring { .. }
                )
            {
                continue;
            }
            let bytes_on_node = self.chain_bytes_on(v, node);
            if bytes_on_node.is_zero() {
                continue;
            }
            let task = &self.tasks[v as usize];
            candidates.push(EvictionCandidate {
                task: handle_u64(v),
                cost_core_secs: task.checkpointed_progress.as_secs_f64()
                    * task.spec.resources.cores_f64(),
                bytes_on_node,
            });
        }
        for victim in plan_evictions(candidates, shortfall) {
            let v = victim.task as u32;
            self.metrics.evicted_chains += 1;
            if self.trace_on {
                self.tracer.record(
                    now.as_micros(),
                    &TraceRecord::ImageEvict {
                        task: victim.task,
                        node: node as u32,
                        bytes: victim.bytes_on_node.as_u64(),
                    },
                );
            }
            self.discard_chain(v);
            let task = &mut self.tasks[v as usize];
            task.checkpointed_progress = SimDuration::ZERO;
            if let Some(mem) = task.memory.as_mut() {
                mem.mark_all_dirty();
            }
            if matches!(task.status, TaskStatus::Checkpointed { .. }) {
                task.status = TaskStatus::Pending;
            }
        }
    }

    /// Hard conservation invariant (checked after every event in debug
    /// builds): every byte reserved on a node's checkpoint device is owned
    /// by a live catalog image or an injected leak.
    #[cfg(debug_assertions)]
    fn assert_image_conservation(&self, now: SimTime) {
        // Manifest ↔ catalog ↔ ledger first (per-image checksums and
        // per-node byte recomputation), then ledger ↔ device reservations.
        self.criu.assert_manifest_consistency();
        for (i, slot) in self.nodes.iter().enumerate() {
            let expected = self.criu.live_bytes_on(i as u32).as_u64() + self.leaked[i];
            assert_eq!(
                slot.device.used().as_u64(),
                expected,
                "image-ledger conservation violated on node {i} at {now:?}"
            );
        }
    }

    /// Suspends `t` into the node's NVRAM (the §3.2.3 backend): a shadowed
    /// DRAM→NVM copy with no file system, no serialization and no device
    /// queueing. Returns `false` (a drain is in flight) on success.
    fn dump_task_nvram(
        &mut self,
        t: u32,
        node: usize,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) -> bool {
        let task = &mut self.tasks[t as usize];
        let mem = task.memory.as_mut().expect("sync_memory created the image");
        let engine = self.nodes[node]
            .nvram
            .as_mut()
            .expect("nvram backend configured");
        match engine.suspend(handle_u64(t), mem) {
            Ok(suspend) => {
                let cores = self.tasks[t as usize].spec.resources.cores_f64();
                let mut unused = 0;
                let incremental = suspend.copied < self.tasks[t as usize].spec.resources.mem();
                self.metrics
                    .charge_dump(suspend.duration, cores, &mut unused, incremental);
                self.nvram_origin.insert(t, node as u32);
                self.emit(
                    now,
                    t,
                    TraceEventKind::Evict {
                        machine: node as u32,
                    },
                );
                if self.trace_on {
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::DumpStart {
                            task: t as u64,
                            node: node as u32,
                            device: "nvram",
                            bytes: suspend.copied.as_u64(),
                            incremental,
                        },
                    );
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::TaskEvict {
                            task: t as u64,
                            node: node as u32,
                            reason: "dump",
                        },
                    );
                }
                let task = &mut self.tasks[t as usize];
                let container = match task.status {
                    TaskStatus::Running { container, .. } => container,
                    _ => unreachable!("dump victim must be running"),
                };
                task.status = TaskStatus::Dumping {
                    node: node as u32,
                    container,
                };
                task.epoch += 1;
                task.preemptions += 1;
                let epoch = task.epoch;
                q.push(
                    now + suspend.duration,
                    Event::DumpDone {
                        task: t,
                        epoch,
                        started: now,
                    },
                );
                false
            }
            Err(_) => {
                // The node's NVRAM is full; mirrors are node-local so there
                // is nowhere to spill.
                self.metrics.capacity_fallbacks += 1;
                self.observe_health(node, now, false);
                if self.trace_on {
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::DumpFallback {
                            task: t as u64,
                            node: node as u32,
                            reason: "nvram-full",
                        },
                    );
                }
                self.kill_task(t, node, now);
                true
            }
        }
    }

    /// Suspends `t` with a checkpoint dump; resources stay held until
    /// `DumpDone`.
    fn dump_task(&mut self, t: u32, node: usize, now: SimTime, q: &mut EventQueue<Event>) -> bool {
        self.tasks[t as usize].sync_progress(now);
        self.tasks[t as usize].sync_memory(now);
        if self.cfg.nvram.is_some() {
            return !self.dump_task_nvram(t, node, now, q);
        }
        let (size, _) = {
            let task = &self.tasks[t as usize];
            self.criu.next_dump_size(
                handle_u64(t),
                task.memory.as_ref().expect("sync_memory created the image"),
            )
        };

        let origin = match self.dump_origin_for(node, size) {
            Some(origin) => Some(origin),
            // Degradation ladder: GC leaked/dead reservations, then evict
            // the cheapest live chains, then retry the origin search
            // (which spills to a remote device when the DFS allows it).
            None if self.cfg.lifecycle => self.reclaim_for_dump(t, node, size, now),
            None => None,
        };
        let Some(origin) = origin else {
            // No node can hold the image, even after the ladder (or with
            // lifecycle disabled, after the bare search): fall back to
            // killing.
            self.metrics.capacity_fallbacks += 1;
            self.metrics.no_space_kills += 1;
            self.observe_health(node, now, false);
            if self.trace_on {
                if self.cfg.lifecycle {
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::NoSpace {
                            task: t as u64,
                            node: node as u32,
                            wanted: size.as_u64(),
                        },
                    );
                }
                let reason = if self.cfg.lifecycle {
                    "no-space"
                } else {
                    "no-capacity"
                };
                self.tracer.record(
                    now.as_micros(),
                    &TraceRecord::DumpFallback {
                        task: t as u64,
                        node: node as u32,
                        reason,
                    },
                );
            }
            self.kill_task(t, node, now);
            return false;
        };
        if origin != node && self.cfg.lifecycle {
            // The dump is being written to a remote node's device (spill):
            // the write pays the DFS pipeline and the restore is remote.
            self.metrics.spill_dumps += 1;
            if self.trace_on {
                self.tracer.record(
                    now.as_micros(),
                    &TraceRecord::ImageSpill {
                        task: t as u64,
                        node: node as u32,
                        origin: origin as u32,
                        bytes: size.as_u64(),
                    },
                );
            }
        }

        // Through HDFS the pipelined write is the service time; locally the
        // device's own write speed applies. With compression enabled, only
        // the compressed bytes cross the pipeline.
        let wire_size = self
            .criu
            .compression()
            .map(|c| c.compressed_size(size))
            .unwrap_or(size);
        let epoch = self.tasks[t as usize].epoch;
        // A stall window on the origin device degrades the dump's service
        // time (HDFS pipeline and local writes alike).
        let factor = self.device_factor(origin, now);
        if factor > 1.0 {
            // A degraded checkpoint path (stall window or rack partition)
            // is a health signal even when the dump eventually completes.
            self.observe_health(origin, now, false);
        }
        let service = match &mut self.dfs {
            Some(dfs) => {
                let path = format!(
                    "/ckpt/{t}/{epoch}/{}",
                    self.tasks[t as usize].dfs_paths.len()
                );
                match dfs.create(&path, wire_size, DnId(node as u32)) {
                    Ok(receipt) => {
                        self.tasks[t as usize].dfs_paths.push(path);
                        if factor > 1.0 {
                            Some(receipt.duration.mul_f64(factor))
                        } else {
                            Some(receipt.duration)
                        }
                    }
                    Err(_) => None,
                }
            }
            None if factor > 1.0 => Some(
                self.nodes[origin]
                    .device
                    .spec()
                    .write_time(wire_size)
                    .mul_f64(factor),
            ),
            None => None,
        };

        let task = &mut self.tasks[t as usize];
        let mem = task.memory.as_mut().expect("sync_memory created the image");
        let dump = self.criu.dump_with(
            handle_u64(t),
            mem,
            origin as u32,
            &mut self.nodes[origin].device,
            now,
            service,
        );
        match dump {
            Ok(result) => {
                for (origin, bytes) in &result.freed {
                    self.nodes[*origin as usize].device.release(*bytes);
                }
                let was_incremental = matches!(
                    result.kind,
                    cbp_checkpoint::CheckpointKind::Incremental { .. }
                );
                let cores = self.tasks[t as usize].spec.resources.cores_f64();
                let mut unused = 0;
                // Wastage is *CPU time*: the dump burns CPU while copying
                // (service time); while queued the victim is stopped and
                // burns none. Queueing still delays resource release and
                // response times through the DumpDone event time.
                self.metrics.charge_dump(
                    result.op.end.since(result.op.start),
                    cores,
                    &mut unused,
                    was_incremental,
                );
                self.emit(
                    now,
                    t,
                    TraceEventKind::Evict {
                        machine: node as u32,
                    },
                );
                if self.trace_on {
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::DumpStart {
                            task: t as u64,
                            node: node as u32,
                            device: media_name(self.cfg.media.kind()),
                            bytes: wire_size.as_u64(),
                            incremental: was_incremental,
                        },
                    );
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::TaskEvict {
                            task: t as u64,
                            node: node as u32,
                            reason: "dump",
                        },
                    );
                }
                let task = &mut self.tasks[t as usize];
                let container = match task.status {
                    TaskStatus::Running { container, .. } => container,
                    _ => unreachable!("dump victim must be running"),
                };
                task.status = TaskStatus::Dumping {
                    node: node as u32,
                    container,
                };
                task.epoch += 1;
                task.preemptions += 1;
                let epoch = task.epoch;
                if self.faults.is_some() {
                    // New dump episode: attempt numbering restarts.
                    self.dump_attempts.insert(t, 0);
                }
                q.push(
                    result.op.end,
                    Event::DumpDone {
                        task: t,
                        epoch,
                        // Device service start (not submission time): the
                        // trace's dump span then measures service time, and
                        // `start_us - evict time` exposes the checkpoint
                        // queue wait to blame analysis.
                        started: result.op.start,
                    },
                );
                true
            }
            Err(_) => {
                // Checkpoint storage is full: fall back to killing.
                self.metrics.capacity_fallbacks += 1;
                self.metrics.no_space_kills += 1;
                self.observe_health(node, now, false);
                if self.trace_on {
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::DumpFallback {
                            task: t as u64,
                            node: node as u32,
                            reason: "storage-full",
                        },
                    );
                }
                self.kill_task(t, node, now);
                false
            }
        }
    }

    /// Preempts one victim according to the active policy. Returns `true` if
    /// its resources were freed synchronously (kill), `false` if a dump is
    /// in flight.
    fn preempt_victim(
        &mut self,
        v: u32,
        node: usize,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) -> bool {
        let _prof = cbp_prof::scope("preempt_victim");
        match self.cfg.policy {
            PreemptionPolicy::Wait => unreachable!("Wait never preempts"),
            PreemptionPolicy::Kill => {
                self.trace_preempt_decision(now, v, node, PreemptAction::Kill, "kill", "policy");
                self.kill_task(v, node, now);
                true
            }
            PreemptionPolicy::Checkpoint => {
                if self.breaker_denies(v, node, now, "checkpoint") {
                    return true;
                }
                self.trace_preempt_decision(
                    now,
                    v,
                    node,
                    PreemptAction::Checkpoint,
                    "checkpoint",
                    "policy",
                );
                !self.dump_task(v, node, now, q)
            }
            PreemptionPolicy::Adaptive => {
                // Algorithm 1: checkpoint only if the progress at risk
                // exceeds the estimated dump + restore + queue overhead.
                self.tasks[v as usize].sync_progress(now);
                self.tasks[v as usize].sync_memory(now);
                let est_total = {
                    let task = &self.tasks[v as usize];
                    let mem = task.memory.as_ref().expect("sync_memory created the image");
                    match &self.nodes[node].nvram {
                        Some(engine) => engine.estimate_total(handle_u64(v), mem),
                        None => self
                            .criu
                            .estimate(handle_u64(v), mem, &self.nodes[node].device, now)
                            .total(),
                    }
                };
                if self.tasks[v as usize].progress_at_risk() > est_total {
                    if self.breaker_denies(v, node, now, "adaptive") {
                        return true;
                    }
                    self.trace_preempt_decision(
                        now,
                        v,
                        node,
                        PreemptAction::Checkpoint,
                        "adaptive",
                        "progress-at-risk",
                    );
                    !self.dump_task(v, node, now, q)
                } else {
                    self.trace_preempt_decision(
                        now,
                        v,
                        node,
                        PreemptAction::Kill,
                        "adaptive",
                        "overhead-exceeds-risk",
                    );
                    self.kill_task(v, node, now);
                    true
                }
            }
        }
    }

    /// Records a [`TraceRecord::PreemptDecision`] if tracing is enabled.
    fn trace_preempt_decision(
        &mut self,
        now: SimTime,
        victim: u32,
        node: usize,
        action: PreemptAction,
        policy: &'static str,
        reason: &'static str,
    ) {
        if self.trace_on {
            self.tracer.record(
                now.as_micros(),
                &TraceRecord::PreemptDecision {
                    victim: victim as u64,
                    node: node as u32,
                    action,
                    policy,
                    reason,
                },
            );
        }
    }

    /// Cheap (arithmetic-only) estimate of a victim's next dump size, used
    /// for cost-aware victim ranking without touching page bitmaps.
    fn victim_cost_secs(&self, v: u32, node: usize, now: SimTime) -> f64 {
        let task = &self.tasks[v as usize];
        let mem = task.spec.resources.mem();
        let size = if self.cfg.incremental && self.has_checkpoint(v) {
            let since_sync = now.saturating_since(task.mem_synced).as_secs_f64();
            let already_dirty = task
                .memory
                .as_ref()
                .map(|m| m.dirty_fraction())
                .unwrap_or(0.0);
            let frac = (already_dirty + task.spec.dirty_rate_per_sec * since_sync).min(1.0);
            mem.mul_f64(frac)
        } else {
            mem
        };
        let spec = self.nodes[node].device.spec();
        let dump = spec.write_time(size) + spec.read_time(size);
        let queue = self.nodes[node].device.queue_wait(now);
        let factor = self.device_factor(node, now);
        let mut cost = (dump + queue).as_secs_f64();
        if factor > 1.0 {
            cost *= factor;
        }
        // Fault-aware: expected dump rewrites inflate the victim's cost.
        // With chunked resume a retry rewrites only the suffix past the
        // durable frontier — on average half the image — so resumable
        // victims rank cheaper than they would under full rewrites.
        if let Some(plan) = &self.faults {
            let p = plan.spec().dump_fail_prob;
            if p > 0.0 {
                let expected_retries =
                    (p / (1.0 - p).max(1e-9)).min(plan.max_dump_retries() as f64);
                let rewrite_frac = if plan.resume_enabled() { 0.5 } else { 1.0 };
                cost *= 1.0 + expected_retries * rewrite_frac;
            }
        }
        cost
    }

    /// Tries to free enough space for pending task `t` by preempting
    /// lower-priority victims on the best node. Returns `true` if resources
    /// were freed synchronously.
    fn try_preempt_for(&mut self, t: u32, now: SimTime, q: &mut EventQueue<Event>) -> bool {
        if self.reservations.contains_key(&t) {
            return false; // a drain is already in flight for this task
        }
        let demand = self.tasks[t as usize].spec.resources;
        let priority = self.tasks[t as usize].priority;

        // For a checkpointed task under LocalOnly restore, only the origin
        // node is eligible.
        let restrict = match self.tasks[t as usize].status {
            TaskStatus::Checkpointed { origin }
                if self.cfg.restore_placement == RestorePlacement::LocalOnly
                    || self.dfs.is_none() =>
            {
                Some(origin as usize)
            }
            _ => None,
        };

        let mut best: Option<(f64, usize, Vec<u32>)> = None;
        for i in 0..self.nodes.len() {
            if !self.nodes[i].up {
                continue;
            }
            if let Some(r) = restrict {
                if i != r {
                    continue;
                }
            }
            let avail = self.free_for(i, t);
            let needed = demand.saturating_sub(&avail);
            if needed.is_zero() {
                continue; // plain placement handles this
            }
            // Collect preemptible lower-priority victims, deterministically
            // ordered.
            let mut victims: Vec<u32> = self.nodes[i]
                .node
                .containers()
                .map(|c| c.task() as u32)
                .filter(|&v| {
                    let task = &self.tasks[v as usize];
                    task.is_preemptible() && task.priority < priority
                })
                .collect();
            victims.sort_unstable();
            match self.cfg.victim_selection {
                VictimSelection::CostAware => {
                    // §5.2.2: lowest checkpoint cost first.
                    let mut keyed: Vec<(f64, u32)> = victims
                        .into_iter()
                        .map(|v| (self.victim_cost_secs(v, i, now), v))
                        .collect();
                    keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    victims = keyed.into_iter().map(|(_, v)| v).collect();
                }
                VictimSelection::Naive => {
                    // Lowest priority, most recently started first.
                    victims.sort_by_key(|&v| {
                        let task = &self.tasks[v as usize];
                        (task.priority, Reverse(task.run_started))
                    });
                }
            }
            let mut freed = Resources::ZERO;
            let mut chosen = Vec::new();
            let mut cost = 0.0;
            for v in victims {
                if needed.fits_in(&freed) {
                    break;
                }
                cost += self.victim_cost_secs(v, i, now);
                freed += self.tasks[v as usize].spec.resources;
                chosen.push(v);
            }
            if needed.fits_in(&freed) {
                let better = match &best {
                    Some((c, n, _)) => (cost, i) < (*c, *n),
                    None => true,
                };
                if better {
                    best = Some((cost, i, chosen));
                }
            }
        }

        let Some((_, node, victims)) = best else {
            return false;
        };
        let mut drains = 0u32;
        for v in victims {
            let sync = self.preempt_victim(v, node, now, q);
            if !sync {
                drains += 1;
                self.drain_owner.insert(v, t);
            }
        }
        if drains > 0 {
            // Earmark the whole demand on this node so backfill cannot
            // steal the capacity the drains are freeing.
            self.reservations.insert(
                t,
                Reservation {
                    node,
                    amount: demand,
                    drains_left: drains,
                },
            );
            self.node_reserved[node] += demand;
            false
        } else {
            true
        }
    }

    // ---- fault handling (checkpoint failure recovery policies) ---------

    /// Discards task `t`'s CRIU chain and DFS files, releasing device
    /// reservations and namespace entries, and clears its corruption flag.
    fn discard_chain(&mut self, t: u32) {
        for (origin, bytes) in self.criu.discard(handle_u64(t)) {
            self.nodes[origin as usize].device.release(bytes);
        }
        if let Some(dfs) = &mut self.dfs {
            for path in std::mem::take(&mut self.tasks[t as usize].dfs_paths) {
                let _ = dfs.delete(&path);
            }
        }
        self.corrupt_images.remove(&t);
    }

    /// Handles a dump attempt that failed (detected when its device
    /// operation completes): while retry budget remains, the image tip is
    /// rewritten after an exponential backoff; once the budget is
    /// exhausted the half-written tip is aborted and the victim falls
    /// back to a hard kill — the same safety net a real NM applies when
    /// `criu dump` keeps erroring.
    fn on_dump_failed(
        &mut self,
        t: u32,
        node: usize,
        epoch: u32,
        attempt: u32,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) {
        self.observe_health(node, now, false);
        let plan = self.faults.as_ref().expect("caller checked plan presence");
        let will_retry = attempt < plan.max_dump_retries();
        let backoff = plan.dump_retry_backoff(attempt + 1);
        if self.trace_on {
            self.tracer.record(
                now.as_micros(),
                &TraceRecord::DumpFail {
                    task: t as u64,
                    node: node as u32,
                    attempt,
                    will_retry,
                },
            );
        }
        if will_retry {
            self.metrics.dump_fail_retries += 1;
            self.dump_attempts.insert(t, attempt + 1);
            // Rewrite the stored tip after the backoff. The rewrite is a
            // plain re-write of the stored bytes at the device's (possibly
            // degraded) sequential speed; the victim keeps holding its
            // resources, so the rewrite window is wasted CPU.
            let size = self
                .criu
                .chain(handle_u64(t))
                .and_then(|c| c.tip())
                .map(|r| r.size)
                .unwrap_or_else(|| self.tasks[t as usize].spec.resources.mem());
            let mut rewrite = size;
            if let Some(plan) = &self.faults {
                if plan.resume_enabled() {
                    // Chunked resume: chunks written before the interruption
                    // are durable. The frontier is monotone within the
                    // episode — a later attempt never re-pays chunks an
                    // earlier attempt landed.
                    let frac = plan.dump_durable_frac(t as u64, epoch, attempt);
                    let tip = self.criu.chain(handle_u64(t)).and_then(|c| c.tip());
                    if let Some(tip) = tip {
                        let durable = tip.manifest.durable_bytes(frac).as_u64();
                        let total_chunks = tip.manifest.chunk_count();
                        let prev = self.dump_frontier.get(&t).copied().unwrap_or(0);
                        let frontier = prev.max(durable);
                        if frontier > 0 {
                            self.dump_frontier.insert(t, frontier);
                            rewrite = size.saturating_sub(ByteSize::from_bytes(frontier));
                            self.metrics.resumed_dumps += 1;
                            self.metrics.resumed_bytes += frontier;
                            if self.trace_on {
                                let done = tip
                                    .manifest
                                    .durable_chunks(frac)
                                    .max(frontier / plan.chunk_bytes().max(1));
                                self.tracer.record(
                                    now.as_micros(),
                                    &TraceRecord::ChunkDone {
                                        task: t as u64,
                                        node: node as u32,
                                        chunk: done,
                                        total: total_chunks,
                                    },
                                );
                                self.tracer.record(
                                    now.as_micros(),
                                    &TraceRecord::ResumeDump {
                                        task: t as u64,
                                        node: node as u32,
                                        resumed_bytes: frontier,
                                        total_bytes: size.as_u64(),
                                    },
                                );
                            }
                        }
                    }
                }
            }
            let factor = self.device_factor(node, now).max(1.0);
            let service = self.nodes[node]
                .device
                .spec()
                .write_time(rewrite)
                .mul_f64(factor);
            let cores = self.tasks[t as usize].spec.resources.cores_f64();
            self.metrics.retry_cpu_secs += service.as_secs_f64() * cores;
            let start = now + backoff;
            q.push(
                start + service,
                Event::DumpDone {
                    task: t,
                    epoch,
                    started: start,
                },
            );
        } else {
            // Budget exhausted: the dump is abandoned for good.
            self.metrics.dump_fail_kills += 1;
            self.dump_attempts.remove(&t);
            self.dump_frontier.remove(&t);
            if let Some((origin, bytes)) = self.criu.abort_tip(handle_u64(t)) {
                self.nodes[origin as usize].device.release(bytes);
            }
            if let Some(path) = self.tasks[t as usize].dfs_paths.pop() {
                if let Some(dfs) = &mut self.dfs {
                    let _ = dfs.delete(&path);
                }
            }
            if self.trace_on {
                self.tracer.record(
                    now.as_micros(),
                    &TraceRecord::DumpFallback {
                        task: t as u64,
                        node: node as u32,
                        reason: "dump-fail",
                    },
                );
            }
            self.kill_dump_victim(t, node, now);
            self.schedule_pass(now, q);
        }
    }

    /// Kills a `Dumping` victim whose dump could not be completed: the
    /// progress since its last *valid* checkpoint is lost and the task
    /// re-queues (from an older image if one survives in its chain).
    fn kill_dump_victim(&mut self, t: u32, node: usize, now: SimTime) {
        // The victim stopped at eviction; its progress was synced when the
        // dump started, and the failed dump never advanced
        // `checkpointed_progress`.
        let lost = self.tasks[t as usize].progress_at_risk();
        let cores = self.tasks[t as usize].spec.resources.cores_f64();
        self.metrics.charge_kill(lost, cores);
        self.emit(
            now,
            t,
            TraceEventKind::Evict {
                machine: node as u32,
            },
        );
        if self.trace_on {
            self.tracer.record(
                now.as_micros(),
                &TraceRecord::TaskEvict {
                    task: t as u64,
                    node: node as u32,
                    reason: "dump-fail",
                },
            );
        }
        self.release_container(t, now);
        // Credit the drain to the blocked task it was serving: the kill
        // freed the resources the reservation was waiting for.
        if let Some(owner) = self.drain_owner.remove(&t) {
            if let Some(r) = self.reservations.get_mut(&owner) {
                r.drains_left = r.drains_left.saturating_sub(1);
            }
        }
        let has_image = self.has_checkpoint(t);
        let origin = self
            .criu
            .chain(handle_u64(t))
            .and_then(|c| c.tip())
            .map(|r| r.origin_node);
        let task = &mut self.tasks[t as usize];
        task.epoch += 1;
        task.progress = task.checkpointed_progress;
        if let Some(mem) = task.memory.as_mut() {
            if has_image {
                mem.clear_dirty();
            } else {
                mem.mark_all_dirty();
            }
        }
        task.status = match origin {
            Some(origin) if has_image => TaskStatus::Checkpointed { origin },
            _ => TaskStatus::Pending,
        };
        self.enqueue_pending_preserving_status(t);
        self.emit(now, t, TraceEventKind::Submit);
    }

    /// Handles a restore attempt that failed (detected when its read
    /// completes): transient failures retry from a surviving HDFS replica
    /// on the same placement while budget remains; corrupt images and
    /// exhausted budgets abandon the image and restart from scratch.
    #[allow(clippy::too_many_arguments)]
    fn on_restore_failed(
        &mut self,
        t: u32,
        node: usize,
        epoch: u32,
        attempt: u32,
        corrupt: bool,
        started: SimTime,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) {
        let plan = self.faults.as_ref().expect("caller checked plan presence");
        let will_retry = !corrupt && attempt < plan.max_restore_retries();
        let reason = if corrupt {
            "corrupt-image"
        } else {
            "transient"
        };
        self.observe_health(node, now, false);
        // The failed read occupied CPU for its whole service window.
        let cores = self.tasks[t as usize].spec.resources.cores_f64();
        self.metrics.retry_cpu_secs += now.since(started).as_secs_f64() * cores;
        if self.trace_on {
            self.tracer.record(
                now.as_micros(),
                &TraceRecord::RestoreFail {
                    task: t as u64,
                    node: node as u32,
                    attempt,
                    reason,
                    will_retry,
                },
            );
        }
        if will_retry {
            self.metrics.restore_fail_retries += 1;
            self.restore_attempts.insert(t, attempt + 1);
            let factor = self.device_factor(node, now).max(1.0);
            let service = self.restore_service(t, node).mul_f64(factor);
            let size = self.criu.image_size(handle_u64(t));
            let op = self.nodes[node]
                .device
                .submit_custom(now, OpKind::Read, size, service);
            q.push(
                op.end,
                Event::RestoreDone {
                    task: t,
                    epoch,
                    started: op.start,
                },
            );
        } else {
            self.metrics.scratch_restarts += 1;
            if corrupt {
                // Integrity loss forced this restart (legacy whole-image
                // corruption path, i.e. the `resume=false` ablation).
                self.metrics.integrity_scratch_restarts += 1;
            }
            self.restart_from_scratch(t, now);
            self.schedule_pass(now, q);
        }
    }

    /// Chunk-level validation of `t`'s chain after a restore read completed
    /// (resume mode): every corrupt chunk first attempts a targeted
    /// re-fetch from a DFS replica; an image that stays invalid cuts the
    /// chain at its longest valid prefix (restore continues from the older
    /// tip), and a chain with no valid prefix forces a scratch restart.
    fn validate_restored_chain(
        &mut self,
        t: u32,
        node: usize,
        epoch: u32,
        started: SimTime,
        now: SimTime,
        q: &mut EventQueue<Event>,
    ) -> ChainValidation {
        // Snapshot (image idx → corrupt chunks with lengths): the catalog
        // is mutated during repair, so iterate over an owned copy.
        let images: Vec<(usize, Vec<(u64, u64)>)> = match self.criu.chain(handle_u64(t)) {
            Some(chain) => chain
                .images()
                .iter()
                .enumerate()
                .map(|(i, img)| {
                    let bad = img
                        .manifest
                        .corrupt_chunks()
                        .into_iter()
                        .map(|c| (c, img.manifest.chunks[c as usize].len))
                        .collect();
                    (i, bad)
                })
                .collect(),
            None => return ChainValidation::Intact,
        };
        if images.iter().all(|(_, bad)| bad.is_empty()) {
            return ChainValidation::Intact;
        }
        let cores = self.tasks[t as usize].spec.resources.cores_f64();
        let total = images.len();
        let mut valid_prefix = total;
        'walk: for (i, bad) in images {
            for (chunk, len) in bad {
                // A replica exists when the image was written through the
                // DFS and its blocks are still readable.
                let replica = match &self.dfs {
                    Some(dfs) => self.tasks[t as usize]
                        .dfs_paths
                        .get(i)
                        .is_some_and(|p| dfs.is_readable(p).unwrap_or(false)),
                    None => false,
                };
                // Per-image × per-chunk key so refetch draws across chain
                // images stay independent.
                let ckey = ((i as u64) << 20) | chunk;
                let ok = replica
                    && !self
                        .faults
                        .as_ref()
                        .expect("resume mode implies a plan")
                        .chunk_refetch_fails(t as u64, epoch, ckey);
                if self.trace_on {
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::ChunkRefetch {
                            task: t as u64,
                            node: node as u32,
                            chunk,
                            ok,
                        },
                    );
                }
                if ok {
                    self.criu.repair_chunk(handle_u64(t), i, chunk);
                    self.metrics.chunk_refetches += 1;
                    // The targeted re-read holds the container for the
                    // chunk's transfer time: charge it as retry overhead.
                    let reread = self.nodes[node]
                        .device
                        .spec()
                        .read_time(ByteSize::from_bytes(len));
                    self.metrics.retry_cpu_secs += reread.as_secs_f64() * cores;
                } else {
                    valid_prefix = i;
                    break 'walk;
                }
            }
        }
        if valid_prefix == total {
            // Every corrupt chunk was repaired in place: the restore holds.
            return ChainValidation::Intact;
        }
        // The read past the prefix was wasted work.
        let attempt = self.restore_attempts.get(&t).copied().unwrap_or(0);
        self.metrics.retry_cpu_secs += now.since(started).as_secs_f64() * cores;
        self.observe_health(node, now, false);
        if valid_prefix == 0 {
            if self.trace_on {
                self.tracer.record(
                    now.as_micros(),
                    &TraceRecord::RestoreFail {
                        task: t as u64,
                        node: node as u32,
                        attempt,
                        reason: "corrupt-image",
                        will_retry: false,
                    },
                );
            }
            self.metrics.scratch_restarts += 1;
            self.metrics.integrity_scratch_restarts += 1;
            self.restart_from_scratch(t, now);
            return ChainValidation::Dead;
        }
        // Truncate to the longest valid prefix and restore from the older
        // tip instead of losing the whole chain.
        let dropped = (total - valid_prefix) as u64;
        for (origin, bytes) in self.criu.truncate_chain(handle_u64(t), valid_prefix) {
            self.nodes[origin as usize].device.release(bytes);
        }
        while self.tasks[t as usize].dfs_paths.len() > valid_prefix {
            let path = self.tasks[t as usize]
                .dfs_paths
                .pop()
                .expect("length checked");
            if let Some(dfs) = &mut self.dfs {
                let _ = dfs.delete(&path);
            }
        }
        self.metrics.chain_truncations += 1;
        if self.trace_on {
            self.tracer.record(
                now.as_micros(),
                &TraceRecord::ChainTruncate {
                    task: t as u64,
                    node: node as u32,
                    dropped,
                    kept: valid_prefix as u64,
                },
            );
            self.tracer.record(
                now.as_micros(),
                &TraceRecord::RestoreFail {
                    task: t as u64,
                    node: node as u32,
                    attempt,
                    reason: "corrupt-image",
                    will_retry: true,
                },
            );
        }
        // Roll progress back to what the surviving tip certifies.
        let stamp = self
            .criu
            .chain(handle_u64(t))
            .and_then(|c| c.tip())
            .map(|r| r.progress)
            .unwrap_or(0);
        let task = &mut self.tasks[t as usize];
        task.checkpointed_progress = SimDuration::from_micros(stamp);
        task.progress = task.checkpointed_progress;
        // Re-read the truncated chain in place (same node, same episode).
        // The strictly shrinking chain bounds this loop without consuming
        // the transient-retry budget.
        let factor = self.device_factor(node, now).max(1.0);
        let service = self.restore_service(t, node).mul_f64(factor);
        let size = self.criu.image_size(handle_u64(t));
        let op = self.nodes[node]
            .device
            .submit_custom(now, OpKind::Read, size, service);
        q.push(
            op.end,
            Event::RestoreDone {
                task: t,
                epoch,
                started: op.start,
            },
        );
        ChainValidation::Truncated
    }

    /// Abandons task `t`'s image for good: the checkpointed progress is
    /// re-execution waste, the chain is discarded, and the task re-queues
    /// as a fresh start.
    fn restart_from_scratch(&mut self, t: u32, now: SimTime) {
        let cores = self.tasks[t as usize].spec.resources.cores_f64();
        let lost = self.tasks[t as usize].checkpointed_progress;
        self.metrics.kill_lost_cpu_secs += lost.as_secs_f64() * cores;
        self.release_container(t, now);
        self.discard_chain(t);
        self.restore_attempts.remove(&t);
        let task = &mut self.tasks[t as usize];
        task.epoch += 1;
        task.progress = SimDuration::ZERO;
        task.checkpointed_progress = SimDuration::ZERO;
        if let Some(mem) = task.memory.as_mut() {
            mem.mark_all_dirty();
        }
        task.status = TaskStatus::Pending;
        self.enqueue_pending(t);
        self.emit(now, t, TraceEventKind::Submit);
    }

    /// Handles the loss of task `t`'s image chain to an HDFS block loss
    /// (replication could not save every block): the chain is unreadable,
    /// so the checkpointed progress is re-execution waste and the task
    /// falls back to a fresh start wherever the image would have been
    /// used next.
    fn drop_lost_chain(&mut self, t: u32, now: SimTime) {
        self.metrics.images_lost_to_failures += 1;
        match self.tasks[t as usize].status {
            TaskStatus::Restoring { node, .. } => {
                // The in-flight read can no longer complete: abandon it
                // and restart from scratch (the epoch bump staled the
                // queued RestoreDone).
                if self.trace_on {
                    let attempt = self.restore_attempts.get(&t).copied().unwrap_or(0);
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::RestoreFail {
                            task: t as u64,
                            node,
                            attempt,
                            reason: "blocks-lost",
                            will_retry: false,
                        },
                    );
                }
                self.metrics.scratch_restarts += 1;
                self.restart_from_scratch(t, now);
            }
            TaskStatus::Dumping { node, .. } => {
                // The tip being written sat below lost ancestor blocks:
                // the whole chain is useless. Abort the write and fall
                // back to the hard kill (the epoch bump stales DumpDone).
                if let Some((origin, bytes)) = self.criu.abort_tip(handle_u64(t)) {
                    self.nodes[origin as usize].device.release(bytes);
                }
                if let Some(path) = self.tasks[t as usize].dfs_paths.pop() {
                    if let Some(dfs) = &mut self.dfs {
                        let _ = dfs.delete(&path);
                    }
                }
                if self.trace_on {
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::DumpFallback {
                            task: t as u64,
                            node,
                            reason: "node-fail",
                        },
                    );
                }
                self.discard_chain(t);
                self.tasks[t as usize].checkpointed_progress = SimDuration::ZERO;
                self.dump_attempts.remove(&t);
                self.dump_frontier.remove(&t);
                self.kill_dump_victim(t, node as usize, now);
            }
            _ => {
                // Running, or queued (fresh or from the now-lost image):
                // silently lose the chain; the next dump must be full and
                // a queued restore degrades to a fresh start.
                self.discard_chain(t);
                let task = &mut self.tasks[t as usize];
                task.checkpointed_progress = SimDuration::ZERO;
                if let Some(mem) = task.memory.as_mut() {
                    mem.mark_all_dirty();
                }
                if matches!(task.status, TaskStatus::Checkpointed { .. }) {
                    // Still queued under its existing key; only the
                    // resume mode changes.
                    task.status = TaskStatus::Pending;
                }
            }
        }
    }

    /// Evicts `t` because its node failed (organically, or through a
    /// chaos-plan crash). Unlike a kill, the eviction is not the
    /// scheduler's choice; unlike a checkpoint, nothing is saved.
    fn fail_task(&mut self, t: u32, node: usize, now: SimTime, chaos: bool) {
        let reason = if chaos { "node-crash" } else { "node-fail" };
        self.tasks[t as usize].sync_progress(now);
        let lost = self.tasks[t as usize].progress_at_risk();
        let cores = self.tasks[t as usize].spec.resources.cores_f64();
        if chaos {
            self.metrics.crash_evictions += 1;
        } else {
            self.metrics.failure_evictions += 1;
        }
        self.metrics.kill_lost_cpu_secs += lost.as_secs_f64() * cores;
        self.emit(
            now,
            t,
            TraceEventKind::Evict {
                machine: node as u32,
            },
        );
        if self.trace_on {
            self.tracer.record(
                now.as_micros(),
                &TraceRecord::TaskEvict {
                    task: t as u64,
                    node: node as u32,
                    reason,
                },
            );
        }
        self.release_container(t, now);
        // An in-flight dump died with the node: abort its half-written tip.
        if matches!(self.tasks[t as usize].status, TaskStatus::Dumping { .. }) {
            // Close the dangling DumpStart span: the epoch bump below makes
            // the queued DumpDone stale, so without this record the trace
            // would show a dump that never terminates.
            if self.trace_on {
                self.tracer.record(
                    now.as_micros(),
                    &TraceRecord::DumpFallback {
                        task: t as u64,
                        node: node as u32,
                        reason,
                    },
                );
            }
            if let Some((origin, bytes)) = self.criu.abort_tip(handle_u64(t)) {
                self.nodes[origin as usize].device.release(bytes);
            }
            // Delete (not just pop) the aborted write's DFS entry: leaving
            // it behind leaked namespace and replica space, and the next
            // dump of this task would collide with the dangling path.
            if let Some(path) = self.tasks[t as usize].dfs_paths.pop() {
                if let Some(dfs) = &mut self.dfs {
                    let _ = dfs.delete(&path);
                }
            }
            if let Some(owner) = self.drain_owner.remove(&t) {
                if let Some(r) = self.reservations.get_mut(&owner) {
                    r.drains_left = r.drains_left.saturating_sub(1);
                }
            }
        }

        // Local-FS images stored on the failed node are gone; HDFS
        // replication keeps DFS-backed chains readable.
        if self.dfs.is_none() && self.criu.has_image_on(handle_u64(t), node as u32) {
            for (origin, bytes) in self.criu.discard(handle_u64(t)) {
                self.nodes[origin as usize].device.release(bytes);
            }
            self.metrics.images_lost_to_failures += 1;
            self.tasks[t as usize].checkpointed_progress = SimDuration::ZERO;
        }
        if self.nvram_origin.get(&t) == Some(&(node as u32)) {
            self.nvram_origin.remove(&t);
            if let Some(engine) = self.nodes[node].nvram.as_mut() {
                engine.discard(handle_u64(t));
            }
            self.metrics.images_lost_to_failures += 1;
            self.tasks[t as usize].checkpointed_progress = SimDuration::ZERO;
        }
        // The node failure ends any in-flight dump/restore episode.
        if self.faults.is_some() {
            self.dump_attempts.remove(&t);
            self.dump_frontier.remove(&t);
            self.restore_attempts.remove(&t);
        }

        let has_image = self.has_checkpoint(t);
        let origin = if self.cfg.nvram.is_some() {
            self.nvram_origin.get(&t).copied()
        } else {
            self.criu
                .chain(handle_u64(t))
                .and_then(|c| c.tip())
                .map(|r| r.origin_node)
        };
        let task = &mut self.tasks[t as usize];
        task.epoch += 1;
        task.progress = task.checkpointed_progress;
        if let Some(mem) = task.memory.as_mut() {
            if has_image {
                mem.clear_dirty();
            } else {
                mem.mark_all_dirty();
            }
        }
        task.status = match origin {
            Some(origin) if has_image => TaskStatus::Checkpointed { origin },
            _ => TaskStatus::Pending,
        };
        self.enqueue_pending_preserving_status(t);
        self.emit(now, t, TraceEventKind::Submit);
    }

    /// Takes a node down, evicting everything on it. `chaos` marks a
    /// chaos-plan crash: the trace event is `NodeDown` (vs `NodeFail`),
    /// evictions count as crash evictions, and recovery is the caller's
    /// `ChaosRecover` (the MTBF chain stays untouched).
    fn fail_node(&mut self, node: usize, now: SimTime, q: &mut EventQueue<Event>, chaos: bool) {
        if !self.nodes[node].up {
            return; // already down (stale event)
        }
        self.nodes[node].up = false;
        if self.trace_on {
            let rec = if chaos {
                TraceRecord::NodeDown { node: node as u32 }
            } else {
                TraceRecord::NodeFail { node: node as u32 }
            };
            self.tracer.record(now.as_micros(), &rec);
        }
        let victims: Vec<u32> = self.nodes[node]
            .node
            .containers()
            .map(|c| c.task() as u32)
            .collect();
        let mut victims = victims;
        victims.sort_unstable();
        for v in victims {
            self.fail_task(v, node, now, chaos);
        }
        // The node's datanode died with it: the NameNode re-replicates
        // every block that lost a replica onto the surviving datanodes
        // (blocks whose only replica lived here are lost for good).
        let mut lost_chains: Vec<u32> = Vec::new();
        if let Some(dfs) = &mut self.dfs {
            if let Ok(repair) = dfs.fail_datanode(DnId(node as u32)) {
                if self.trace_on && (repair.blocks_repaired > 0 || repair.blocks_lost > 0) {
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::ReplicationRepair {
                            node: node as u32,
                            blocks: repair.blocks_repaired as u64,
                            bytes: repair.bytes_copied.as_u64(),
                        },
                    );
                }
                self.metrics.dfs_blocks_repaired += repair.blocks_repaired as u64;
                self.metrics.dfs_repair_bytes += repair.bytes_copied.as_u64();
                self.metrics.dfs_blocks_lost += repair.blocks_lost as u64;
                if repair.blocks_lost > 0 {
                    // Some image chains just became unreadable; find them.
                    for (t, task) in self.tasks.iter().enumerate() {
                        if task.dfs_paths.is_empty() {
                            continue;
                        }
                        let broken = task
                            .dfs_paths
                            .iter()
                            .any(|p| !dfs.is_readable(p).unwrap_or(true));
                        if broken {
                            lost_chains.push(t as u32);
                        }
                    }
                }
            }
        }
        for t in lost_chains {
            self.drop_lost_chain(t, now);
        }
        // Any reservation earmarked on the failed node is void.
        let voided: Vec<u32> = self
            .reservations
            .iter()
            .filter(|(_, r)| r.node == node)
            .map(|(t, _)| *t)
            .collect();
        for t in voided {
            self.cancel_reservation(t);
        }
        self.update_meter(node, now);
        if !chaos {
            q.push(
                now + self.cfg.failure_downtime,
                Event::NodeRecover(node as u32),
            );
        }
    }

    /// One scheduling pass: serve the pending queue in priority order.
    fn schedule_pass(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        let _prof = cbp_prof::scope("schedule_pass");
        let mut preempt_budget = self.cfg.preempt_budget_per_pass;
        let mut max_avail = self.max_available();
        // Walk the pending set with a cursor instead of snapshotting it:
        // passes fire on every event, and cloning thousands of keys per
        // pass dominated profile time. Entries inserted behind the cursor
        // (requeued preempted tasks) are picked up by the next pass.
        let mut cursor: Option<PendingKey> = None;
        let mut scanned = 0usize;
        loop {
            let key = match cursor {
                None => self.pending.iter().next().copied(),
                Some(c) => self
                    .pending
                    .range((std::ops::Bound::Excluded(c), std::ops::Bound::Unbounded))
                    .next()
                    .copied(),
            };
            let Some(key) = key else { break };
            cursor = Some(key);
            scanned += 1;
            if scanned > self.cfg.max_schedule_scan {
                break;
            }
            let t = key.3;
            let demand = self.tasks[t as usize].spec.resources;
            let fits_somewhere = demand.fits_in(&max_avail);
            let node = if !fits_somewhere {
                None
            } else if self.has_checkpoint(t) {
                self.choose_restore_node(t, now)
            } else {
                self.choose_fresh_node(t, &demand)
            };
            match node {
                Some(n) => {
                    self.pending.remove(&key);
                    self.place_task(t, n, now, q);
                    max_avail = self.max_available();
                }
                None => {
                    // A reservation whose drains all completed but that
                    // still cannot be satisfied has failed its purpose;
                    // release the earmark so the task can try elsewhere.
                    if self
                        .reservations
                        .get(&t)
                        .is_some_and(|r| r.drains_left == 0)
                    {
                        self.cancel_reservation(t);
                    }
                    if self.cfg.policy != PreemptionPolicy::Wait && preempt_budget > 0 {
                        preempt_budget -= 1;
                        if self.try_preempt_for(t, now, q) {
                            // Kills freed space synchronously: place now.
                            let node = if self.has_checkpoint(t) {
                                self.choose_restore_node(t, now)
                            } else {
                                self.choose_fresh_node(t, &demand)
                            };
                            if let Some(n) = node {
                                self.pending.remove(&key);
                                self.place_task(t, n, now, q);
                            }
                            max_avail = self.max_available();
                        }
                    }
                }
            }
        }
    }

    /// Read-only access to the metrics-in-progress trace (for tests).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }
}

impl Simulation for ClusterSim {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, q: &mut EventQueue<Event>) {
        // The probe fires before the event so samples reflect pre-event
        // state at exact interval boundaries.
        if self.sampler.is_some() {
            self.sample_up_to(now);
        }
        self.dispatch(now, event, q);
        #[cfg(debug_assertions)]
        self.assert_image_conservation(now);
        let depth = self.pending.len();
        if self.trace_on && depth != self.last_queue_depth {
            self.tracer.record(
                now.as_micros(),
                &TraceRecord::QueueDepth {
                    pending: depth as u64,
                },
            );
        }
        self.last_queue_depth = depth;
    }

    fn event_kind(&self, event: &Event) -> &'static str {
        match event {
            Event::JobSubmit(_) => "job_submit",
            Event::TaskFinish { .. } => "task_finish",
            Event::DumpDone { .. } => "dump_done",
            Event::RestoreDone { .. } => "restore_done",
            Event::NodeFail(_) => "node_fail",
            Event::NodeRecover(_) => "node_recover",
            Event::ChaosCrashTick => "chaos_crash_tick",
            Event::ChaosPartitionTick => "chaos_partition_tick",
            Event::ChaosRecover(_) => "chaos_recover",
            Event::PressureTick => "pressure_tick",
        }
    }
}

impl ClusterSim {
    /// Processes one event (the body of [`Simulation::handle`], separated
    /// so the telemetry probes wrap every arm uniformly).
    fn dispatch(&mut self, now: SimTime, event: Event, q: &mut EventQueue<Event>) {
        match event {
            Event::JobSubmit(job_idx) => {
                let range = self.task_handle_range(job_idx);
                for t in range {
                    self.emit(now, t as u32, TraceEventKind::Submit);
                    if self.trace_on {
                        let priority = self.tasks[t].priority.0;
                        self.tracer.record(
                            now.as_micros(),
                            &TraceRecord::TaskSubmit {
                                task: t as u64,
                                job: job_idx as u64,
                                priority,
                            },
                        );
                    }
                    self.enqueue_pending(t as u32);
                }
                self.schedule_pass(now, q);
            }
            Event::TaskFinish { task, epoch } => {
                if self.tasks[task as usize].epoch != epoch
                    || !matches!(self.tasks[task as usize].status, TaskStatus::Running { .. })
                {
                    return; // stale: the task was preempted meanwhile
                }
                self.tasks[task as usize].sync_progress(now);
                debug_assert!(self.tasks[task as usize].remaining().is_zero());
                debug_assert!(now >= self.tasks[task as usize].submit);
                self.emit(now, task, TraceEventKind::Finish);
                if self.trace_on {
                    if let TaskStatus::Running { node, .. } = self.tasks[task as usize].status {
                        self.tracer.record(
                            now.as_micros(),
                            &TraceRecord::TaskFinish {
                                task: task as u64,
                                node,
                            },
                        );
                    }
                }
                self.release_container(task, now);
                let cores = self.tasks[task as usize].spec.resources.cores_f64();
                let work = self.tasks[task as usize].spec.duration.as_secs_f64();
                self.metrics.useful_cpu_secs += cores * work;
                self.metrics.tasks_finished += 1;
                self.tasks[task as usize].status = TaskStatus::Finished;
                self.tasks[task as usize].finished_at = Some(now);

                // Drop checkpoint images / NVRAM mirrors.
                for (origin, bytes) in self.criu.discard(handle_u64(task)) {
                    self.nodes[origin as usize].device.release(bytes);
                }
                if let Some(origin) = self.nvram_origin.remove(&task) {
                    if let Some(engine) = self.nodes[origin as usize].nvram.as_mut() {
                        engine.discard(handle_u64(task));
                    }
                }
                if let Some(dfs) = &mut self.dfs {
                    for path in std::mem::take(&mut self.tasks[task as usize].dfs_paths) {
                        let _ = dfs.delete(&path);
                    }
                }

                // Job completion.
                let job_idx = self.tasks[task as usize].job_idx as usize;
                self.job_remaining[job_idx] -= 1;
                if self.job_remaining[job_idx] == 0 {
                    let job = &self.workload.jobs()[job_idx];
                    self.metrics
                        .record_response(job.priority.band(), job.latency, job.submit, now);
                }
                self.schedule_pass(now, q);
            }
            Event::DumpDone {
                task,
                epoch,
                started,
            } => {
                if self.tasks[task as usize].epoch != epoch {
                    return;
                }
                let TaskStatus::Dumping { node, .. } = self.tasks[task as usize].status else {
                    return;
                };
                self.nodes[node as usize].device.on_advance(now);
                // Deterministic fault check: did this dump attempt fail?
                // (NVRAM suspends are memory copies; they do not take the
                // storage fault path.)
                if self.cfg.nvram.is_none() {
                    if let Some(plan) = &self.faults {
                        let attempt = self.dump_attempts.get(&task).copied().unwrap_or(0);
                        if plan.dump_fails(task as u64, epoch, attempt) {
                            self.on_dump_failed(task, node as usize, epoch, attempt, now, q);
                            return;
                        }
                    }
                }
                self.observe_health(node as usize, now, true);
                self.release_container(task, now);
                // Overhead was charged at dump submission; `started` only
                // feeds the trace record.
                if self.trace_on {
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::DumpDone {
                            task: task as u64,
                            node,
                            start_us: started.as_micros(),
                        },
                    );
                }
                let task_state = &mut self.tasks[task as usize];
                task_state.checkpointed_progress = task_state.progress;
                task_state.status = TaskStatus::Checkpointed { origin: node };
                let stamp = task_state.checkpointed_progress.as_micros();
                // Stamp the tip with the progress it certifies, so a later
                // chain truncation can roll the task back to exactly the
                // progress its surviving tip guarantees.
                self.criu.set_tip_progress(handle_u64(task), stamp);
                // Corruption is decided once per image. With chunked resume
                // the draw is per *chunk* and lands in the tip's manifest
                // (repairable at restore time); the legacy whole-image draw
                // remains for the `resume=false` ablation, where every
                // later restore of the poisoned image fails.
                if let Some(plan) = &self.faults {
                    self.dump_attempts.remove(&task);
                    self.dump_frontier.remove(&task);
                    if self.cfg.nvram.is_none() {
                        if plan.resume_enabled() {
                            let hit: Vec<(u64, u64)> = self
                                .criu
                                .chain(handle_u64(task))
                                .and_then(|c| c.tip())
                                .map(|tip| {
                                    let n = tip.manifest.chunk_count();
                                    (0..n)
                                        .filter(|&c| plan.chunk_corrupt(task as u64, epoch, c, n))
                                        .map(|c| (c, tip.id.0))
                                        .collect()
                                })
                                .unwrap_or_default();
                            for &(chunk, image) in &hit {
                                self.criu.mark_tip_chunk_corrupt(handle_u64(task), chunk);
                                if self.trace_on {
                                    self.tracer.record(
                                        now.as_micros(),
                                        &TraceRecord::ChunkCorrupt {
                                            task: task as u64,
                                            node,
                                            image,
                                            chunk,
                                        },
                                    );
                                }
                            }
                        } else if plan.image_corrupt(task as u64, epoch) {
                            self.corrupt_images.insert(task);
                        } else {
                            self.corrupt_images.remove(&task);
                        }
                    }
                }
                // Credit the drain to the blocked task it was serving.
                if let Some(owner) = self.drain_owner.remove(&task) {
                    if let Some(r) = self.reservations.get_mut(&owner) {
                        r.drains_left = r.drains_left.saturating_sub(1);
                    }
                }
                self.enqueue_pending_preserving_status(task);
                self.emit(now, task, TraceEventKind::Submit);
                self.schedule_pass(now, q);
            }
            Event::NodeFail(node) => {
                self.fail_node(node as usize, now, q, false);
                self.schedule_pass(now, q);
            }
            Event::ChaosCrashTick => {
                // One stateless oracle evaluation per window: which nodes
                // crash in the window starting now?
                let (window, downtime, crashed) = {
                    let Some(plan) = &self.faults else { return };
                    let Some(c) = plan.crash() else { return };
                    let widx = now.as_micros() / c.window.as_micros().max(1);
                    let crashed: Vec<usize> = (0..self.nodes.len())
                        .filter(|&i| self.nodes[i].up && plan.node_crashes(i as u32, widx))
                        .collect();
                    (c.window, c.downtime, crashed)
                };
                for node in crashed {
                    self.fail_node(node, now, q, true);
                    // Parse-time validation guarantees downtime < window,
                    // so the node is back before its next crash draw.
                    q.push(now + downtime, Event::ChaosRecover(node as u32));
                }
                // Stop ticking once the workload drained, else the tick
                // chain keeps the run alive forever.
                if !self.job_remaining.iter().all(|&r| r == 0) {
                    q.push(now + window, Event::ChaosCrashTick);
                }
                self.schedule_pass(now, q);
            }
            Event::ChaosPartitionTick => {
                let (window, next) = {
                    let Some(plan) = &self.faults else { return };
                    let Some(p) = plan.partition() else { return };
                    let widx = now.as_micros() / p.window.as_micros().max(1);
                    let racks = match self.nodes.len() {
                        0 => 0,
                        n => plan.rack_of(n as u32 - 1) + 1,
                    };
                    (p.window, plan.partition_isolates(widx, racks))
                };
                if next != self.active_partition {
                    if self.trace_on {
                        if let Some(rack) = self.active_partition {
                            self.tracer
                                .record(now.as_micros(), &TraceRecord::PartitionEnd { rack });
                        }
                        if let Some(rack) = next {
                            self.tracer
                                .record(now.as_micros(), &TraceRecord::PartitionStart { rack });
                        }
                    }
                    self.active_partition = next;
                }
                if !self.job_remaining.iter().all(|&r| r == 0) {
                    q.push(now + window, Event::ChaosPartitionTick);
                } else if let Some(rack) = self.active_partition.take() {
                    // Heal the partition when the schedule winds down so
                    // the trace's start/end events tile.
                    if self.trace_on {
                        self.tracer
                            .record(now.as_micros(), &TraceRecord::PartitionEnd { rack });
                    }
                }
            }
            Event::PressureTick => {
                let Some((window, leak_bytes, leaking)) = self.faults.as_ref().and_then(|plan| {
                    plan.pressure().map(|p| {
                        let widx = now.as_micros() / p.window.as_micros().max(1);
                        let leaking: Vec<usize> = (0..self.nodes.len())
                            .filter(|&i| self.nodes[i].up && plan.leaks(i as u32, widx))
                            .collect();
                        (p.window, p.leak_bytes, leaking)
                    })
                }) else {
                    return;
                };
                for i in leaking {
                    // A leak can only orphan bytes the device actually has;
                    // a full device leaks nothing this window.
                    let amount = leak_bytes.min(self.nodes[i].device.free_capacity());
                    if amount.is_zero() {
                        continue;
                    }
                    self.nodes[i]
                        .device
                        .reserve(amount)
                        .expect("leak amount clamped to free capacity");
                    self.leaked[i] += amount.as_u64();
                }
                // Stop ticking once the workload drained, else the tick
                // chain keeps the run alive forever.
                if !self.job_remaining.iter().all(|&r| r == 0) {
                    q.push(now + window, Event::PressureTick);
                }
            }
            Event::ChaosRecover(node) => {
                if self.nodes[node as usize].up {
                    return; // stale (never expected, but harmless)
                }
                self.nodes[node as usize].up = true;
                if let Some(dfs) = &mut self.dfs {
                    // Re-registration: the datanode rejoins empty (its
                    // blocks were re-replicated or lost at crash time).
                    let _ = dfs.recover_datanode(DnId(node));
                }
                if self.trace_on {
                    self.tracer
                        .record(now.as_micros(), &TraceRecord::NodeUp { node });
                }
                self.schedule_pass(now, q);
            }
            Event::NodeRecover(node) => {
                self.nodes[node as usize].up = true;
                if let Some(dfs) = &mut self.dfs {
                    // The datanode rejoins empty (its blocks were already
                    // re-replicated or lost at failure time).
                    let _ = dfs.recover_datanode(DnId(node));
                }
                if self.trace_on {
                    self.tracer
                        .record(now.as_micros(), &TraceRecord::NodeRecover { node });
                }
                self.schedule_next_failure(node as usize, now, q);
                self.schedule_pass(now, q);
            }
            Event::RestoreDone {
                task,
                epoch,
                started,
            } => {
                if self.tasks[task as usize].epoch != epoch {
                    return;
                }
                let TaskStatus::Restoring { node, container } = self.tasks[task as usize].status
                else {
                    return;
                };
                self.nodes[node as usize].device.on_advance(now);
                // Chunk-level integrity validation first (resume mode):
                // corrupt chunks re-fetch from replicas, unrepairable
                // images truncate the chain to its longest valid prefix,
                // and an empty prefix scratch-restarts.
                if self.cfg.nvram.is_none()
                    && self.faults.as_ref().is_some_and(|p| p.resume_enabled())
                {
                    match self.validate_restored_chain(task, node as usize, epoch, started, now, q)
                    {
                        ChainValidation::Intact => {}
                        ChainValidation::Truncated => return,
                        ChainValidation::Dead => {
                            self.schedule_pass(now, q);
                            return;
                        }
                    }
                }
                // Deterministic fault check: did this restore attempt
                // fail (transiently, or because the image is corrupt)?
                if self.cfg.nvram.is_none() {
                    if let Some(plan) = &self.faults {
                        let attempt = self.restore_attempts.get(&task).copied().unwrap_or(0);
                        let corrupt = self.corrupt_images.contains(&task);
                        if corrupt || plan.restore_fails(task as u64, epoch, attempt) {
                            self.on_restore_failed(
                                task,
                                node as usize,
                                epoch,
                                attempt,
                                corrupt,
                                started,
                                now,
                                q,
                            );
                            return;
                        }
                    }
                }
                if self.faults.is_some() {
                    self.restore_attempts.remove(&task);
                }
                self.observe_health(node as usize, now, true);
                if self.trace_on {
                    self.tracer.record(
                        now.as_micros(),
                        &TraceRecord::RestoreDone {
                            task: task as u64,
                            node,
                            start_us: started.as_micros(),
                        },
                    );
                }
                let cores = self.tasks[task as usize].spec.resources.cores_f64();
                // The remote flag was already recorded at placement time.
                self.metrics
                    .charge_restore(now.since(started), cores, false);
                let task_state = &mut self.tasks[task as usize];
                task_state.status = TaskStatus::Running { node, container };
                task_state.run_started = now;
                task_state.mem_synced = now;
                if let Some(mem) = task_state.memory.as_mut() {
                    mem.clear_dirty();
                }
                let finish = now + task_state.remaining();
                let epoch = task_state.epoch;
                q.push(finish, Event::TaskFinish { task, epoch });
            }
        }
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = iter.fold((0.0, 0usize), |(s, n), x| (s + x, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn clamp_to_node(mut spec: TaskSpec, node: Resources) -> TaskSpec {
    let cpu = spec.resources.cpu_milli().min(node.cpu_milli());
    let mem = spec.resources.mem().min(node.mem());
    spec.resources = Resources::new(cpu, mem);
    spec
}

fn handle_u64(t: u32) -> u64 {
    t as u64
}

/// Extension trait used to derive DFS seeds from the run seed.
trait NextSeed {
    fn next_seed(self) -> u64;
}
impl NextSeed for SimRng {
    fn next_seed(mut self) -> u64 {
        use rand::RngCore;
        self.next_u64()
    }
}
