//! Simulation configuration.

use std::fmt;

use cbp_checkpoint::{CompressionSpec, NvramSpec};
use cbp_cluster::{EnergyModel, Resources};
use cbp_dfs::DfsConfig;
use cbp_faults::FaultSpec;
use cbp_simkit::units::ByteSize;
use cbp_storage::{MediaKind, MediaSpec};
use cbp_workload::Workload;
use serde::{Deserialize, Serialize};

use crate::metrics::RunReport;
use crate::sim::ClusterSim;

/// What the scheduler does to victims when a higher-priority task needs
/// their resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PreemptionPolicy {
    /// Never preempt: arrivals queue until resources free up.
    Wait,
    /// Kill victims and restart them from scratch later (the mechanism in
    /// stock YARN, Mesos and Borg that the paper argues against).
    Kill,
    /// Always suspend victims with a CRIU checkpoint and resume them later
    /// (the paper's "basic" checkpoint-based preemption).
    Checkpoint,
    /// The paper's Algorithm 1: per victim, checkpoint only if its at-risk
    /// progress exceeds the estimated dump+restore+queue overhead
    /// (incremental when possible), otherwise kill.
    Adaptive,
}

impl PreemptionPolicy {
    /// All policies, in the order the paper's figures list them.
    pub const ALL: [PreemptionPolicy; 4] = [
        PreemptionPolicy::Wait,
        PreemptionPolicy::Kill,
        PreemptionPolicy::Checkpoint,
        PreemptionPolicy::Adaptive,
    ];

    /// True if this policy ever writes checkpoints.
    pub fn uses_checkpoints(self) -> bool {
        matches!(
            self,
            PreemptionPolicy::Checkpoint | PreemptionPolicy::Adaptive
        )
    }
}

impl fmt::Display for PreemptionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PreemptionPolicy::Wait => "Wait",
            PreemptionPolicy::Kill => "Kill",
            PreemptionPolicy::Checkpoint => "Checkpoint",
            PreemptionPolicy::Adaptive => "Adaptive",
        };
        f.write_str(s)
    }
}

/// How victims are chosen among a node's lower-priority containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VictimSelection {
    /// Lowest priority first, most recently started first — the obvious
    /// baseline that minimizes lost progress under kill.
    Naive,
    /// The paper's §5.2.2 cost-aware eviction: victims with the lowest
    /// estimated checkpoint time (memory ÷ bandwidth + queue) first.
    CostAware,
}

/// How pending tasks of equal priority are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// Strict FIFO within a priority (YARN capacity scheduler's default):
    /// a huge early job occupies the whole queue ahead of later arrivals.
    Fifo,
    /// Fair interleaving within a priority: jobs' tasks are served
    /// round-robin by per-job task index, approximating YARN's fair
    /// scheduler (which the Facebook cluster the paper cites runs).
    Fair,
}

/// Where a checkpointed task may resume (the paper's Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RestorePlacement {
    /// Only on the node that holds the checkpoint (stock CRIU, before the
    /// paper's HDFS extension).
    LocalOnly,
    /// On whichever feasible node has the lowest restore overhead,
    /// accounting for network fetch of non-local blocks.
    CostAware,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Preemption policy under test.
    pub policy: PreemptionPolicy,
    /// Checkpoint storage medium on every node.
    pub media: MediaSpec,
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node capacity.
    pub node_resources: Resources,
    /// Whether checkpoints go through HDFS (enabling remote restore) or the
    /// local file system only.
    pub via_dfs: bool,
    /// HDFS parameters (used when `via_dfs`).
    pub dfs: DfsConfig,
    /// Victim-selection strategy.
    pub victim_selection: VictimSelection,
    /// Restore-placement strategy.
    pub restore_placement: RestorePlacement,
    /// Enable incremental (soft-dirty) checkpointing.
    pub incremental: bool,
    /// Stream-compress checkpoint images (lz4/zstd-class): smaller and
    /// faster dumps on slow media, counterproductive on NVM.
    pub compression: Option<CompressionSpec>,
    /// Intra-priority queue ordering.
    pub queue_discipline: QueueDiscipline,
    /// Mean time between failures of each node (None disables failure
    /// injection). Failures evict every container on the node; checkpoint
    /// images survive only when replicated through HDFS.
    pub failure_mtbf_per_node: Option<cbp_simkit::SimDuration>,
    /// How long a failed node stays unusable.
    pub failure_downtime: cbp_simkit::SimDuration,
    /// Use NVM as persistent *memory* (NVRAM) for checkpoints instead of a
    /// file system — the paper's §3.2.3 alternative / §7 future work.
    /// Suspends become DRAM→NVM copies (shadow-buffered, no serialization)
    /// and restores are lazy; the trade-off is that mirrors are node-local,
    /// so restore placement degrades to the origin node.
    pub nvram: Option<NvramSpec>,
    /// Per-node power model.
    pub energy: EnergyModel,
    /// Seed for placement tie-breaking and DFS placement.
    pub seed: u64,
    /// At most this many pending tasks are examined per scheduling pass
    /// (the rest wait for the next pass; bounds worst-case pass cost).
    pub max_schedule_scan: usize,
    /// At most this many preemption searches per scheduling pass.
    pub preempt_budget_per_pass: usize,
    /// Deterministic fault-injection plan (None, or an inert spec, disables
    /// injection entirely — the simulator takes the exact same paths).
    pub faults: Option<FaultSpec>,
    /// Image-lifecycle management: when a dump does not fit, run the
    /// GC → evict → spill degradation ladder before giving up with a
    /// no-space kill. Disabling it reverts to the bare retry-then-kill
    /// capacity handling (the ablation baseline for the lifecycle
    /// machinery).
    pub lifecycle: bool,
}

impl SimConfig {
    /// The §3.3.2 trace-driven simulation shape: a homogeneous cluster with
    /// 16-core / 32 GB nodes, checkpoints through HDFS, all adaptive
    /// machinery on.
    pub fn trace_sim(policy: PreemptionPolicy, media: MediaKind) -> Self {
        SimConfig {
            policy,
            media: media.spec().with_capacity(ByteSize::from_gb(2_000)),
            nodes: 200,
            node_resources: Resources::new_cores(16, ByteSize::from_gb(32)),
            via_dfs: true,
            dfs: DfsConfig::default(),
            victim_selection: VictimSelection::CostAware,
            restore_placement: RestorePlacement::CostAware,
            incremental: true,
            compression: None,
            queue_discipline: QueueDiscipline::Fifo,
            failure_mtbf_per_node: None,
            failure_downtime: cbp_simkit::SimDuration::from_secs(600),
            nvram: None,
            energy: EnergyModel::default(),
            seed: 42,
            max_schedule_scan: 3_000,
            preempt_budget_per_pass: 64,
            faults: None,
            lifecycle: true,
        }
    }

    /// The §3.3.3 sensitivity-analysis machine: one node, one core per job
    /// slot, local-FS checkpoints.
    pub fn single_machine(policy: PreemptionPolicy, media: MediaSpec) -> Self {
        SimConfig {
            policy,
            media,
            nodes: 1,
            node_resources: Resources::new_cores(1, ByteSize::from_gb(96)),
            via_dfs: false,
            dfs: DfsConfig::default(),
            victim_selection: VictimSelection::CostAware,
            restore_placement: RestorePlacement::CostAware,
            incremental: true,
            compression: None,
            queue_discipline: QueueDiscipline::Fifo,
            failure_mtbf_per_node: None,
            failure_downtime: cbp_simkit::SimDuration::from_secs(600),
            nvram: None,
            energy: EnergyModel::default(),
            seed: 42,
            max_schedule_scan: 100,
            preempt_budget_per_pass: 8,
            faults: None,
            lifecycle: true,
        }
    }

    /// Returns a copy with a different node count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        self.nodes = nodes;
        self
    }

    /// Returns a copy with a different per-node capacity.
    pub fn with_node_resources(mut self, r: Resources) -> Self {
        self.node_resources = r;
        self
    }

    /// Returns a copy with a different policy.
    pub fn with_policy(mut self, policy: PreemptionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with a different medium, **preserving the current
    /// checkpoint capacity** (capacity is a cluster-provisioning choice,
    /// not a property of the medium being compared).
    pub fn with_media(mut self, media: MediaSpec) -> Self {
        let capacity = self.media.capacity();
        self.media = media.with_capacity(capacity);
        self
    }

    /// Returns a copy with incremental checkpointing toggled (ablation).
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Returns a copy with a different victim-selection strategy (ablation).
    pub fn with_victim_selection(mut self, vs: VictimSelection) -> Self {
        self.victim_selection = vs;
        self
    }

    /// Returns a copy with a different restore placement (ablation).
    pub fn with_restore_placement(mut self, rp: RestorePlacement) -> Self {
        self.restore_placement = rp;
        self
    }

    /// Returns a copy with checkpoint-image stream compression enabled.
    pub fn with_compression(mut self, spec: CompressionSpec) -> Self {
        self.compression = Some(spec);
        self
    }

    /// Returns a copy with the given intra-priority queue discipline.
    pub fn with_queue_discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.queue_discipline = discipline;
        self
    }

    /// Returns a copy with node-failure injection enabled: each node fails
    /// on average every `mtbf` and stays down for `downtime`.
    pub fn with_failures(
        mut self,
        mtbf: cbp_simkit::SimDuration,
        downtime: cbp_simkit::SimDuration,
    ) -> Self {
        assert!(!mtbf.is_zero(), "MTBF must be positive");
        self.failure_mtbf_per_node = Some(mtbf);
        self.failure_downtime = downtime;
        self
    }

    /// Returns a copy using NVRAM (NVM as persistent memory) checkpointing.
    pub fn with_nvram(mut self, spec: NvramSpec) -> Self {
        self.nvram = Some(spec);
        self
    }

    /// Returns a copy with the given fault-injection plan. Inert specs are
    /// normalized back to `None` so "faults off" has exactly one spelling.
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.faults = if spec.is_inert() { None } else { Some(spec) };
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with image-lifecycle management toggled (ablation:
    /// `false` reverts full devices to bare retry-then-kill handling).
    pub fn with_lifecycle(mut self, on: bool) -> Self {
        self.lifecycle = on;
        self
    }

    /// Builds the simulator and runs `workload` to completion.
    pub fn run(&self, workload: &Workload) -> RunReport {
        ClusterSim::new(self.clone(), workload.clone()).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_flags() {
        assert_eq!(PreemptionPolicy::Kill.to_string(), "Kill");
        assert_eq!(PreemptionPolicy::Adaptive.to_string(), "Adaptive");
        assert!(PreemptionPolicy::Checkpoint.uses_checkpoints());
        assert!(PreemptionPolicy::Adaptive.uses_checkpoints());
        assert!(!PreemptionPolicy::Kill.uses_checkpoints());
        assert!(!PreemptionPolicy::Wait.uses_checkpoints());
    }

    #[test]
    fn builder_methods() {
        let cfg = SimConfig::trace_sim(PreemptionPolicy::Kill, MediaKind::Hdd)
            .with_nodes(10)
            .with_policy(PreemptionPolicy::Adaptive)
            .with_incremental(false)
            .with_seed(7);
        assert_eq!(cfg.nodes, 10);
        assert_eq!(cfg.policy, PreemptionPolicy::Adaptive);
        assert!(!cfg.incremental);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.media.kind(), MediaKind::Hdd);
    }
}
