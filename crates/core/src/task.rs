//! Per-task simulator state.

use cbp_checkpoint::TaskMemory;
use cbp_cluster::ContainerId;
use cbp_simkit::{SimDuration, SimTime};
use cbp_workload::{LatencyClass, Priority, TaskSpec};

/// Where a task is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// Waiting in the scheduler queue.
    Pending,
    /// Executing in a container.
    Running {
        /// Node index.
        node: u32,
        /// The container.
        container: ContainerId,
    },
    /// Stopped; its state is being dumped to storage. Resources are still
    /// held (they are released only when the dump completes — §5.2.1 step 4).
    Dumping {
        /// Node index.
        node: u32,
        /// The container being drained.
        container: ContainerId,
    },
    /// Suspended with an image on storage, waiting to be rescheduled.
    Checkpointed {
        /// Node whose device holds the image (restore origin).
        origin: u32,
    },
    /// Allocated on a node, reading its image back before resuming.
    Restoring {
        /// Node index.
        node: u32,
        /// The new container.
        container: ContainerId,
    },
    /// Completed.
    Finished,
}

/// The simulator's record of one task.
#[derive(Debug)]
pub struct TaskState {
    /// The immutable description.
    pub spec: TaskSpec,
    /// Inherited job priority.
    pub priority: Priority,
    /// Inherited latency class.
    pub latency: LatencyClass,
    /// Index of the owning job in the workload.
    pub job_idx: u32,
    /// Original submission time.
    pub submit: SimTime,
    /// Lifecycle position.
    pub status: TaskStatus,
    /// Invalidates stale `TaskFinish` events after a preemption.
    pub epoch: u32,
    /// Useful work accumulated (capped at `spec.duration`).
    pub progress: SimDuration,
    /// Progress safely captured in the newest checkpoint image (what a kill
    /// reverts to).
    pub checkpointed_progress: SimDuration,
    /// When the current execution interval started (valid while `Running`).
    pub run_started: SimTime,
    /// When memory writes were last folded into the dirty bitmap.
    pub mem_synced: SimTime,
    /// Times this task was preempted (killed or suspended).
    pub preemptions: u32,
    /// The task's first pending-queue sequence number. Re-queued
    /// (preempted) tasks keep it, so they resume ahead of later arrivals of
    /// the same priority instead of parking their checkpoint images behind
    /// a long fresh-task backlog.
    pub queue_seq: Option<u64>,
    /// Lazily created memory image (only checkpointing policies need it).
    pub memory: Option<TaskMemory>,
    /// HDFS paths of this task's checkpoint images (when dumping via DFS).
    pub dfs_paths: Vec<String>,
    /// When the task finished.
    pub finished_at: Option<SimTime>,
}

impl TaskState {
    /// Creates the initial (pending) state.
    pub fn new(
        spec: TaskSpec,
        priority: Priority,
        latency: LatencyClass,
        job_idx: u32,
        submit: SimTime,
    ) -> Self {
        TaskState {
            spec,
            priority,
            latency,
            job_idx,
            submit,
            status: TaskStatus::Pending,
            epoch: 0,
            progress: SimDuration::ZERO,
            checkpointed_progress: SimDuration::ZERO,
            run_started: SimTime::ZERO,
            mem_synced: SimTime::ZERO,
            preemptions: 0,
            queue_seq: None,
            memory: None,
            dfs_paths: Vec::new(),
            finished_at: None,
        }
    }

    /// Work still to do.
    pub fn remaining(&self) -> SimDuration {
        self.spec.duration.saturating_sub(self.progress)
    }

    /// Folds the running interval `[run_started, now]` into `progress`.
    /// Call before any transition out of `Running`.
    pub fn sync_progress(&mut self, now: SimTime) {
        if matches!(self.status, TaskStatus::Running { .. }) {
            self.progress = (self.progress + now.since(self.run_started)).min(self.spec.duration);
            self.run_started = now;
        }
    }

    /// Progress that would be lost if the task were killed right now: work
    /// done since the last checkpoint (all of it, if never checkpointed).
    pub fn progress_at_risk(&self) -> SimDuration {
        self.progress.saturating_sub(self.checkpointed_progress)
    }

    /// Lazily creates the memory image and folds in writes for the running
    /// interval since the last sync.
    pub fn sync_memory(&mut self, now: SimTime) {
        let mem = self
            .memory
            .get_or_insert_with(|| TaskMemory::new(self.spec.resources.mem()));
        if matches!(self.status, TaskStatus::Running { .. }) {
            let elapsed = now.saturating_since(self.mem_synced);
            let frac = self.spec.dirty_rate_per_sec * elapsed.as_secs_f64();
            if frac > 0.0 {
                mem.touch_fraction(frac.min(1.0));
            }
        }
        self.mem_synced = now;
    }

    /// True if the task can be selected as a preemption victim.
    pub fn is_preemptible(&self) -> bool {
        matches!(self.status, TaskStatus::Running { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbp_cluster::Resources;
    use cbp_simkit::units::ByteSize;
    use cbp_workload::{JobId, TaskId};

    fn state() -> TaskState {
        let spec = TaskSpec {
            id: TaskId {
                job: JobId(0),
                index: 0,
            },
            resources: Resources::new_cores(1, ByteSize::from_gb(1)),
            duration: SimDuration::from_secs(100),
            dirty_rate_per_sec: 0.01,
        };
        TaskState::new(
            spec,
            Priority::new(0),
            LatencyClass::new(0),
            0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn progress_sync_and_remaining() {
        let mut t = state();
        t.status = TaskStatus::Running {
            node: 0,
            container: ContainerId(1),
        };
        t.run_started = SimTime::from_secs(10);
        t.sync_progress(SimTime::from_secs(40));
        assert_eq!(t.progress, SimDuration::from_secs(30));
        assert_eq!(t.remaining(), SimDuration::from_secs(70));
        // Progress never exceeds the duration.
        t.sync_progress(SimTime::from_secs(500));
        assert_eq!(t.progress, SimDuration::from_secs(100));
        assert_eq!(t.remaining(), SimDuration::ZERO);
    }

    #[test]
    fn progress_at_risk_accounts_for_checkpoints() {
        let mut t = state();
        t.progress = SimDuration::from_secs(50);
        assert_eq!(t.progress_at_risk(), SimDuration::from_secs(50));
        t.checkpointed_progress = SimDuration::from_secs(30);
        assert_eq!(t.progress_at_risk(), SimDuration::from_secs(20));
    }

    #[test]
    fn memory_sync_applies_dirty_rate() {
        let mut t = state();
        t.status = TaskStatus::Running {
            node: 0,
            container: ContainerId(1),
        };
        t.sync_memory(SimTime::ZERO);
        t.memory.as_mut().unwrap().clear_dirty();
        // 10 s at 1%/s -> ~10% dirty.
        t.sync_memory(SimTime::from_secs(10));
        let frac = t.memory.as_ref().unwrap().dirty_fraction();
        assert!((frac - 0.1).abs() < 0.01, "dirty fraction {frac}");
    }

    #[test]
    fn pending_task_does_not_accumulate() {
        let mut t = state();
        t.sync_progress(SimTime::from_secs(100));
        assert_eq!(t.progress, SimDuration::ZERO);
        assert!(!t.is_preemptible());
        t.status = TaskStatus::Running {
            node: 0,
            container: ContainerId(1),
        };
        assert!(t.is_preemptible());
        t.status = TaskStatus::Dumping {
            node: 0,
            container: ContainerId(1),
        };
        assert!(!t.is_preemptible());
    }
}
