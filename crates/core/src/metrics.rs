//! Run metrics: everything the paper's figures report.

use std::collections::BTreeMap;

use cbp_simkit::stats::Samples;
use cbp_simkit::{SimDuration, SimTime};
use cbp_telemetry::{MetricsRegistry, TimeSeries};
use cbp_workload::analysis::TraceLog;
use cbp_workload::{LatencyClass, PriorityBand};
use serde::Serialize;

/// Percentile summary of a band's response times, seconds.
///
/// `BandMetrics.responses` is `#[serde(skip)]` (raw samples are too big to
/// export), so this summary is computed on snapshot and serialized in its
/// place — `--json` output carries p50/p95/p99/max per band.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ResponseSummary {
    /// Median response time.
    pub p50: f64,
    /// 95th-percentile response time.
    pub p95: f64,
    /// 99th-percentile response time.
    pub p99: f64,
    /// Worst response time.
    pub max: f64,
}

impl ResponseSummary {
    /// Computes the summary from raw samples (zeros if empty).
    pub fn from_samples(samples: &mut Samples) -> Self {
        ResponseSummary {
            p50: samples.percentile(50.0).unwrap_or(0.0),
            p95: samples.percentile(95.0).unwrap_or(0.0),
            p99: samples.percentile(99.0).unwrap_or(0.0),
            max: samples.percentile(100.0).unwrap_or(0.0),
        }
    }
}

/// Response-time statistics for one priority band.
#[derive(Debug, Clone, Default, Serialize)]
pub struct BandMetrics {
    /// Jobs finished in this band.
    pub jobs: u64,
    /// Mean response time (submission → last task finish), seconds.
    pub mean_response_secs: f64,
    /// Percentile summary (serialized; computed when the run snapshots).
    pub response_summary: ResponseSummary,
    /// All response times, seconds (for CDFs and percentiles).
    #[serde(skip)]
    pub responses: Samples,
}

/// Aggregate results of one simulation run — the quantities plotted in
/// Figs. 3, 4, 5, 6, 8–12.
#[derive(Debug, Clone, Serialize)]
pub struct RunMetrics {
    /// Total simulated time (first submit → last event).
    pub makespan_secs: f64,
    /// Jobs that completed.
    pub jobs_finished: u64,
    /// Tasks that completed.
    pub tasks_finished: u64,
    /// Preemption events (kills + suspends).
    pub preemptions: u64,
    /// Victims killed.
    pub kills: u64,
    /// Victims suspended (checkpoint dumps started).
    pub checkpoints: u64,
    /// Of which incremental dumps.
    pub incremental_checkpoints: u64,
    /// Restores performed.
    pub restores: u64,
    /// Remote restores (on a node other than the checkpoint origin).
    pub remote_restores: u64,
    /// Dumps that fell back to kill because checkpoint storage was full.
    pub capacity_fallbacks: u64,
    /// Bytes reclaimed by lifecycle GC passes (leaked reservations and
    /// dead chains collected under capacity pressure).
    pub gc_reclaimed_bytes: u64,
    /// Live checkpoint chains evicted by the lifecycle manager to make
    /// room for a higher-value dump (the evicted task restarts from
    /// scratch on its next placement).
    pub evicted_chains: u64,
    /// Dumps redirected to a remote node's device because the local
    /// device had no headroom (lifecycle spill step).
    pub spill_dumps: u64,
    /// Victims killed because the full degradation ladder (GC → evict →
    /// spill) still could not find space (`DumpFallback("no-space")`).
    /// With lifecycle disabled this counts the bare capacity kills, so
    /// the two modes are directly comparable.
    pub no_space_kills: u64,
    /// Containers evicted by node failures (not preemption).
    pub failure_evictions: u64,
    /// Containers evicted by chaos-plan node/rack crashes (failure-domain
    /// injection, counted separately from organic MTBF failures).
    pub crash_evictions: u64,
    /// Preemption victims killed because the checkpoint-path circuit
    /// breaker was open (`DumpFallback("breaker-open")`).
    pub breaker_open_kills: u64,
    /// Total breaker-open seconds summed over every per-node breaker and
    /// the global one (time the checkpoint path was considered down).
    pub breaker_open_secs: f64,
    /// Checkpoint chains destroyed by node failures (local-FS images on the
    /// failed node; HDFS chains that lost a block past replication's reach).
    pub images_lost_to_failures: u64,
    /// Injected dump failures that were retried (fault injection only).
    pub dump_fail_retries: u64,
    /// Dumps abandoned after exhausting their retry budget (the victim
    /// fell back to a hard kill).
    pub dump_fail_kills: u64,
    /// Injected restore failures that were retried from a surviving
    /// replica.
    pub restore_fail_retries: u64,
    /// Restores abandoned for good (corrupt image, lost blocks or
    /// exhausted retries): the task restarted from scratch.
    pub scratch_restarts: u64,
    /// Interrupted dumps that resumed from their last durable chunk
    /// instead of rewriting from byte zero (resume enabled only).
    pub resumed_dumps: u64,
    /// Bytes those resumed dumps did *not* have to rewrite (the durable
    /// prefix credited by chunked resume).
    pub resumed_bytes: u64,
    /// Corrupt chunks successfully re-fetched from a DFS replica during
    /// restore validation (targeted repair instead of whole-image loss).
    pub chunk_refetches: u64,
    /// Image chains truncated to their longest valid prefix after an
    /// unrepairable chunk (restore continued from an older image).
    pub chain_truncations: u64,
    /// Scratch restarts forced specifically by integrity loss (no valid
    /// prefix survived). A subset of `scratch_restarts`.
    pub integrity_scratch_restarts: u64,
    /// CPU-hours burnt inside failed dump/restore attempts and their
    /// rewrites (part of wasted CPU).
    pub retry_overhead_cpu_hours: f64,
    /// HDFS blocks re-replicated after datanode failures.
    pub dfs_blocks_repaired: u64,
    /// Bytes copied by HDFS re-replication repairs.
    pub dfs_repair_bytes: u64,
    /// HDFS blocks whose every replica died (data loss).
    pub dfs_blocks_lost: u64,
    /// CPU-hours lost to killed progress (re-execution waste).
    pub kill_lost_cpu_hours: f64,
    /// CPU-hours spent holding resources during dumps.
    pub dump_overhead_cpu_hours: f64,
    /// CPU-hours spent holding resources during restores.
    pub restore_overhead_cpu_hours: f64,
    /// CPU-hours of useful (completed) work.
    pub useful_cpu_hours: f64,
    /// Total cluster energy, kWh.
    pub energy_kwh: f64,
    /// Mean per-node storage-device busy fraction (the paper's worst-case
    /// I/O overhead metric, Fig. 12b).
    pub io_overhead_fraction: f64,
    /// Peak checkpoint-storage use as a fraction of device capacity,
    /// averaged over nodes (§5.3.3).
    pub storage_peak_fraction: f64,
    /// Per-band response statistics.
    pub per_band: BTreeMap<PriorityBand, BandMetrics>,
    /// Per latency-sensitivity class response statistics (the paper's
    /// Table 2 QoS concern: latency-bound tasks suffer from preemption).
    pub per_latency: BTreeMap<u8, BandMetrics>,
}

impl RunMetrics {
    /// Total wasted CPU-hours: killed progress plus checkpoint/restore
    /// overhead (the paper's Fig. 3a / Fig. 8a quantity), plus — under
    /// fault injection — the CPU burnt in failed attempts and rewrites.
    pub fn wasted_cpu_hours(&self) -> f64 {
        self.kill_lost_cpu_hours
            + self.dump_overhead_cpu_hours
            + self.restore_overhead_cpu_hours
            + self.retry_overhead_cpu_hours
    }

    /// Wasted CPU as a fraction of all consumed CPU.
    pub fn waste_fraction(&self) -> f64 {
        let total = self.useful_cpu_hours + self.wasted_cpu_hours();
        if total == 0.0 {
            0.0
        } else {
            self.wasted_cpu_hours() / total
        }
    }

    /// Fraction of consumed CPU time spent checkpointing/restoring
    /// (Fig. 12a).
    pub fn cpu_overhead_fraction(&self) -> f64 {
        let total = self.useful_cpu_hours + self.wasted_cpu_hours();
        if total == 0.0 {
            0.0
        } else {
            (self.dump_overhead_cpu_hours + self.restore_overhead_cpu_hours) / total
        }
    }

    /// Mean response time of one latency class, seconds (0 if empty).
    pub fn mean_response_latency(&self, class: LatencyClass) -> f64 {
        self.per_latency
            .get(&class.0)
            .map(|b| b.mean_response_secs)
            .unwrap_or(0.0)
    }

    /// Mean response time of one band, seconds (0 if the band is empty).
    pub fn mean_response(&self, band: PriorityBand) -> f64 {
        self.per_band
            .get(&band)
            .map(|b| b.mean_response_secs)
            .unwrap_or(0.0)
    }

    /// Mean response over all jobs, seconds.
    pub fn mean_response_overall(&self) -> f64 {
        let (sum, n) = self.per_band.values().fold((0.0, 0u64), |(s, n), b| {
            (s + b.mean_response_secs * b.jobs as f64, n + b.jobs)
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Observability artifacts of one run: the metrics-registry snapshot, the
/// optional periodic time series, and engine throughput.
#[derive(Debug, Default, Clone)]
pub struct TelemetryReport {
    /// Snapshot of every `subsystem.metric` the run registered.
    pub registry: MetricsRegistry,
    /// Periodic samples (present iff sampling was enabled).
    pub timeseries: Option<TimeSeries>,
    /// Events the engine processed.
    pub engine_events: u64,
    /// Host wall-clock seconds the engine loop took.
    pub engine_wall_secs: f64,
}

impl TelemetryReport {
    /// Engine throughput in events per wall-clock second (0 if instant).
    pub fn events_per_sec(&self) -> f64 {
        if self.engine_wall_secs > 0.0 {
            self.engine_events as f64 / self.engine_wall_secs
        } else {
            0.0
        }
    }
}

/// A finished run: metrics plus the raw event trace (for §2-style analysis)
/// and the response-time samples.
#[derive(Debug)]
pub struct RunReport {
    /// Human-readable run label (policy + medium).
    pub label: String,
    /// Aggregate metrics.
    pub metrics: RunMetrics,
    /// The scheduler event log.
    pub trace: TraceLog,
    /// Observability artifacts (registry snapshot, time series, engine
    /// throughput).
    pub telemetry: TelemetryReport,
}

/// Internal accumulator the simulator writes into.
#[derive(Debug, Default)]
pub(crate) struct MetricsCollector {
    pub preemptions: u64,
    pub kills: u64,
    pub checkpoints: u64,
    pub restores: u64,
    pub remote_restores: u64,
    pub capacity_fallbacks: u64,
    pub gc_reclaimed_bytes: u64,
    pub evicted_chains: u64,
    pub spill_dumps: u64,
    pub no_space_kills: u64,
    pub failure_evictions: u64,
    pub crash_evictions: u64,
    pub breaker_open_kills: u64,
    pub breaker_open_secs: f64,
    pub images_lost_to_failures: u64,
    pub dump_fail_retries: u64,
    pub dump_fail_kills: u64,
    pub restore_fail_retries: u64,
    pub scratch_restarts: u64,
    pub resumed_dumps: u64,
    pub resumed_bytes: u64,
    pub chunk_refetches: u64,
    pub chain_truncations: u64,
    pub integrity_scratch_restarts: u64,
    pub retry_cpu_secs: f64,
    pub dfs_blocks_repaired: u64,
    pub dfs_repair_bytes: u64,
    pub dfs_blocks_lost: u64,
    pub kill_lost_cpu_secs: f64,
    pub dump_overhead_cpu_secs: f64,
    pub restore_overhead_cpu_secs: f64,
    pub useful_cpu_secs: f64,
    pub tasks_finished: u64,
    pub responses: BTreeMap<PriorityBand, Samples>,
    pub responses_latency: BTreeMap<u8, Samples>,
    pub jobs_finished: u64,
}

impl MetricsCollector {
    pub fn record_response(
        &mut self,
        band: PriorityBand,
        latency: LatencyClass,
        submit: SimTime,
        finish: SimTime,
    ) {
        let response = finish.since(submit).as_secs_f64();
        self.responses.entry(band).or_default().push(response);
        self.responses_latency
            .entry(latency.0)
            .or_default()
            .push(response);
        self.jobs_finished += 1;
    }

    pub fn charge_kill(&mut self, lost: SimDuration, cores: f64) {
        self.kills += 1;
        self.preemptions += 1;
        self.kill_lost_cpu_secs += lost.as_secs_f64() * cores;
    }

    pub fn charge_dump(
        &mut self,
        duration: SimDuration,
        cores: f64,
        incremental_count: &mut u64,
        incremental: bool,
    ) {
        self.checkpoints += 1;
        self.preemptions += 1;
        self.dump_overhead_cpu_secs += duration.as_secs_f64() * cores;
        if incremental {
            *incremental_count += 1;
        }
    }

    pub fn charge_restore(&mut self, duration: SimDuration, cores: f64, remote: bool) {
        self.restores += 1;
        self.restore_overhead_cpu_secs += duration.as_secs_f64() * cores;
        if remote {
            self.remote_restores += 1;
        }
    }

    pub fn into_metrics(
        mut self,
        makespan: SimTime,
        energy_kwh: f64,
        io_overhead_fraction: f64,
        storage_peak_fraction: f64,
        incremental_checkpoints: u64,
    ) -> RunMetrics {
        fn to_band_metrics(mut samples: Samples) -> BandMetrics {
            let response_summary = ResponseSummary::from_samples(&mut samples);
            BandMetrics {
                jobs: samples.len() as u64,
                mean_response_secs: samples.mean(),
                response_summary,
                responses: samples,
            }
        }
        let per_band = std::mem::take(&mut self.responses)
            .into_iter()
            .map(|(band, samples)| (band, to_band_metrics(samples)))
            .collect();
        let per_latency = std::mem::take(&mut self.responses_latency)
            .into_iter()
            .map(|(class, samples)| (class, to_band_metrics(samples)))
            .collect();
        RunMetrics {
            makespan_secs: makespan.as_secs_f64(),
            jobs_finished: self.jobs_finished,
            tasks_finished: self.tasks_finished,
            preemptions: self.preemptions,
            kills: self.kills,
            checkpoints: self.checkpoints,
            incremental_checkpoints,
            restores: self.restores,
            remote_restores: self.remote_restores,
            capacity_fallbacks: self.capacity_fallbacks,
            gc_reclaimed_bytes: self.gc_reclaimed_bytes,
            evicted_chains: self.evicted_chains,
            spill_dumps: self.spill_dumps,
            no_space_kills: self.no_space_kills,
            failure_evictions: self.failure_evictions,
            crash_evictions: self.crash_evictions,
            breaker_open_kills: self.breaker_open_kills,
            breaker_open_secs: self.breaker_open_secs,
            images_lost_to_failures: self.images_lost_to_failures,
            dump_fail_retries: self.dump_fail_retries,
            dump_fail_kills: self.dump_fail_kills,
            restore_fail_retries: self.restore_fail_retries,
            scratch_restarts: self.scratch_restarts,
            resumed_dumps: self.resumed_dumps,
            resumed_bytes: self.resumed_bytes,
            chunk_refetches: self.chunk_refetches,
            chain_truncations: self.chain_truncations,
            integrity_scratch_restarts: self.integrity_scratch_restarts,
            retry_overhead_cpu_hours: self.retry_cpu_secs / 3600.0,
            dfs_blocks_repaired: self.dfs_blocks_repaired,
            dfs_repair_bytes: self.dfs_repair_bytes,
            dfs_blocks_lost: self.dfs_blocks_lost,
            kill_lost_cpu_hours: self.kill_lost_cpu_secs / 3600.0,
            dump_overhead_cpu_hours: self.dump_overhead_cpu_secs / 3600.0,
            restore_overhead_cpu_hours: self.restore_overhead_cpu_secs / 3600.0,
            useful_cpu_hours: self.useful_cpu_secs / 3600.0,
            energy_kwh,
            io_overhead_fraction,
            storage_peak_fraction,
            per_band,
            per_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_into_metrics() {
        let mut c = MetricsCollector::default();
        c.charge_kill(SimDuration::from_secs(3600), 2.0);
        let mut inc = 0;
        c.charge_dump(SimDuration::from_secs(1800), 1.0, &mut inc, true);
        c.charge_restore(SimDuration::from_secs(1800), 1.0, true);
        c.useful_cpu_secs = 3600.0 * 6.0;
        c.crash_evictions = 2;
        c.breaker_open_kills = 1;
        c.breaker_open_secs = 42.0;
        c.gc_reclaimed_bytes = 1_000_000;
        c.evicted_chains = 3;
        c.spill_dumps = 4;
        c.no_space_kills = 1;
        c.resumed_dumps = 2;
        c.resumed_bytes = 128_000_000;
        c.chunk_refetches = 5;
        c.chain_truncations = 1;
        c.integrity_scratch_restarts = 1;
        c.record_response(
            PriorityBand::Free,
            LatencyClass::new(0),
            SimTime::ZERO,
            SimTime::from_secs(120),
        );
        c.record_response(
            PriorityBand::Free,
            LatencyClass::new(1),
            SimTime::ZERO,
            SimTime::from_secs(240),
        );
        c.record_response(
            PriorityBand::Production,
            LatencyClass::new(3),
            SimTime::from_secs(60),
            SimTime::from_secs(120),
        );
        let m = c.into_metrics(SimTime::from_secs(1000), 12.5, 0.25, 0.1, inc);

        assert_eq!(m.kills, 1);
        assert_eq!(m.checkpoints, 1);
        assert_eq!(m.incremental_checkpoints, 1);
        assert_eq!(m.restores, 1);
        assert_eq!(m.remote_restores, 1);
        assert_eq!(m.preemptions, 2);
        assert_eq!(m.crash_evictions, 2);
        assert_eq!(m.breaker_open_kills, 1);
        assert_eq!(m.breaker_open_secs, 42.0);
        assert_eq!(m.gc_reclaimed_bytes, 1_000_000);
        assert_eq!(m.evicted_chains, 3);
        assert_eq!(m.spill_dumps, 4);
        assert_eq!(m.no_space_kills, 1);
        assert_eq!(m.resumed_dumps, 2);
        assert_eq!(m.resumed_bytes, 128_000_000);
        assert_eq!(m.chunk_refetches, 5);
        assert_eq!(m.chain_truncations, 1);
        assert_eq!(m.integrity_scratch_restarts, 1);
        assert!((m.kill_lost_cpu_hours - 2.0).abs() < 1e-12);
        assert!((m.dump_overhead_cpu_hours - 0.5).abs() < 1e-12);
        assert!((m.restore_overhead_cpu_hours - 0.5).abs() < 1e-12);
        assert!((m.wasted_cpu_hours() - 3.0).abs() < 1e-12);
        assert!((m.waste_fraction() - 3.0 / 9.0).abs() < 1e-12);
        assert!((m.cpu_overhead_fraction() - 1.0 / 9.0).abs() < 1e-12);
        assert_eq!(m.jobs_finished, 3);
        assert!((m.mean_response(PriorityBand::Free) - 180.0).abs() < 1e-9);
        assert!((m.mean_response(PriorityBand::Production) - 60.0).abs() < 1e-9);
        assert!((m.mean_response_overall() - (120.0 + 240.0 + 60.0) / 3.0).abs() < 1e-9);
        assert_eq!(m.mean_response(PriorityBand::Middle), 0.0);
        assert!((m.mean_response_latency(LatencyClass::new(0)) - 120.0).abs() < 1e-9);
        assert!((m.mean_response_latency(LatencyClass::new(3)) - 60.0).abs() < 1e-9);
        assert_eq!(m.mean_response_latency(LatencyClass::new(2)), 0.0);
        assert_eq!(m.energy_kwh, 12.5);
    }

    #[test]
    fn response_summary_percentiles() {
        let mut c = MetricsCollector::default();
        for i in 1..=100u64 {
            c.record_response(
                PriorityBand::Middle,
                LatencyClass::new(0),
                SimTime::ZERO,
                SimTime::from_secs(i),
            );
        }
        let m = c.into_metrics(SimTime::from_secs(100), 0.0, 0.0, 0.0, 0);
        let band = &m.per_band[&PriorityBand::Middle];
        let s = band.response_summary;
        assert!((s.p50 - 50.5).abs() < 1e-9, "p50 = {}", s.p50);
        assert!((s.p95 - 95.05).abs() < 1e-9, "p95 = {}", s.p95);
        assert!((s.p99 - 99.01).abs() < 1e-9, "p99 = {}", s.p99);
        assert!((s.max - 100.0).abs() < 1e-9, "max = {}", s.max);
        // JSON export of the summary is asserted in cbp-bench (which has
        // serde_json); this crate stays serde-only.
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = MetricsCollector::default().into_metrics(SimTime::ZERO, 0.0, 0.0, 0.0, 0);
        assert_eq!(m.waste_fraction(), 0.0);
        assert_eq!(m.cpu_overhead_fraction(), 0.0);
        assert_eq!(m.mean_response_overall(), 0.0);
    }
}
