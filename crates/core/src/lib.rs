//! Checkpoint-based preemptive cluster scheduling — the paper's core
//! contribution.
//!
//! This crate implements the scheduler of §3–§4 as a deterministic
//! trace-driven simulator over the `cbp-*` substrates:
//!
//! * **Preemption policies** ([`PreemptionPolicy`]): `Wait` (never preempt),
//!   `Kill` (the YARN/Borg status quo), `Checkpoint` (always suspend-resume,
//!   the "basic" policy), and `Adaptive` — the paper's Algorithm 1, which
//!   checkpoints a victim only when its at-risk progress exceeds the
//!   estimated `size/bw_write + size/bw_read + queue_time` overhead, using
//!   incremental dumps whenever a prior image exists, and kills otherwise.
//! * **Adaptive resumption** (Algorithm 2, [`RestorePlacement`]): a
//!   checkpointed task restores on whichever node minimizes
//!   queueing + read + network-fetch cost, not necessarily its origin.
//! * **Cost-aware eviction** ([`VictimSelection`]): victims are chosen by
//!   lowest estimated checkpoint cost (§5.2.2), against a naive
//!   lowest-priority/most-recent baseline for ablation.
//! * **Sequential checkpoint queues**: each node's storage device services
//!   one checkpoint/restore at a time; Algorithm 1's `queue_time` term comes
//!   from that queue.
//!
//! The simulator runs any [`cbp_workload::Workload`], emits a §2-style
//! [`cbp_workload::analysis::TraceLog`], and reports the paper's metrics
//! (wasted CPU-hours, energy, per-band response times, CDFs, checkpoint
//! CPU/I-O overheads) in a [`RunReport`].
//!
//! ```
//! use cbp_core::{PreemptionPolicy, SimConfig};
//! use cbp_storage::MediaKind;
//! use cbp_workload::google::GoogleTraceConfig;
//!
//! let workload = GoogleTraceConfig::small(50.0).generate(1);
//! let config = SimConfig::trace_sim(PreemptionPolicy::Kill, MediaKind::Ssd)
//!     .with_nodes(8);
//! let report = config.run(&workload);
//! assert_eq!(report.metrics.jobs_finished, workload.job_count() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod metrics;
pub mod scenario;
mod sim;
mod task;

pub use config::{PreemptionPolicy, QueueDiscipline, RestorePlacement, SimConfig, VictimSelection};
pub use metrics::{BandMetrics, ResponseSummary, RunMetrics, RunReport, TelemetryReport};
pub use sim::ClusterSim;
pub use task::TaskStatus;
