//! The §3.3.3 / §4.2.2 sensitivity scenario: two k-means jobs on one
//! machine, swept over checkpoint bandwidth.
//!
//! A low-priority job (5 GB, one minute) runs for 30 s before a
//! high-priority job arrives and needs the machine. The paper compares
//! `Wait`, `Kill`, `Checkpoint` and (in §4.2.2) `Adaptive` while throttling
//! the PMFS checkpoint path between 1 and 5 GB/s via the Xeon
//! thermal-control register.
//!
//! **Calibration note.** The register value is the *memory-system*
//! bandwidth; the effective CRIU dump rate is roughly an order of magnitude
//! lower (unthrottled PMFS moves a 5 GB image in 2.92 s ≈ 1.7 GB/s, against
//! tens of GB/s of raw memory bandwidth — Table 3). The scenario therefore
//! applies [`SensitivityScenario::criu_efficiency`] (default 0.12) to the
//! swept axis; with it, the checkpoint-vs-kill crossover lands mid-sweep
//! exactly as in Figs. 4 and 6.

use cbp_cluster::Resources;
use cbp_simkit::units::{Bandwidth, ByteSize};
use cbp_simkit::{SimDuration, SimTime};
use cbp_storage::MediaSpec;
use cbp_workload::kmeans::KMeansJob;
use cbp_workload::{JobId, JobSpec, LatencyClass, Priority, TaskId, Workload};

use crate::config::{PreemptionPolicy, SimConfig};

/// The two-job bandwidth-sensitivity experiment.
#[derive(Debug, Clone)]
pub struct SensitivityScenario {
    /// The program both jobs run (default: the 5 GB / 60 s k-means job).
    pub job: KMeansJob,
    /// How long the low-priority job runs before the high-priority job
    /// arrives (default 30 s).
    pub head_start: SimDuration,
    /// Effective CRIU throughput as a fraction of the swept (nominal)
    /// bandwidth; see the module docs.
    pub criu_efficiency: f64,
}

impl Default for SensitivityScenario {
    fn default() -> Self {
        SensitivityScenario {
            job: KMeansJob::sensitivity(),
            head_start: SimDuration::from_secs(30),
            criu_efficiency: 0.12,
        }
    }
}

/// The outcome of one (policy, bandwidth) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioOutcome {
    /// High-priority job response time, seconds.
    pub high_response_secs: f64,
    /// Low-priority job response time, seconds.
    pub low_response_secs: f64,
    /// Total machine energy over the episode, kWh.
    pub energy_kwh: f64,
}

impl ScenarioOutcome {
    /// High-priority response normalized to the undisturbed runtime.
    pub fn high_normalized(&self, undisturbed_secs: f64) -> f64 {
        self.high_response_secs / undisturbed_secs
    }

    /// Low-priority response normalized to the undisturbed runtime.
    pub fn low_normalized(&self, undisturbed_secs: f64) -> f64 {
        self.low_response_secs / undisturbed_secs
    }
}

impl SensitivityScenario {
    /// The two-job workload: low priority at t=0, high priority at
    /// `head_start`.
    pub fn workload(&self) -> Workload {
        let low = JobSpec {
            id: JobId(0),
            submit: SimTime::ZERO,
            priority: Priority::new(0),
            latency: LatencyClass::new(0),
            tasks: vec![self.job.task_spec(TaskId {
                job: JobId(0),
                index: 0,
            })],
        };
        let high = JobSpec {
            id: JobId(1),
            submit: SimTime::ZERO + self.head_start,
            priority: Priority::new(9),
            latency: LatencyClass::new(3),
            tasks: vec![self.job.task_spec(TaskId {
                job: JobId(1),
                index: 0,
            })],
        };
        Workload::new(vec![low, high])
    }

    /// The throttled medium for a nominal bandwidth of `gbps`.
    pub fn media(&self, gbps: f64) -> MediaSpec {
        assert!(gbps > 0.0, "bandwidth must be positive");
        let effective = Bandwidth::from_gb_per_sec_f64(gbps * self.criu_efficiency);
        MediaSpec::nvm()
            .throttled(effective)
            .with_capacity(ByteSize::from_gb(96))
    }

    /// Runs one (policy, bandwidth) cell.
    pub fn run(&self, policy: PreemptionPolicy, gbps: f64) -> ScenarioOutcome {
        let cfg = SimConfig::single_machine(policy, self.media(gbps)).with_node_resources(
            Resources::new_cores(self.job.cores, self.job.footprint() * 3),
        );
        let report = cfg.run(&self.workload());
        let m = &report.metrics;
        ScenarioOutcome {
            high_response_secs: m.mean_response(cbp_workload::PriorityBand::Production),
            low_response_secs: m.mean_response(cbp_workload::PriorityBand::Free),
            energy_kwh: m.energy_kwh,
        }
    }

    /// Sweeps the policy over the paper's 1–5 GB/s axis.
    pub fn sweep(
        &self,
        policy: PreemptionPolicy,
        bandwidths_gbps: &[f64],
    ) -> Vec<(f64, ScenarioOutcome)> {
        bandwidths_gbps
            .iter()
            .map(|&bw| (bw, self.run(policy, bw)))
            .collect()
    }

    /// The undisturbed single-job runtime (normalization basis).
    pub fn undisturbed_secs(&self) -> f64 {
        self.job.duration().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BWS: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];

    fn scenario() -> SensitivityScenario {
        SensitivityScenario::default()
    }

    /// Wait: the high job waits the low job's remaining 30 s — response 90 s
    /// (1.5×), exactly the paper's "more than one-half" penalty. The low job
    /// is undisturbed.
    #[test]
    fn wait_policy_analytics() {
        let o = scenario().run(PreemptionPolicy::Wait, 3.0);
        assert!((o.high_response_secs - 90.0).abs() < 0.5, "{o:?}");
        assert!((o.low_response_secs - 60.0).abs() < 0.5, "{o:?}");
    }

    /// Kill: the high job runs immediately (60 s); the low job restarts from
    /// scratch after it (finishes at 150 s).
    #[test]
    fn kill_policy_analytics() {
        let o = scenario().run(PreemptionPolicy::Kill, 3.0);
        assert!((o.high_response_secs - 60.0).abs() < 0.5, "{o:?}");
        assert!((o.low_response_secs - 150.0).abs() < 0.5, "{o:?}");
    }

    /// Checkpoint: the high job waits for the dump; the low job resumes from
    /// 30 s of progress. Both improve with bandwidth.
    #[test]
    fn checkpoint_improves_with_bandwidth() {
        let s = scenario();
        let slow = s.run(PreemptionPolicy::Checkpoint, 1.0);
        let fast = s.run(PreemptionPolicy::Checkpoint, 5.0);
        assert!(slow.high_response_secs > fast.high_response_secs);
        assert!(slow.low_response_secs > fast.low_response_secs);
        // At high bandwidth the high job approaches the kill optimum.
        assert!(fast.high_response_secs < 75.0, "{fast:?}");
        // The low job keeps its progress: better than kill's 150 s.
        assert!(fast.low_response_secs < 150.0, "{fast:?}");
    }

    /// Fig. 4a's key observation: at the low end of the sweep, checkpointing
    /// hurts the high-priority job more than killing — and can even exceed
    /// waiting.
    #[test]
    fn checkpoint_worse_than_kill_at_low_bandwidth() {
        let s = scenario();
        let chk = s.run(PreemptionPolicy::Checkpoint, 1.0);
        let kill = s.run(PreemptionPolicy::Kill, 1.0);
        assert!(
            chk.high_response_secs > kill.high_response_secs + 10.0,
            "chk {chk:?} vs kill {kill:?}"
        );
    }

    /// Fig. 6: the adaptive policy kills at low bandwidth (matching kill's
    /// high-priority response) and checkpoints at high bandwidth (matching
    /// checkpoint's low-priority win).
    #[test]
    fn adaptive_switches_mechanism_across_sweep() {
        let s = scenario();
        let lo = s.run(PreemptionPolicy::Adaptive, 1.0);
        let kill_lo = s.run(PreemptionPolicy::Kill, 1.0);
        assert!(
            (lo.high_response_secs - kill_lo.high_response_secs).abs() < 1.0,
            "adaptive at 1 GB/s should kill: {lo:?} vs {kill_lo:?}"
        );
        let hi = s.run(PreemptionPolicy::Adaptive, 5.0);
        let chk_hi = s.run(PreemptionPolicy::Checkpoint, 5.0);
        assert!(
            (hi.low_response_secs - chk_hi.low_response_secs).abs() < 1.0,
            "adaptive at 5 GB/s should checkpoint: {hi:?} vs {chk_hi:?}"
        );
    }

    /// Adaptive is never worse than the basic always-checkpoint policy for
    /// the high-priority job, across the whole sweep.
    #[test]
    fn adaptive_dominates_basic_for_high_priority() {
        let s = scenario();
        for bw in BWS {
            let a = s.run(PreemptionPolicy::Adaptive, bw);
            let b = s.run(PreemptionPolicy::Checkpoint, bw);
            assert!(
                a.high_response_secs <= b.high_response_secs + 0.5,
                "bw {bw}: adaptive {a:?} vs basic {b:?}"
            );
        }
    }

    /// Fig. 4c: wait uses the least energy; checkpoint at low bandwidth uses
    /// more than kill.
    #[test]
    fn energy_ordering() {
        let s = scenario();
        let wait = s.run(PreemptionPolicy::Wait, 1.0);
        let kill = s.run(PreemptionPolicy::Kill, 1.0);
        let chk = s.run(PreemptionPolicy::Checkpoint, 1.0);
        assert!(wait.energy_kwh <= kill.energy_kwh);
        assert!(
            chk.energy_kwh > kill.energy_kwh,
            "chk {chk:?} kill {kill:?}"
        );
        // At high bandwidth checkpoint beats kill on energy.
        let chk5 = s.run(PreemptionPolicy::Checkpoint, 5.0);
        let kill5 = s.run(PreemptionPolicy::Kill, 5.0);
        assert!(chk5.energy_kwh < kill5.energy_kwh);
    }
}
