//! End-to-end behaviour of the trace-driven simulator on Google-like
//! workloads.

use cbp_core::{PreemptionPolicy, RestorePlacement, RunReport, SimConfig, VictimSelection};
use cbp_storage::MediaKind;
use cbp_workload::analysis::PreemptionAnalysis;
use cbp_workload::google::GoogleTraceConfig;
use cbp_workload::{PriorityBand, Workload};

/// A small but contended workload: enough demand to force preemption on a
/// small cluster.
fn contended_workload(seed: u64) -> Workload {
    GoogleTraceConfig::small(300.0).generate(seed)
}

fn small_cluster(policy: PreemptionPolicy, media: MediaKind) -> SimConfig {
    SimConfig::trace_sim(policy, media).with_nodes(6)
}

fn run(policy: PreemptionPolicy, media: MediaKind, seed: u64) -> RunReport {
    small_cluster(policy, media).run(&contended_workload(seed))
}

#[test]
fn all_jobs_finish_under_every_policy() {
    let w = contended_workload(1);
    for policy in PreemptionPolicy::ALL {
        let report = small_cluster(policy, MediaKind::Ssd).run(&w);
        assert_eq!(
            report.metrics.jobs_finished,
            w.job_count() as u64,
            "{policy}: jobs lost"
        );
        assert_eq!(
            report.metrics.tasks_finished,
            w.task_count() as u64,
            "{policy}: tasks lost"
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let a = run(PreemptionPolicy::Adaptive, MediaKind::Hdd, 2);
    let b = run(PreemptionPolicy::Adaptive, MediaKind::Hdd, 2);
    assert_eq!(a.metrics.preemptions, b.metrics.preemptions);
    assert_eq!(a.metrics.checkpoints, b.metrics.checkpoints);
    assert_eq!(a.metrics.kills, b.metrics.kills);
    assert!((a.metrics.energy_kwh - b.metrics.energy_kwh).abs() < 1e-12);
    assert!((a.metrics.makespan_secs - b.metrics.makespan_secs).abs() < 1e-9);
    assert_eq!(a.trace.len(), b.trace.len());
}

#[test]
fn wait_policy_never_preempts() {
    let report = run(PreemptionPolicy::Wait, MediaKind::Ssd, 3);
    assert_eq!(report.metrics.preemptions, 0);
    assert_eq!(report.metrics.kills, 0);
    assert_eq!(report.metrics.checkpoints, 0);
    assert_eq!(report.metrics.wasted_cpu_hours(), 0.0);
}

#[test]
fn kill_policy_preempts_and_wastes() {
    let report = run(PreemptionPolicy::Kill, MediaKind::Ssd, 3);
    assert!(report.metrics.preemptions > 0, "workload must be contended");
    assert_eq!(report.metrics.checkpoints, 0);
    assert!(report.metrics.kill_lost_cpu_hours > 0.0);
    assert_eq!(report.metrics.dump_overhead_cpu_hours, 0.0);
}

#[test]
fn checkpoint_policy_dumps_instead_of_killing() {
    let report = run(PreemptionPolicy::Checkpoint, MediaKind::Ssd, 3);
    assert!(report.metrics.checkpoints > 0);
    assert!(report.metrics.restores > 0);
    // The basic policy only kills when checkpoint storage overflows.
    assert_eq!(report.metrics.kills, report.metrics.capacity_fallbacks);
    assert!(report.metrics.dump_overhead_cpu_hours > 0.0);
}

/// The paper's headline: checkpoint-based preemption wastes far less CPU
/// than kill-based, on every medium (Fig. 3a).
#[test]
fn checkpointing_reduces_waste_on_all_media() {
    let kill = run(PreemptionPolicy::Kill, MediaKind::Hdd, 4);
    assert!(kill.metrics.wasted_cpu_hours() > 0.0);
    for media in MediaKind::ALL {
        let chk = run(PreemptionPolicy::Checkpoint, media, 4);
        assert!(
            chk.metrics.wasted_cpu_hours() < kill.metrics.wasted_cpu_hours(),
            "{media}: chk waste {} >= kill waste {}",
            chk.metrics.wasted_cpu_hours(),
            kill.metrics.wasted_cpu_hours()
        );
    }
}

/// Faster media shrink checkpoint overhead (Fig. 3a ordering:
/// HDD > SSD > NVM).
#[test]
fn faster_media_reduce_checkpoint_overhead() {
    let hdd = run(PreemptionPolicy::Checkpoint, MediaKind::Hdd, 5);
    let ssd = run(PreemptionPolicy::Checkpoint, MediaKind::Ssd, 5);
    let nvm = run(PreemptionPolicy::Checkpoint, MediaKind::Nvm, 5);
    let overhead =
        |r: &RunReport| r.metrics.dump_overhead_cpu_hours + r.metrics.restore_overhead_cpu_hours;
    assert!(
        overhead(&hdd) > overhead(&ssd),
        "HDD {} vs SSD {}",
        overhead(&hdd),
        overhead(&ssd)
    );
    assert!(
        overhead(&ssd) > overhead(&nvm),
        "SSD {} vs NVM {}",
        overhead(&ssd),
        overhead(&nvm)
    );
}

/// Adaptive (Fig. 5): never slower than basic checkpointing for high
/// priority jobs on slow media, and it uses a mix of kills and checkpoints.
#[test]
fn adaptive_mixes_mechanisms() {
    let report = run(PreemptionPolicy::Adaptive, MediaKind::Hdd, 6);
    assert!(report.metrics.preemptions > 0);
    assert!(
        report.metrics.kills > 0,
        "adaptive on HDD should kill young tasks"
    );
    // On NVM almost everything is worth checkpointing.
    let nvm = run(PreemptionPolicy::Adaptive, MediaKind::Nvm, 6);
    let chk_share = nvm.metrics.checkpoints as f64 / nvm.metrics.preemptions.max(1) as f64;
    assert!(chk_share > 0.5, "NVM adaptive checkpoint share {chk_share}");
}

/// Incremental checkpointing reduces bytes dumped (ablation).
#[test]
fn incremental_reduces_dump_overhead() {
    let w = contended_workload(7);
    let base = small_cluster(PreemptionPolicy::Checkpoint, MediaKind::Hdd)
        .with_incremental(false)
        .run(&w);
    let inc = small_cluster(PreemptionPolicy::Checkpoint, MediaKind::Hdd)
        .with_incremental(true)
        .run(&w);
    assert_eq!(base.metrics.incremental_checkpoints, 0);
    // Incremental dumps only exist when tasks get preempted repeatedly; the
    // contended workload guarantees some.
    if inc.metrics.incremental_checkpoints > 0 {
        assert!(
            inc.metrics.dump_overhead_cpu_hours <= base.metrics.dump_overhead_cpu_hours,
            "incremental {} > full {}",
            inc.metrics.dump_overhead_cpu_hours,
            base.metrics.dump_overhead_cpu_hours
        );
    }
}

/// The emitted trace reproduces §2-style analysis: preemptions hit the free
/// band hardest.
#[test]
fn trace_analysis_shows_low_priority_preemption() {
    let report = run(PreemptionPolicy::Kill, MediaKind::Ssd, 8);
    let analysis = PreemptionAnalysis::analyze(&report.trace);
    assert!(analysis.overall.preemptions > 0);
    let free = analysis.per_band[0].1;
    let prod = analysis.per_band[2].1;
    assert!(
        free.preempted_fraction() > prod.preempted_fraction(),
        "free {} <= production {}",
        free.preempted_fraction(),
        prod.preempted_fraction()
    );
    assert!(analysis.wasted_cpu_hours > 0.0);
}

/// Remote restore happens under cost-aware placement with DFS, never under
/// local-only.
#[test]
fn restore_placement_ablation() {
    let w = contended_workload(9);
    let local = small_cluster(PreemptionPolicy::Checkpoint, MediaKind::Ssd)
        .with_restore_placement(RestorePlacement::LocalOnly)
        .run(&w);
    assert_eq!(local.metrics.remote_restores, 0);
    let aware = small_cluster(PreemptionPolicy::Checkpoint, MediaKind::Ssd)
        .with_restore_placement(RestorePlacement::CostAware)
        .run(&w);
    // Cost-aware *may* restore remotely; both must finish everything.
    assert_eq!(aware.metrics.jobs_finished, local.metrics.jobs_finished);
}

/// Victim selection strategies both complete the workload; cost-aware does
/// not checkpoint more bytes than naive (it picks cheaper victims).
#[test]
fn victim_selection_ablation() {
    let w = contended_workload(10);
    let naive = small_cluster(PreemptionPolicy::Checkpoint, MediaKind::Hdd)
        .with_victim_selection(VictimSelection::Naive)
        .run(&w);
    let aware = small_cluster(PreemptionPolicy::Checkpoint, MediaKind::Hdd)
        .with_victim_selection(VictimSelection::CostAware)
        .run(&w);
    assert_eq!(naive.metrics.jobs_finished, aware.metrics.jobs_finished);
    assert!(naive.metrics.preemptions > 0);
    assert!(aware.metrics.preemptions > 0);
}

/// CPU accounting is conserved: useful work equals the workload's total
/// CPU-hours under every policy (waste is *extra*, not subtracted).
#[test]
fn useful_work_is_conserved() {
    let w = contended_workload(11);
    let expected = w.total_cpu_hours();
    for policy in [PreemptionPolicy::Kill, PreemptionPolicy::Checkpoint] {
        let report = small_cluster(policy, MediaKind::Ssd).run(&w);
        let useful = report.metrics.useful_cpu_hours;
        assert!(
            (useful - expected).abs() / expected < 0.01,
            "{policy}: useful {useful} vs workload {expected}"
        );
    }
}

/// The NVRAM backend (§3.2.3 / future work): checkpointing through NVM as
/// persistent memory completes the workload, never touches the storage
/// device, and beats even the PMFS file-system path on overhead.
#[test]
fn nvram_backend_works_and_beats_pmfs_files() {
    let w = contended_workload(14);
    let fs_nvm = small_cluster(PreemptionPolicy::Checkpoint, MediaKind::Nvm).run(&w);
    let nvram = small_cluster(PreemptionPolicy::Checkpoint, MediaKind::Nvm)
        .with_nvram(cbp_checkpoint::NvramSpec::default())
        .run(&w);
    assert_eq!(nvram.metrics.jobs_finished, w.job_count() as u64);
    assert!(nvram.metrics.checkpoints > 0, "NVRAM runs must suspend");
    assert!(nvram.metrics.restores > 0);
    // Mirrors are node-local: every restore is local.
    assert_eq!(nvram.metrics.remote_restores, 0);
    // No file-system image traffic: the storage device never gets used.
    assert_eq!(nvram.metrics.io_overhead_fraction, 0.0);
    // Memory-path overhead undercuts the PMFS file-system path.
    let overhead =
        |m: &cbp_core::RunMetrics| m.dump_overhead_cpu_hours + m.restore_overhead_cpu_hours;
    assert!(
        overhead(&nvram.metrics) < overhead(&fs_nvm.metrics),
        "nvram {} vs pmfs-files {}",
        overhead(&nvram.metrics),
        overhead(&fs_nvm.metrics)
    );
}

/// Response times per band are populated and energy is non-trivial.
#[test]
fn metrics_are_populated() {
    let report = run(PreemptionPolicy::Adaptive, MediaKind::Nvm, 12);
    let m = &report.metrics;
    assert!(m.energy_kwh > 0.0);
    assert!(m.makespan_secs > 0.0);
    for band in [PriorityBand::Free, PriorityBand::Middle] {
        assert!(m.mean_response(band) > 0.0, "band {band} has no responses");
    }
    assert!(m.mean_response_overall() > 0.0);
    assert!(m.io_overhead_fraction >= 0.0 && m.io_overhead_fraction <= 1.0);
    assert!(m.storage_peak_fraction >= 0.0 && m.storage_peak_fraction <= 1.0);
}
