//! Edge cases: degenerate workloads and configurations must not wedge or
//! panic the scheduler.

use cbp_cluster::Resources;
use cbp_core::{PreemptionPolicy, SimConfig};
use cbp_simkit::units::ByteSize;
use cbp_simkit::{SimDuration, SimTime};
use cbp_storage::{MediaKind, MediaSpec};
use cbp_workload::{JobId, JobSpec, LatencyClass, Priority, TaskId, TaskSpec, Workload};

fn job(id: u64, submit: u64, prio: u8, tasks: Vec<TaskSpec>) -> JobSpec {
    JobSpec {
        id: JobId(id),
        submit: SimTime::from_secs(submit),
        priority: Priority::new(prio),
        latency: LatencyClass::new(0),
        tasks,
    }
}

fn task(id: u64, index: u32, cores: u64, gb: u64, secs: u64) -> TaskSpec {
    TaskSpec {
        id: TaskId {
            job: JobId(id),
            index,
        },
        resources: Resources::new_cores(cores, ByteSize::from_gb(gb)),
        duration: SimDuration::from_secs(secs),
        dirty_rate_per_sec: 0.002,
    }
}

fn one_node(policy: PreemptionPolicy) -> SimConfig {
    SimConfig::trace_sim(policy, MediaKind::Ssd)
        .with_nodes(1)
        .with_node_resources(Resources::new_cores(4, ByteSize::from_gb(8)))
}

#[test]
fn empty_workload_finishes_immediately() {
    let w = Workload::new(vec![]);
    for policy in PreemptionPolicy::ALL {
        let r = one_node(policy).run(&w);
        assert_eq!(r.metrics.jobs_finished, 0);
        assert_eq!(r.metrics.makespan_secs, 0.0);
        assert_eq!(r.metrics.energy_kwh, 0.0);
    }
}

#[test]
fn oversized_task_is_clamped_to_node() {
    // 16 cores / 64 GB demand on a 4-core / 8 GB node: clamped, still runs.
    let w = Workload::new(vec![job(0, 0, 0, vec![task(0, 0, 16, 64, 60)])]);
    let r = one_node(PreemptionPolicy::Kill).run(&w);
    assert_eq!(r.metrics.tasks_finished, 1);
    assert!((r.metrics.makespan_secs - 60.0).abs() < 1.0);
}

#[test]
fn equal_priorities_never_preempt_each_other() {
    // Two 4-core jobs at the same priority on one 4-core node: strict FIFO,
    // zero preemptions, makespan = sum of durations.
    let w = Workload::new(vec![
        job(0, 0, 5, vec![task(0, 0, 4, 2, 100)]),
        job(1, 1, 5, vec![task(1, 0, 4, 2, 100)]),
    ]);
    let r = one_node(PreemptionPolicy::Adaptive).run(&w);
    assert_eq!(r.metrics.preemptions, 0);
    assert!((r.metrics.makespan_secs - 200.0).abs() < 1.0);
}

#[test]
fn preemption_chain_across_three_priorities() {
    // p0 running; p5 preempts it; p9 preempts p5; all finish.
    let w = Workload::new(vec![
        job(0, 0, 0, vec![task(0, 0, 4, 2, 300)]),
        job(1, 30, 5, vec![task(1, 0, 4, 2, 300)]),
        job(2, 60, 9, vec![task(2, 0, 4, 2, 300)]),
    ]);
    let r = one_node(PreemptionPolicy::Checkpoint).run(&w);
    assert_eq!(r.metrics.jobs_finished, 3);
    assert!(r.metrics.checkpoints >= 2, "both lower tasks suspended");
    // Highest priority job is barely disturbed (one dump's delay).
    let high = r
        .metrics
        .mean_response(cbp_workload::PriorityBand::Production);
    assert!(high < 400.0, "p9 response {high}");
}

#[test]
fn very_fast_tasks_with_slow_media() {
    // 1-second tasks on HDD: adaptive must kill (progress << dump cost)
    // rather than queueing 60 s dumps.
    let tasks: Vec<TaskSpec> = (0..8).map(|i| task(0, i, 1, 2, 1)).collect();
    let w = Workload::new(vec![
        job(0, 0, 0, tasks),
        job(1, 0, 9, vec![task(1, 0, 4, 4, 10)]),
    ]);
    let r = one_node(PreemptionPolicy::Adaptive)
        .with_media(MediaSpec::hdd())
        .run(&w);
    assert_eq!(r.metrics.jobs_finished, 2);
    assert_eq!(
        r.metrics.checkpoints, 0,
        "1-second-old tasks must never be worth a 60s dump"
    );
}

#[test]
fn single_task_workload_under_failures() {
    let w = Workload::new(vec![job(0, 0, 0, vec![task(0, 0, 1, 1, 600)])]);
    let r = one_node(PreemptionPolicy::Checkpoint)
        .with_failures(SimDuration::from_secs(200), SimDuration::from_secs(50))
        .run(&w);
    // The task is evicted by failures repeatedly but eventually completes.
    assert_eq!(r.metrics.tasks_finished, 1);
    assert!(r.metrics.failure_evictions > 0);
    assert!(r.metrics.makespan_secs >= 600.0);
}

#[test]
fn zero_dirty_rate_gives_free_incremental_dumps() {
    // A read-only task: after the first dump, subsequent incrementals are
    // almost instant even on HDD.
    let mut spec = task(0, 0, 4, 4, 600);
    spec.dirty_rate_per_sec = 0.0;
    let w = Workload::new(vec![
        job(0, 0, 0, vec![spec]),
        job(1, 60, 9, vec![task(1, 0, 4, 2, 30)]),
        job(2, 300, 9, vec![task(2, 0, 4, 2, 30)]),
    ]);
    let r = one_node(PreemptionPolicy::Checkpoint)
        .with_media(MediaSpec::hdd())
        .run(&w);
    assert_eq!(r.metrics.jobs_finished, 3);
    assert!(r.metrics.incremental_checkpoints >= 1);
}
