//! End-to-end telemetry determinism: the JSONL trace, the Chrome trace,
//! the time series and the metrics registry must be byte-identical across
//! runs with the same seed, and structurally valid.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use cbp_core::{ClusterSim, PreemptionPolicy, RunReport, SimConfig};
use cbp_simkit::SimDuration;
use cbp_storage::MediaKind;
use cbp_telemetry::{json, ChromeTraceTracer, JsonlTracer, Tracer};
use cbp_workload::google::GoogleTraceConfig;
use cbp_workload::Workload;

/// A `Write` sink whose buffer outlives the `Box<dyn Tracer>` that owns
/// the writer, so tests can inspect what the simulator wrote.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.0.borrow_mut())
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn workload() -> Workload {
    GoogleTraceConfig::small(60.0).generate(7)
}

fn config() -> SimConfig {
    SimConfig::trace_sim(PreemptionPolicy::Adaptive, MediaKind::Ssd).with_nodes(4)
}

fn traced_run(tracer: Box<dyn Tracer>, sample: bool) -> RunReport {
    let mut sim = ClusterSim::new(config(), workload());
    sim.set_tracer(tracer);
    if sample {
        sim.enable_sampling(SimDuration::from_secs(120));
    }
    sim.run()
}

#[test]
fn jsonl_trace_is_byte_stable_and_valid() {
    let run = || {
        let buf = SharedBuf::default();
        traced_run(Box::new(JsonlTracer::new(buf.clone())), false);
        buf.take()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "an adaptive run must emit trace records");
    assert_eq!(a, b, "same seed must produce a byte-identical JSONL trace");

    let text = String::from_utf8(a).expect("trace is UTF-8");
    assert_eq!(
        text.lines().next(),
        Some(cbp_telemetry::schema_header().as_str()),
        "trace must open with the schema header line"
    );
    let mut last_t = 0u64;
    let mut names = std::collections::BTreeSet::new();
    for line in text.lines().skip(1) {
        assert!(json::is_valid(line), "invalid JSONL line: {line}");
        // Fixed field order: every record line opens with the timestamp.
        assert!(
            line.starts_with("{\"t_us\":"),
            "line must open with t_us: {line}"
        );
        let t: u64 = line["{\"t_us\":".len()..]
            .split(',')
            .next()
            .unwrap()
            .parse()
            .expect("integer timestamp");
        assert!(t >= last_t, "timestamps must be monotonic");
        last_t = t;
        let name = line
            .split("\"event\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("event field");
        names.insert(name.to_string());
    }
    for expected in ["task_submit", "task_schedule", "task_finish", "queue_depth"] {
        assert!(names.contains(expected), "missing {expected} in {names:?}");
    }
}

#[test]
fn chrome_trace_is_one_valid_json_value() {
    let buf = SharedBuf::default();
    traced_run(Box::new(ChromeTraceTracer::new(buf.clone())), false);
    let text = String::from_utf8(buf.take()).expect("trace is UTF-8");
    assert!(
        json::is_valid(text.trim()),
        "ChromeTraceTracer output must be a single valid JSON value after finish()"
    );
    assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(text.contains("\"thread_name\""), "nodes are named threads");
}

#[test]
fn timeseries_and_registry_are_deterministic() {
    let run = || {
        let buf = SharedBuf::default();
        let report = traced_run(Box::new(JsonlTracer::new(buf.clone())), true);
        (report, buf.take())
    };
    let (ra, ta) = run();
    let (rb, tb) = run();
    assert_eq!(ta, tb);
    assert_eq!(
        ra.telemetry.registry.to_json(),
        rb.telemetry.registry.to_json(),
        "registry snapshots must be byte-stable per seed"
    );

    let series = ra.telemetry.timeseries.as_ref().expect("sampling enabled");
    assert!(series.len() > 1, "run spans multiple sampling intervals");
    let ts = series.timestamps();
    for pair in ts.windows(2) {
        assert_eq!(pair[1] - pair[0], 120_000_000, "exact 120s spacing in µs");
    }
    for key in [
        "utilization",
        "pending_total",
        "pending_free",
        "pending_middle",
        "pending_production",
        "ckpt_used_frac_mean",
        "dev_busy_frac_mean",
    ] {
        let col = series
            .scalar(key)
            .unwrap_or_else(|| panic!("missing scalar {key}"));
        assert_eq!(col.len(), series.len());
    }
    for key in ["ckpt_used_frac", "dev_busy_frac"] {
        let col = series
            .per_node(key)
            .unwrap_or_else(|| panic!("missing per-node {key}"));
        assert_eq!(col.len(), series.len());
        assert!(col.iter().all(|row| row.len() == 4), "4 nodes per sample");
    }
    let json_out = series.to_json();
    assert!(json::is_valid(&json_out), "time-series JSON must be valid");
    assert_eq!(json_out, rb.telemetry.timeseries.unwrap().to_json());
}

#[test]
fn registry_mirrors_run_metrics() {
    let report = traced_run(Box::new(cbp_telemetry::NullTracer), false);
    let reg = &report.telemetry.registry;
    let m = &report.metrics;
    assert_eq!(reg.counter("scheduler.kills"), Some(m.kills));
    assert_eq!(reg.counter("scheduler.checkpoints"), Some(m.checkpoints));
    assert_eq!(reg.counter("scheduler.restores"), Some(m.restores));
    assert_eq!(
        reg.counter("scheduler.tasks_finished"),
        Some(m.tasks_finished)
    );
    assert_eq!(
        reg.counter("scheduler.jobs_finished"),
        Some(m.jobs_finished)
    );
    assert_eq!(
        reg.counter("engine.events"),
        Some(report.telemetry.engine_events)
    );
    assert!(report.telemetry.engine_events > 0);
    assert!(
        reg.gauge("scheduler.makespan_secs").unwrap() > 0.0,
        "makespan gauge present and positive"
    );
    // Wall-clock throughput is intentionally NOT in the registry (it would
    // break byte-stability); it lives on the TelemetryReport.
    assert!(reg.counter("engine.events_per_sec").is_none());
    assert!(report.telemetry.engine_wall_secs >= 0.0);
}

#[test]
fn untraced_run_report_has_empty_timeseries() {
    let report = config().run(&workload());
    assert!(report.telemetry.timeseries.is_none());
    assert!(report.telemetry.engine_events > 0);
}
