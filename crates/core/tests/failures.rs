//! Node-failure injection and queue-discipline behaviour.

use cbp_core::{PreemptionPolicy, QueueDiscipline, SimConfig};
use cbp_simkit::SimDuration;
use cbp_storage::MediaKind;
use cbp_workload::google::GoogleTraceConfig;
use cbp_workload::Workload;

fn workload(seed: u64) -> Workload {
    GoogleTraceConfig::small(200.0).generate(seed)
}

fn flaky_cluster(policy: PreemptionPolicy) -> SimConfig {
    SimConfig::trace_sim(policy, MediaKind::Ssd)
        .with_nodes(6)
        // Each node fails roughly every 20 simulated minutes and stays
        // down for 2 — aggressive, to exercise the paths hard.
        .with_failures(SimDuration::from_secs(1_200), SimDuration::from_secs(120))
}

#[test]
fn workload_survives_failures_under_every_policy() {
    let w = workload(1);
    for policy in PreemptionPolicy::ALL {
        let report = flaky_cluster(policy).run(&w);
        assert_eq!(
            report.metrics.jobs_finished,
            w.job_count() as u64,
            "{policy}: jobs lost to failures"
        );
        assert!(
            report.metrics.failure_evictions > 0,
            "{policy}: failures must actually evict work"
        );
    }
}

#[test]
fn failures_are_deterministic() {
    let w = workload(2);
    let a = flaky_cluster(PreemptionPolicy::Adaptive).run(&w);
    let b = flaky_cluster(PreemptionPolicy::Adaptive).run(&w);
    assert_eq!(a.metrics.failure_evictions, b.metrics.failure_evictions);
    assert!((a.metrics.makespan_secs - b.metrics.makespan_secs).abs() < 1e-9);
}

/// HDFS replication protects checkpoint images from node failures; the
/// local-FS configuration loses them.
#[test]
fn dfs_replication_protects_images() {
    let w = workload(3);
    let mut with_dfs = flaky_cluster(PreemptionPolicy::Checkpoint);
    with_dfs.via_dfs = true;
    let dfs_report = with_dfs.run(&w);
    assert_eq!(
        dfs_report.metrics.images_lost_to_failures, 0,
        "HDFS-replicated images must survive node failures"
    );

    let mut local_only = flaky_cluster(PreemptionPolicy::Checkpoint);
    local_only.via_dfs = false;
    let local_report = local_only.run(&w);
    // Image loss under local-FS requires a failure to hit a node holding
    // images — overwhelmingly likely at this failure rate, but the real
    // assertion is that both runs still finish everything.
    assert_eq!(local_report.metrics.jobs_finished, w.job_count() as u64);
}

#[test]
fn failure_waste_is_accounted() {
    let w = workload(4);
    let calm = SimConfig::trace_sim(PreemptionPolicy::Wait, MediaKind::Ssd).with_nodes(6);
    let calm_report = calm.run(&w);
    assert_eq!(calm_report.metrics.failure_evictions, 0);
    assert_eq!(calm_report.metrics.kill_lost_cpu_hours, 0.0);

    let flaky = flaky_cluster(PreemptionPolicy::Wait).run(&w);
    // Wait never preempts, so all lost progress comes from failures.
    assert_eq!(flaky.metrics.preemptions, 0);
    assert!(flaky.metrics.failure_evictions > 0);
    assert!(flaky.metrics.kill_lost_cpu_hours > 0.0);
}

/// Fair intra-priority scheduling interleaves jobs: the mean response of
/// small jobs improves relative to strict FIFO when a huge job is in front.
#[test]
fn fair_discipline_helps_small_jobs() {
    use cbp_cluster::Resources;
    use cbp_simkit::units::ByteSize;
    use cbp_simkit::SimTime;
    use cbp_workload::{JobId, JobSpec, LatencyClass, Priority, TaskId, TaskSpec};

    // One 60-task job followed by five 2-task jobs, same priority, on a
    // tiny cluster.
    let task = |job: u64, index: u32| TaskSpec {
        id: TaskId {
            job: JobId(job),
            index,
        },
        resources: Resources::new_cores(1, ByteSize::from_gb(1)),
        duration: SimDuration::from_secs(300),
        dirty_rate_per_sec: 0.002,
    };
    let mut jobs = vec![JobSpec {
        id: JobId(0),
        submit: SimTime::ZERO,
        priority: Priority::new(0),
        latency: LatencyClass::new(0),
        tasks: (0..60).map(|i| task(0, i)).collect(),
    }];
    for j in 1..=5 {
        jobs.push(JobSpec {
            id: JobId(j),
            submit: SimTime::from_secs(10),
            priority: Priority::new(0),
            latency: LatencyClass::new(0),
            tasks: (0..2).map(|i| task(j, i)).collect(),
        });
    }
    let w = Workload::new(jobs);

    let base = SimConfig::trace_sim(PreemptionPolicy::Kill, MediaKind::Ssd)
        .with_nodes(1)
        .with_node_resources(Resources::new_cores(8, ByteSize::from_gb(64)));
    let fifo = base
        .clone()
        .with_queue_discipline(QueueDiscipline::Fifo)
        .run(&w);
    let fair = base.with_queue_discipline(QueueDiscipline::Fair).run(&w);

    // Under FIFO the five small jobs wait behind all 60 tasks of job 0;
    // under Fair they interleave and finish far earlier. Mean response over
    // all jobs is dominated by the small jobs (5 of 6).
    assert!(
        fair.metrics.mean_response_overall() < fifo.metrics.mean_response_overall() * 0.7,
        "fair {} vs fifo {}",
        fair.metrics.mean_response_overall(),
        fifo.metrics.mean_response_overall()
    );
    // Throughput is conserved either way.
    assert_eq!(fair.metrics.tasks_finished, fifo.metrics.tasks_finished);
}

/// Regression for the drain guard in `schedule_next_failure`: once the
/// workload has drained, the per-node fail/recover chain must stop
/// regenerating (each node fires at most the one failure already queued
/// at drain time). Without the guard the chain self-perpetuates and the
/// run never terminates — the comment in `sim.rs` claims the behaviour,
/// this pins it.
#[test]
fn failure_injection_stops_after_drain() {
    use std::cell::RefCell;
    use std::rc::Rc;

    use cbp_core::ClusterSim;
    use cbp_telemetry::{JsonlReader, JsonlTracer, TraceRecord};

    #[derive(Clone, Default)]
    struct SharedBuf(Rc<RefCell<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let w = workload(5);
    let buf = SharedBuf::default();
    let mut sim = ClusterSim::new(flaky_cluster(PreemptionPolicy::Adaptive), w.clone());
    sim.set_tracer(Box::new(JsonlTracer::new(buf.clone())));
    let report = sim.run();
    assert_eq!(report.metrics.jobs_finished, w.job_count() as u64);

    let bytes = buf.0.borrow().clone();
    let mut last_finish = 0u64;
    let mut fail_times: Vec<u64> = Vec::new();
    for item in JsonlReader::new(bytes.as_slice()).unwrap() {
        let (t, rec) = item.unwrap();
        match rec {
            TraceRecord::TaskFinish { .. } => last_finish = last_finish.max(t),
            TraceRecord::NodeFail { .. } => fail_times.push(t),
            _ => {}
        }
    }
    assert!(!fail_times.is_empty(), "scenario must inject failures");
    let after_drain = fail_times.iter().filter(|&&t| t > last_finish).count();
    assert!(
        after_drain <= 6, // one in-flight failure per node at most
        "{after_drain} node failures fired after the last task finished \
         (chain kept regenerating past the drain)"
    );
}
