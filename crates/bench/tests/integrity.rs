//! Capstone invariants for cbp-integrity — chunked resumable dump/restore
//! with end-to-end checkpoint integrity — exercised on BOTH simulators:
//!
//! 1. **Manifest round-trip** — [`ChunkManifest`] construction, serde
//!    round-trip, corrupt→repair cycles and the durable-prefix arithmetic
//!    hold for arbitrary image sizes and chunk sizes (proptest).
//! 2. **Determinism** — the same `(simulation seed, fault plan)` pair
//!    produces a byte-identical JSONL trace with resume enabled AND with
//!    the `--no-resume` ablation, so integrity runs are exactly
//!    replayable in both modes.
//! 3. **Resume pays for itself** — under the heavy fault profile the
//!    resume+prefix-restore machinery engages (resumed dumps, replica
//!    re-fetches, chain truncations) and its retry overhead and scratch
//!    restarts are no worse than the `--no-resume` ablation's.

use std::cell::RefCell;
use std::rc::Rc;

use cbp_checkpoint::{ChunkManifest, ImageId};
use cbp_core::{ClusterSim, PreemptionPolicy, RunReport, SimConfig};
use cbp_faults::FaultSpec;
use cbp_simkit::units::ByteSize;
use cbp_storage::MediaKind;
use cbp_workload::facebook::FacebookConfig;
use cbp_workload::google::GoogleTraceConfig;
use cbp_workload::Workload;
use cbp_yarn::{YarnConfig, YarnReport, YarnSim};
use proptest::prelude::*;

/// A `Write` sink whose buffer outlives the boxed tracer.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The heavy chaos profile with chunked resume on or off (the
/// `--no-resume` ablation flips the same bit).
fn heavy(plan_seed: u64, resume: bool) -> FaultSpec {
    FaultSpec {
        seed: plan_seed,
        resume,
        ..FaultSpec::heavy()
    }
}

/// Runs the trace-driven simulator with a JSONL tracer and returns the
/// report plus the exact bytes written.
fn traced_cluster(cfg: SimConfig, workload: &Workload) -> (RunReport, Vec<u8>) {
    let buf = SharedBuf::default();
    let mut sim = ClusterSim::new(cfg, workload.clone());
    sim.set_tracer(Box::new(cbp_telemetry::JsonlTracer::new(buf.clone())));
    let report = sim.run();
    let bytes = buf.0.borrow().clone();
    (report, bytes)
}

/// Runs the YARN protocol simulator with a JSONL tracer.
fn traced_yarn(cfg: YarnConfig, workload: &Workload) -> (YarnReport, Vec<u8>) {
    let buf = SharedBuf::default();
    let mut sim = YarnSim::new(cfg, workload.clone());
    sim.set_tracer(Box::new(cbp_telemetry::JsonlTracer::new(buf.clone())));
    let report = sim.run();
    let bytes = buf.0.borrow().clone();
    (report, bytes)
}

/// Counts JSONL trace lines of the given record kind.
fn kind_count(bytes: &[u8], kind: &str) -> usize {
    let needle = format!("\"{kind}\"");
    String::from_utf8(bytes.to_vec())
        .expect("trace is UTF-8")
        .lines()
        .filter(|l| l.contains(&needle))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ChunkManifest round-trip: shape arithmetic, serde, corrupt→repair.
    #[test]
    fn chunk_manifest_round_trip(
        image in 0u64..u64::MAX,
        size in 1u64..4_000_000_000,
        chunk_mb in 1u64..256,
        bad in proptest::collection::vec(0u64..10_000, 0..8),
        frac in 0.0f64..1.0,
    ) {
        let chunk_bytes = chunk_mb * 1_000_000;
        let id = ImageId(image);
        let mut m = ChunkManifest::build(id, ByteSize::from_bytes(size), chunk_bytes);

        // Shape: ceil-split with a shorter final chunk, nothing lost.
        prop_assert_eq!(m.chunk_count(), size.div_ceil(chunk_bytes));
        prop_assert_eq!(m.total_len().as_u64(), size);
        prop_assert!(m.is_clean());
        prop_assert!(m.verify(id));
        prop_assert!(!m.verify(ImageId(image ^ 1)), "checksums keyed by image id");

        // Serde round-trip is lossless.
        let json = serde_json::to_string(&m).expect("serialize");
        let back: ChunkManifest = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &m);

        // Durable-prefix arithmetic: floor to a chunk boundary, bounded.
        let durable = m.durable_chunks(frac);
        prop_assert!(durable <= m.chunk_count());
        prop_assert!(m.durable_bytes(frac).as_u64() <= size);
        prop_assert_eq!(m.durable_chunks(1.0), m.chunk_count());
        prop_assert_eq!(m.durable_chunks(0.0), 0);

        // Corrupt → repair returns the manifest to its built state.
        let candidates: Vec<u64> = bad.iter().map(|b| b % m.chunk_count()).collect();
        let marked: Vec<u64> = candidates
            .into_iter()
            .filter(|&c| m.mark_corrupt(c))
            .collect();
        prop_assert_eq!(m.is_clean(), marked.is_empty());
        let mut flagged = m.corrupt_chunks();
        flagged.sort_unstable();
        let mut expect = marked.clone();
        expect.sort_unstable();
        prop_assert_eq!(flagged, expect);
        // Detected corruption never invalidates the manifest itself.
        prop_assert!(m.verify(id));
        for c in &marked {
            prop_assert!(m.repair(*c));
            prop_assert!(!m.repair(*c), "repair of a clean chunk is a no-op");
        }
        prop_assert!(m.is_clean());
        prop_assert_eq!(&m, &ChunkManifest::build(id, ByteSize::from_bytes(size), chunk_bytes));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Both simulators replay byte-identically for the same
    /// `(seed, plan)` with resume ON and with the `--no-resume`
    /// ablation — the chunk/corruption/refetch draws are stateless.
    #[test]
    fn resume_on_and_off_replay_byte_identically(
        seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        resume_bit in 0u8..2,
    ) {
        let resume = resume_bit == 1;
        let w = GoogleTraceConfig::small(80.0).generate(seed);
        let ccfg = || {
            SimConfig::trace_sim(PreemptionPolicy::Checkpoint, MediaKind::Ssd)
                .with_nodes(5)
                .with_faults(heavy(plan_seed, resume))
        };
        let (report, bytes_a) = traced_cluster(ccfg(), &w);
        prop_assert_eq!(report.metrics.jobs_finished, w.job_count() as u64);
        let (_, bytes_b) = traced_cluster(ccfg(), &w);
        prop_assert_eq!(bytes_a, bytes_b, "cluster: integrity replay must be byte-identical");

        let fw = FacebookConfig {
            jobs: 10,
            total_tasks: 240,
            giant_job_tasks: 60,
            ..Default::default()
        }
        .generate(seed);
        let ycfg = || {
            let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Adaptive, MediaKind::Ssd);
            cfg.nodes = 2;
            cfg.with_faults(heavy(plan_seed, resume))
        };
        let (report, bytes_a) = traced_yarn(ycfg(), &fw);
        prop_assert_eq!(report.jobs_finished, fw.job_count() as u64);
        let (_, bytes_b) = traced_yarn(ycfg(), &fw);
        prop_assert_eq!(bytes_a, bytes_b, "yarn: integrity replay must be byte-identical");
    }
}

/// Heavy faults on the cluster simulator: the resume machinery engages
/// (resumed dumps with real byte credit, corrupt restores recovered by
/// replica re-fetch or prefix truncation), and — summed over several
/// seeds so single-run scheduling noise washes out — its retry overhead
/// and scratch restarts are no worse than the `--no-resume` ablation,
/// which rewrites every failed dump from byte zero and treats every
/// corrupt image as a total loss.
#[test]
fn cluster_heavy_faults_resume_no_worse_than_ablation() {
    let base = || SimConfig::trace_sim(PreemptionPolicy::Checkpoint, MediaKind::Ssd).with_nodes(5);
    // Whether a draw is contended enough to checkpoint is seed-dependent;
    // probe (deterministically) for draws with real checkpoint traffic.
    let contended: Vec<Workload> = (5..40)
        .map(|seed| GoogleTraceConfig::small(120.0).generate(seed))
        .filter(|w| {
            let calm = base().run(w);
            calm.metrics.checkpoints >= 10 && calm.metrics.restores >= 10
        })
        .take(3)
        .collect();
    assert_eq!(contended.len(), 3, "3 contended draws within 35 seeds");

    let mut on_retry = 0.0;
    let mut off_retry = 0.0;
    let (mut on_scratch, mut off_scratch) = (0u64, 0u64);
    let (mut resumed, mut resumed_bytes, mut repairs) = (0u64, 0u64, 0u64);
    for w in &contended {
        let (on, bytes_on) = traced_cluster(base().with_faults(heavy(7, true)), w);
        let (off, bytes_off) = traced_cluster(base().with_faults(heavy(7, false)), w);
        // Liveness in both modes.
        assert_eq!(on.metrics.jobs_finished, w.job_count() as u64);
        assert_eq!(off.metrics.jobs_finished, w.job_count() as u64);
        on_retry += on.metrics.retry_overhead_cpu_hours;
        off_retry += off.metrics.retry_overhead_cpu_hours;
        on_scratch += on.metrics.scratch_restarts;
        off_scratch += off.metrics.scratch_restarts;
        resumed += on.metrics.resumed_dumps;
        resumed_bytes += on.metrics.resumed_bytes;
        repairs += on.metrics.chunk_refetches + on.metrics.chain_truncations;
        // The ablation must not touch the integrity machinery at all.
        let m = &off.metrics;
        assert_eq!(
            (m.resumed_dumps, m.chunk_refetches, m.chain_truncations),
            (0, 0, 0),
            "--no-resume must disable chunked resume entirely"
        );
        for kind in ["resume_dump", "chunk_refetch", "chain_truncate"] {
            assert_eq!(kind_count(&bytes_off, kind), 0, "{kind} in ablation trace");
        }
        // The resumed run's trace records its recovery work.
        assert_eq!(
            kind_count(&bytes_on, "resume_dump") as u64,
            on.metrics.resumed_dumps
        );
        assert_eq!(
            kind_count(&bytes_on, "chain_truncate") as u64,
            on.metrics.chain_truncations
        );
    }
    assert!(resumed > 0, "heavy faults must resume some dumps");
    assert!(resumed_bytes > 0, "resumed dumps must credit durable bytes");
    assert!(
        repairs > 0,
        "corrupt restores must recover via refetch or prefix truncation"
    );
    assert!(
        on_retry <= off_retry,
        "resume retry overhead {on_retry} must not exceed ablation {off_retry}"
    );
    assert!(
        on_scratch <= off_scratch,
        "resume scratch restarts {on_scratch} must not exceed ablation {off_scratch}"
    );
}

/// Heavy faults on the YARN simulator: resumed dumps engage with real
/// byte credit, corrupt restores recover via replica re-fetch, prefix
/// truncation or (last resort) an in-place scratch restart, every task
/// still finishes, and the `--no-resume` ablation keeps the whole
/// integrity ledger at zero.
#[test]
fn yarn_heavy_faults_engage_integrity_machinery() {
    let workload = |seed: u64| {
        FacebookConfig {
            jobs: 12,
            total_tasks: 300,
            giant_job_tasks: 80,
            ..Default::default()
        }
        .generate(seed)
    };
    let cfg = |resume: bool| {
        let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Adaptive, MediaKind::Hdd);
        cfg.nodes = 2;
        cfg.with_faults(heavy(7, resume))
    };

    let (mut resumed, mut resumed_bytes, mut recovered) = (0u64, 0u64, 0u64);
    for seed in 3..9 {
        let fw = workload(seed);
        let (on, bytes_on) = traced_yarn(cfg(true), &fw);
        assert_eq!(on.jobs_finished, fw.job_count() as u64);
        assert_eq!(on.tasks_finished, fw.task_count() as u64);
        resumed += on.resumed_dumps;
        resumed_bytes += on.resumed_bytes;
        recovered += on.chunk_refetches + on.chain_truncations + on.integrity_scratch_restarts;
        assert_eq!(
            kind_count(&bytes_on, "resume_dump") as u64,
            on.resumed_dumps
        );

        let (off, bytes_off) = traced_yarn(cfg(false), &fw);
        assert_eq!(off.jobs_finished, fw.job_count() as u64);
        assert_eq!(
            (
                off.resumed_dumps,
                off.chunk_refetches,
                off.chain_truncations,
                off.integrity_scratch_restarts
            ),
            (0, 0, 0, 0),
            "--no-resume must keep the yarn integrity ledger at zero"
        );
        for kind in ["resume_dump", "chunk_refetch", "chain_truncate"] {
            assert_eq!(kind_count(&bytes_off, kind), 0, "{kind} in ablation trace");
        }
    }
    assert!(resumed > 0, "heavy faults must resume some yarn dumps");
    assert!(
        resumed_bytes > 0,
        "resumed yarn dumps must credit durable bytes"
    );
    assert!(
        recovered > 0,
        "corrupt yarn restores must engage refetch / truncate / scratch"
    );
}
