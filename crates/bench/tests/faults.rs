//! Capstone invariants for the `cbp-faults` subsystem, proptested on
//! BOTH simulators across randomized fault plans:
//!
//! 1. **Liveness** — under dump/restore failures, corrupted images,
//!    device stall windows, AM unresponsiveness and node+datanode loss,
//!    every submitted task still finishes (the retry / fallback /
//!    escalation policies never strand work).
//! 2. **Determinism** — the same `(simulation seed, fault plan)` pair
//!    produces a byte-identical JSONL trace, so chaos runs are exactly
//!    replayable.
//! 3. **Inertness** — attaching an all-zero plan is observationally
//!    identical to running without one (the oracle draws from its own
//!    hash, never the simulator's RNG stream).

use std::cell::RefCell;
use std::rc::Rc;

use cbp_core::{ClusterSim, PreemptionPolicy, RunReport, SimConfig};
use cbp_faults::{FaultSpec, StallSpec};
use cbp_simkit::SimDuration;
use cbp_storage::MediaKind;
use cbp_workload::facebook::FacebookConfig;
use cbp_workload::google::GoogleTraceConfig;
use cbp_workload::Workload;
use cbp_yarn::{YarnConfig, YarnReport, YarnSim};
use proptest::prelude::*;

/// A `Write` sink whose buffer outlives the boxed tracer.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Builds the randomized fault plan for a proptest case. `class` selects
/// the regime: 0 = no plan, 1 = light chaos, 2 = heavy chaos, 3 = a
/// custom plan skewed toward restore failures + corruption (the regime
/// where checkpoint value inverts).
fn plan_for(class: u8, plan_seed: u64) -> Option<FaultSpec> {
    match class % 4 {
        0 => None,
        1 => Some(FaultSpec {
            seed: plan_seed,
            ..FaultSpec::light()
        }),
        2 => Some(FaultSpec {
            seed: plan_seed,
            ..FaultSpec::heavy()
        }),
        _ => Some(FaultSpec {
            seed: plan_seed,
            dump_fail_prob: 0.15,
            restore_fail_prob: 0.35,
            corrupt_image_prob: 0.20,
            am_unresponsive_prob: 0.10,
            stall: Some(StallSpec {
                prob: 0.15,
                slowdown: 6.0,
                window: SimDuration::from_secs(240),
            }),
            max_dump_retries: 1,
            max_restore_retries: 1,
            ..FaultSpec::default()
        }),
    }
}

fn cluster_cfg(
    policy: PreemptionPolicy,
    media: MediaKind,
    nodes: usize,
    failures: bool,
    plan: Option<FaultSpec>,
) -> SimConfig {
    let mut cfg = SimConfig::trace_sim(policy, media).with_nodes(nodes);
    if failures {
        cfg = cfg.with_failures(SimDuration::from_secs(1_500), SimDuration::from_secs(120));
    }
    if let Some(spec) = plan {
        cfg = cfg.with_faults(spec);
    }
    cfg
}

/// Runs the trace-driven simulator with a JSONL tracer and returns the
/// report plus the exact bytes written.
fn traced_cluster(cfg: SimConfig, workload: &Workload) -> (RunReport, Vec<u8>) {
    let buf = SharedBuf::default();
    let mut sim = ClusterSim::new(cfg, workload.clone());
    sim.set_tracer(Box::new(cbp_telemetry::JsonlTracer::new(buf.clone())));
    let report = sim.run();
    let bytes = buf.0.borrow().clone();
    (report, bytes)
}

/// Runs the YARN protocol simulator with a JSONL tracer.
fn traced_yarn(cfg: YarnConfig, workload: &Workload) -> (YarnReport, Vec<u8>) {
    let buf = SharedBuf::default();
    let mut sim = YarnSim::new(cfg, workload.clone());
    sim.set_tracer(Box::new(cbp_telemetry::JsonlTracer::new(buf.clone())));
    let report = sim.run();
    let bytes = buf.0.borrow().clone();
    (report, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ClusterSim: liveness + byte-identical replay under random fault
    /// plans, all policies/media, with node-failure injection layered on
    /// half the cases (exercising datanode loss + re-replication too).
    #[test]
    fn cluster_sim_faults_liveness_and_determinism(
        seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        class in 0u8..4,
        policy_idx in 0usize..PreemptionPolicy::ALL.len(),
        media_idx in 0usize..MediaKind::ALL.len(),
        nodes in 4usize..8,
    ) {
        let workload = GoogleTraceConfig::small(80.0).generate(seed);
        let failures = seed % 2 == 0;
        let cfg = || cluster_cfg(
            PreemptionPolicy::ALL[policy_idx],
            MediaKind::ALL[media_idx],
            nodes,
            failures,
            plan_for(class, plan_seed),
        );

        let (report, bytes_a) = traced_cluster(cfg(), &workload);
        // Liveness: the recovery policies never strand a task.
        prop_assert_eq!(report.metrics.jobs_finished, workload.job_count() as u64);
        prop_assert_eq!(report.metrics.tasks_finished, workload.task_count() as u64);
        // CPU-hour conservation: waste buckets are finite and non-negative.
        let m = &report.metrics;
        prop_assert!(m.wasted_cpu_hours().is_finite() && m.wasted_cpu_hours() >= 0.0);
        prop_assert!(m.useful_cpu_hours > 0.0);

        // Determinism: same (seed, plan) ⇒ byte-identical JSONL trace.
        let (_, bytes_b) = traced_cluster(cfg(), &workload);
        prop_assert_eq!(bytes_a, bytes_b, "same (seed, fault plan) must replay identically");
    }

    /// YarnSim: liveness + byte-identical replay under random fault
    /// plans (NM dump-failure fallback, AM-unresponsiveness escalation).
    #[test]
    fn yarn_sim_faults_liveness_and_determinism(
        seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        class in 0u8..4,
        policy_idx in 0usize..PreemptionPolicy::ALL.len(),
        media_idx in 0usize..MediaKind::ALL.len(),
    ) {
        let workload = FacebookConfig {
            jobs: 10,
            total_tasks: 240,
            giant_job_tasks: 60,
            ..Default::default()
        }
        .generate(seed);
        let cfg = || {
            let mut cfg = YarnConfig::paper_cluster(
                PreemptionPolicy::ALL[policy_idx],
                MediaKind::ALL[media_idx],
            );
            cfg.nodes = 2;
            if seed % 2 == 0 {
                cfg = cfg.with_graceful_timeout(SimDuration::from_secs(120));
            }
            if let Some(spec) = plan_for(class, plan_seed) {
                cfg = cfg.with_faults(spec);
            }
            cfg
        };

        let (report, bytes_a) = traced_yarn(cfg(), &workload);
        prop_assert_eq!(report.jobs_finished, workload.job_count() as u64);
        prop_assert_eq!(report.tasks_finished, workload.task_count() as u64);

        let (_, bytes_b) = traced_yarn(cfg(), &workload);
        prop_assert_eq!(bytes_a, bytes_b, "same (seed, fault plan) must replay identically");
    }
}

/// An inert plan (all probabilities zero) must be observationally
/// identical to running with no plan at all — on both simulators, down
/// to the trace bytes. This pins the "fault decisions never touch the
/// simulator's RNG stream" design rule.
#[test]
fn inert_plan_is_byte_identical_to_no_plan() {
    let w = GoogleTraceConfig::small(80.0).generate(11);
    let base = || {
        SimConfig::trace_sim(PreemptionPolicy::Adaptive, MediaKind::Ssd)
            .with_nodes(5)
            .with_failures(SimDuration::from_secs(1_500), SimDuration::from_secs(120))
    };
    let (_, plain) = traced_cluster(base(), &w);
    let (_, inert) = traced_cluster(base().with_faults(FaultSpec::default()), &w);
    assert_eq!(plain, inert, "cluster: inert plan perturbed the run");

    let fw = FacebookConfig {
        jobs: 10,
        total_tasks: 240,
        giant_job_tasks: 60,
        ..Default::default()
    }
    .generate(11);
    let ycfg = || {
        let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Adaptive, MediaKind::Ssd);
        cfg.nodes = 2;
        cfg
    };
    let (_, plain) = traced_yarn(ycfg(), &fw);
    let (_, inert) = traced_yarn(ycfg().with_faults(FaultSpec::default()), &fw);
    assert_eq!(plain, inert, "yarn: inert plan perturbed the run");
}

/// Heavy chaos visibly engages the recovery machinery on the cluster
/// simulator: retries, fallback kills and scratch restarts all fire, and
/// their cost lands in the waste ledger.
#[test]
fn heavy_chaos_engages_recovery_policies() {
    // Whether a given draw is contended enough to checkpoint is
    // seed-dependent; probe forward (deterministically) for a draw with
    // real checkpoint traffic for the faults to hit.
    let base = || SimConfig::trace_sim(PreemptionPolicy::Checkpoint, MediaKind::Ssd).with_nodes(5);
    let w = (5..25)
        .map(|seed| GoogleTraceConfig::small(120.0).generate(seed))
        .find(|w| {
            let calm = base().run(w);
            calm.metrics.checkpoints >= 10 && calm.metrics.restores >= 10
        })
        .expect("a contended draw within 20 seeds");
    let cfg = base().with_faults(FaultSpec {
        seed: 7,
        ..FaultSpec::heavy()
    });
    let report = cfg.run(&w);
    let m = &report.metrics;
    assert_eq!(m.jobs_finished, w.job_count() as u64);
    assert!(
        m.dump_fail_retries + m.dump_fail_kills > 0,
        "heavy plan must fail some dumps"
    );
    assert!(
        m.restore_fail_retries + m.scratch_restarts > 0,
        "heavy plan must fail some restores"
    );
    assert!(
        m.retry_overhead_cpu_hours > 0.0,
        "failed attempts must be charged as retry overhead"
    );
    assert!(
        m.wasted_cpu_hours() >= m.retry_overhead_cpu_hours,
        "retry overhead is part of the waste ledger"
    );
}
