//! Capstone invariants for the `cbp-faults` subsystem, proptested on
//! BOTH simulators across randomized fault plans:
//!
//! 1. **Liveness** — under dump/restore failures, corrupted images,
//!    device stall windows, AM unresponsiveness and node+datanode loss,
//!    every submitted task still finishes (the retry / fallback /
//!    escalation policies never strand work).
//! 2. **Determinism** — the same `(simulation seed, fault plan)` pair
//!    produces a byte-identical JSONL trace, so chaos runs are exactly
//!    replayable.
//! 3. **Inertness** — attaching an all-zero plan is observationally
//!    identical to running without one (the oracle draws from its own
//!    hash, never the simulator's RNG stream).

use std::cell::RefCell;
use std::rc::Rc;

use cbp_core::{ClusterSim, PreemptionPolicy, RunReport, SimConfig};
use cbp_faults::{BreakerSpec, CrashSpec, FaultSpec, PartitionSpec, StallSpec};
use cbp_simkit::SimDuration;
use cbp_storage::MediaKind;
use cbp_workload::facebook::FacebookConfig;
use cbp_workload::google::GoogleTraceConfig;
use cbp_workload::Workload;
use cbp_yarn::{YarnConfig, YarnReport, YarnSim};
use proptest::prelude::*;

/// A `Write` sink whose buffer outlives the boxed tracer.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Builds the randomized fault plan for a proptest case. `class` selects
/// the regime: 0 = no plan, 1 = light chaos, 2 = heavy chaos, 3 = a
/// custom plan skewed toward restore failures + corruption (the regime
/// where checkpoint value inverts), 4 = the failure-domain chaos profile
/// (heavy faults plus correlated node/rack crashes, rack partitions and
/// the checkpoint-path circuit breaker).
fn plan_for(class: u8, plan_seed: u64) -> Option<FaultSpec> {
    match class % 5 {
        0 => None,
        1 => Some(FaultSpec {
            seed: plan_seed,
            ..FaultSpec::light()
        }),
        2 => Some(FaultSpec {
            seed: plan_seed,
            ..FaultSpec::heavy()
        }),
        4 => Some(FaultSpec {
            seed: plan_seed,
            ..FaultSpec::chaos()
        }),
        _ => Some(FaultSpec {
            seed: plan_seed,
            dump_fail_prob: 0.15,
            restore_fail_prob: 0.35,
            corrupt_image_prob: 0.20,
            am_unresponsive_prob: 0.10,
            stall: Some(StallSpec {
                prob: 0.15,
                slowdown: 6.0,
                window: SimDuration::from_secs(240),
            }),
            max_dump_retries: 1,
            max_restore_retries: 1,
            ..FaultSpec::default()
        }),
    }
}

fn cluster_cfg(
    policy: PreemptionPolicy,
    media: MediaKind,
    nodes: usize,
    failures: bool,
    plan: Option<FaultSpec>,
) -> SimConfig {
    let mut cfg = SimConfig::trace_sim(policy, media).with_nodes(nodes);
    if failures {
        cfg = cfg.with_failures(SimDuration::from_secs(1_500), SimDuration::from_secs(120));
    }
    if let Some(spec) = plan {
        cfg = cfg.with_faults(spec);
    }
    cfg
}

/// Runs the trace-driven simulator with a JSONL tracer and returns the
/// report plus the exact bytes written.
fn traced_cluster(cfg: SimConfig, workload: &Workload) -> (RunReport, Vec<u8>) {
    let buf = SharedBuf::default();
    let mut sim = ClusterSim::new(cfg, workload.clone());
    sim.set_tracer(Box::new(cbp_telemetry::JsonlTracer::new(buf.clone())));
    let report = sim.run();
    let bytes = buf.0.borrow().clone();
    (report, bytes)
}

/// Runs the YARN protocol simulator with a JSONL tracer.
fn traced_yarn(cfg: YarnConfig, workload: &Workload) -> (YarnReport, Vec<u8>) {
    let buf = SharedBuf::default();
    let mut sim = YarnSim::new(cfg, workload.clone());
    sim.set_tracer(Box::new(cbp_telemetry::JsonlTracer::new(buf.clone())));
    let report = sim.run();
    let bytes = buf.0.borrow().clone();
    (report, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ClusterSim: liveness + byte-identical replay under random fault
    /// plans, all policies/media, with node-failure injection layered on
    /// half the cases (exercising datanode loss + re-replication too).
    #[test]
    fn cluster_sim_faults_liveness_and_determinism(
        seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        class in 0u8..5,
        policy_idx in 0usize..PreemptionPolicy::ALL.len(),
        media_idx in 0usize..MediaKind::ALL.len(),
        nodes in 4usize..8,
    ) {
        let workload = GoogleTraceConfig::small(80.0).generate(seed);
        let failures = seed % 2 == 0;
        let cfg = || cluster_cfg(
            PreemptionPolicy::ALL[policy_idx],
            MediaKind::ALL[media_idx],
            nodes,
            failures,
            plan_for(class, plan_seed),
        );

        let (report, bytes_a) = traced_cluster(cfg(), &workload);
        // Liveness: the recovery policies never strand a task.
        prop_assert_eq!(report.metrics.jobs_finished, workload.job_count() as u64);
        prop_assert_eq!(report.metrics.tasks_finished, workload.task_count() as u64);
        // CPU-hour conservation: waste buckets are finite and non-negative.
        let m = &report.metrics;
        prop_assert!(m.wasted_cpu_hours().is_finite() && m.wasted_cpu_hours() >= 0.0);
        prop_assert!(m.useful_cpu_hours > 0.0);

        // Determinism: same (seed, plan) ⇒ byte-identical JSONL trace.
        let (_, bytes_b) = traced_cluster(cfg(), &workload);
        prop_assert_eq!(bytes_a, bytes_b, "same (seed, fault plan) must replay identically");
    }

    /// YarnSim: liveness + byte-identical replay under random fault
    /// plans (NM dump-failure fallback, AM-unresponsiveness escalation).
    #[test]
    fn yarn_sim_faults_liveness_and_determinism(
        seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        class in 0u8..5,
        policy_idx in 0usize..PreemptionPolicy::ALL.len(),
        media_idx in 0usize..MediaKind::ALL.len(),
    ) {
        let workload = FacebookConfig {
            jobs: 10,
            total_tasks: 240,
            giant_job_tasks: 60,
            ..Default::default()
        }
        .generate(seed);
        let cfg = || {
            let mut cfg = YarnConfig::paper_cluster(
                PreemptionPolicy::ALL[policy_idx],
                MediaKind::ALL[media_idx],
            );
            cfg.nodes = 2;
            if seed % 2 == 0 {
                cfg = cfg.with_graceful_timeout(SimDuration::from_secs(120));
            }
            if let Some(spec) = plan_for(class, plan_seed) {
                cfg = cfg.with_faults(spec);
            }
            cfg
        };

        let (report, bytes_a) = traced_yarn(cfg(), &workload);
        prop_assert_eq!(report.jobs_finished, workload.job_count() as u64);
        prop_assert_eq!(report.tasks_finished, workload.task_count() as u64);

        let (_, bytes_b) = traced_yarn(cfg(), &workload);
        prop_assert_eq!(bytes_a, bytes_b, "same (seed, fault plan) must replay identically");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Capstone: liveness under *heavy correlated chaos* — node and rack
    /// crashes, rack partitions and the circuit breaker all active at
    /// once — on BOTH simulators, with byte-identical replay. This is
    /// the strongest liveness statement in the suite: whole failure
    /// domains go dark (taking containers, datanode replicas and image
    /// chains with them) and every submitted task must still finish.
    #[test]
    fn heavy_correlated_chaos_keeps_both_sims_live(
        seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
    ) {
        let spec = FaultSpec {
            seed: plan_seed,
            crash: Some(CrashSpec {
                node_prob: 0.25,
                rack_prob: 0.20,
                downtime: SimDuration::from_secs(240),
                window: SimDuration::from_secs(1_200),
            }),
            partition: Some(PartitionSpec {
                prob: 0.35,
                penalty: 8.0,
                window: SimDuration::from_secs(900),
            }),
            rack_size: 2,
            breaker: Some(BreakerSpec::default()),
            ..FaultSpec::heavy()
        };

        let w = GoogleTraceConfig::small(80.0).generate(seed);
        let ccfg = || cluster_cfg(
            PreemptionPolicy::Adaptive,
            MediaKind::Ssd,
            6,
            seed % 2 == 0,
            Some(spec.clone()),
        );
        let (report, bytes_a) = traced_cluster(ccfg(), &w);
        prop_assert_eq!(report.metrics.jobs_finished, w.job_count() as u64);
        prop_assert_eq!(report.metrics.tasks_finished, w.task_count() as u64);
        let (_, bytes_b) = traced_cluster(ccfg(), &w);
        prop_assert_eq!(bytes_a, bytes_b, "cluster: chaos replay must be byte-identical");

        let fw = FacebookConfig {
            jobs: 8,
            total_tasks: 180,
            giant_job_tasks: 60,
            ..Default::default()
        }
        .generate(seed);
        let ycfg = || {
            let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Adaptive, MediaKind::Ssd);
            cfg.nodes = 4;
            cfg.with_faults(spec.clone())
        };
        let (report, bytes_a) = traced_yarn(ycfg(), &fw);
        prop_assert_eq!(report.jobs_finished, fw.job_count() as u64);
        prop_assert_eq!(report.tasks_finished, fw.task_count() as u64);
        let (_, bytes_b) = traced_yarn(ycfg(), &fw);
        prop_assert_eq!(bytes_a, bytes_b, "yarn: chaos replay must be byte-identical");
    }
}

/// An inert plan (all probabilities zero) must be observationally
/// identical to running with no plan at all — on both simulators, down
/// to the trace bytes. This pins the "fault decisions never touch the
/// simulator's RNG stream" design rule.
#[test]
fn inert_plan_is_byte_identical_to_no_plan() {
    let w = GoogleTraceConfig::small(80.0).generate(11);
    let base = || {
        SimConfig::trace_sim(PreemptionPolicy::Adaptive, MediaKind::Ssd)
            .with_nodes(5)
            .with_failures(SimDuration::from_secs(1_500), SimDuration::from_secs(120))
    };
    let (_, plain) = traced_cluster(base(), &w);
    let (_, inert) = traced_cluster(base().with_faults(FaultSpec::default()), &w);
    assert_eq!(plain, inert, "cluster: inert plan perturbed the run");

    let fw = FacebookConfig {
        jobs: 10,
        total_tasks: 240,
        giant_job_tasks: 60,
        ..Default::default()
    }
    .generate(11);
    let ycfg = || {
        let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Adaptive, MediaKind::Ssd);
        cfg.nodes = 2;
        cfg
    };
    let (_, plain) = traced_yarn(ycfg(), &fw);
    let (_, inert) = traced_yarn(ycfg().with_faults(FaultSpec::default()), &fw);
    assert_eq!(plain, inert, "yarn: inert plan perturbed the run");
}

/// A plan that enables ONLY the circuit breaker (every failure
/// probability zero) must also be behavior-neutral: with nothing
/// feeding the health monitor a failure, the breaker stays closed and
/// never alters a preemption decision — byte-identical traces on both
/// simulators.
#[test]
fn breaker_without_failures_is_byte_identical_to_no_plan() {
    let spec = || FaultSpec {
        breaker: Some(BreakerSpec::default()),
        ..FaultSpec::default()
    };

    let w = GoogleTraceConfig::small(80.0).generate(11);
    let base = || {
        SimConfig::trace_sim(PreemptionPolicy::Adaptive, MediaKind::Ssd)
            .with_nodes(5)
            .with_failures(SimDuration::from_secs(1_500), SimDuration::from_secs(120))
    };
    let (_, plain) = traced_cluster(base(), &w);
    let (_, armed) = traced_cluster(base().with_faults(spec()), &w);
    assert_eq!(plain, armed, "cluster: idle breaker perturbed the run");

    let fw = FacebookConfig {
        jobs: 10,
        total_tasks: 240,
        giant_job_tasks: 60,
        ..Default::default()
    }
    .generate(11);
    let ycfg = || {
        let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Adaptive, MediaKind::Ssd);
        cfg.nodes = 2;
        cfg
    };
    let (_, plain) = traced_yarn(ycfg(), &fw);
    let (_, armed) = traced_yarn(ycfg().with_faults(spec()), &fw);
    assert_eq!(plain, armed, "yarn: idle breaker perturbed the run");
}

/// Extracts the breaker transition lines from a JSONL trace, in order.
fn breaker_lines(bytes: &[u8]) -> Vec<String> {
    String::from_utf8(bytes.to_vec())
        .expect("trace is UTF-8")
        .lines()
        .filter(|l| l.contains("\"breaker_open\"") || l.contains("\"breaker_close\""))
        .map(str::to_owned)
        .collect()
}

/// With a fixed plan the breaker's open/close transition times replay
/// exactly: same (seed, plan) ⇒ the breaker_open / breaker_close trace
/// lines — timestamps, node ids and the global flag — are identical
/// across runs, and a plan hostile enough to trip the breaker degrades
/// checkpoint decisions to kills while it is open.
#[test]
fn breaker_transitions_replay_exactly() {
    // A checkpoint path this broken (almost every dump fails, no
    // retries) pushes the sliding-window failure rate past the default
    // 0.5 threshold as soon as a node has seen min_samples of traffic.
    // Probe draws deterministically for one with enough checkpoint
    // pressure to actually trip a breaker.
    let spec = FaultSpec {
        seed: 7,
        dump_fail_prob: 0.9,
        max_dump_retries: 0,
        breaker: Some(BreakerSpec::default()),
        ..FaultSpec::default()
    };
    let cfg = |spec: FaultSpec| {
        SimConfig::trace_sim(PreemptionPolicy::Checkpoint, MediaKind::Ssd)
            .with_nodes(5)
            .with_faults(spec)
    };
    let (w, report, bytes_a) = (5..25)
        .map(|seed| GoogleTraceConfig::small(120.0).generate(seed))
        .find_map(|w| {
            let (report, bytes) = traced_cluster(cfg(spec.clone()), &w);
            (report.metrics.breaker_open_kills > 0).then_some((w, report, bytes))
        })
        .expect("a draw that trips the breaker within 20 seeds");

    let opens = breaker_lines(&bytes_a);
    assert!(
        opens.iter().any(|l| l.contains("\"breaker_open\"")),
        "tripped breaker must emit a breaker_open record"
    );
    assert!(
        report.metrics.breaker_open_secs > 0.0,
        "time-in-open must be accounted"
    );
    // Liveness holds even with the checkpoint path this degraded: the
    // breaker's whole point is falling back to plain kills.
    assert_eq!(report.metrics.jobs_finished, w.job_count() as u64);

    let (_, bytes_b) = traced_cluster(cfg(spec.clone()), &w);
    assert_eq!(
        breaker_lines(&bytes_b),
        opens,
        "breaker transitions must replay at identical times"
    );
}

/// Heavy chaos visibly engages the recovery machinery on the cluster
/// simulator: retries, fallback kills and scratch restarts all fire, and
/// their cost lands in the waste ledger.
#[test]
fn heavy_chaos_engages_recovery_policies() {
    // Whether a given draw is contended enough to checkpoint is
    // seed-dependent; probe forward (deterministically) for a draw with
    // real checkpoint traffic for the faults to hit.
    let base = || SimConfig::trace_sim(PreemptionPolicy::Checkpoint, MediaKind::Ssd).with_nodes(5);
    let w = (5..25)
        .map(|seed| GoogleTraceConfig::small(120.0).generate(seed))
        .find(|w| {
            let calm = base().run(w);
            calm.metrics.checkpoints >= 10 && calm.metrics.restores >= 10
        })
        .expect("a contended draw within 20 seeds");
    let cfg = base().with_faults(FaultSpec {
        seed: 7,
        ..FaultSpec::heavy()
    });
    let report = cfg.run(&w);
    let m = &report.metrics;
    assert_eq!(m.jobs_finished, w.job_count() as u64);
    assert!(
        m.dump_fail_retries + m.dump_fail_kills > 0,
        "heavy plan must fail some dumps"
    );
    assert!(
        m.restore_fail_retries + m.scratch_restarts > 0,
        "heavy plan must fail some restores"
    );
    assert!(
        m.retry_overhead_cpu_hours > 0.0,
        "failed attempts must be charged as retry overhead"
    );
    assert!(
        m.wasted_cpu_hours() >= m.retry_overhead_cpu_hours,
        "retry overhead is part of the waste ledger"
    );
}
