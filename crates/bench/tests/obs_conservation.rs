//! Property tests for the `cbp-obs` blame-conservation invariant.
//!
//! Every finished task's eight blame segments (run, ready-queue wait,
//! dump, checkpoint-queue wait, restore, retry, lost work, suspended) must tile
//! the submit→finish interval *exactly*, in integer microseconds, on
//! every trace either simulator can emit. The collector hard-asserts
//! this at each `TaskFinish`; these tests drive randomized scenarios
//! through both simulators (policies × media × cluster sizes × failure
//! injection) and re-check the invariant span by span, so a pairing
//! hole in either simulator's emissions fails loudly here.

use cbp_core::{ClusterSim, PreemptionPolicy, SimConfig};
use cbp_faults::FaultSpec;
use cbp_obs::{ObsReport, SharedCollector, SpanCollector};
use cbp_simkit::SimDuration;
use cbp_storage::MediaKind;
use cbp_workload::facebook::FacebookConfig;
use cbp_workload::google::GoogleTraceConfig;
use cbp_yarn::{YarnConfig, YarnSim};
use proptest::prelude::*;

/// Re-checks conservation explicitly for every finished span (the strict
/// collector already asserted it online) and sanity-checks the counters.
fn check_conservation(collector: &SpanCollector, label: &str) {
    assert_eq!(collector.malformed(), 0, "{label}: malformed trace records");
    let mut finished = 0u64;
    for (key, span) in collector.tasks() {
        let Some(response) = span.response_us() else {
            continue;
        };
        finished += 1;
        assert_eq!(
            span.blame.total_us(),
            response,
            "{label}: task {key} blame does not tile submit..finish"
        );
        let component_sum: u64 = span.blame.components().iter().map(|(_, v)| *v).sum();
        assert_eq!(
            component_sum,
            span.blame.total_us(),
            "{label}: task {key} components out of sync with total"
        );
        assert_eq!(
            span.blame.penalty_us(),
            response - span.blame.run_us,
            "{label}: task {key} penalty must be response minus run"
        );
    }
    assert!(finished > 0, "{label}: scenario finished no tasks");
}

/// The fault plan for a conservation case, rotating through calm, light
/// chaos, heavy chaos and storage pressure — retry/recovery segments and
/// the lifecycle ladder's bookkeeping records (gc_pass, image_evict,
/// image_spill, no_space) must all keep the tiling exact.
fn conservation_plan(seed: u64) -> Option<FaultSpec> {
    match seed % 4 {
        0 => None,
        1 => Some(FaultSpec {
            seed,
            ..FaultSpec::light()
        }),
        2 => Some(FaultSpec {
            seed,
            ..FaultSpec::heavy()
        }),
        _ => Some(FaultSpec {
            seed,
            ..FaultSpec::pressure()
        }),
    }
}

/// Runs the Google-trace simulator with a span collector attached.
fn collect_cluster(cfg: SimConfig, seed: u64) -> SpanCollector {
    let workload = GoogleTraceConfig::small(80.0).generate(seed);
    let shared = SharedCollector::new();
    let mut sim = ClusterSim::new(cfg, workload);
    sim.set_tracer(Box::new(shared.clone()));
    let _ = sim.run();
    shared.take()
}

/// Runs the YARN protocol simulator with a span collector attached.
fn collect_yarn(
    policy: PreemptionPolicy,
    media: MediaKind,
    nodes: usize,
    seed: u64,
) -> SpanCollector {
    let slots = nodes * 24;
    let workload = FacebookConfig {
        jobs: 12,
        total_tasks: 300,
        giant_job_tasks: (slots as f64 * 1.3) as usize,
        ..Default::default()
    }
    .generate(seed);
    let mut cfg = YarnConfig::paper_cluster(policy, media);
    cfg.nodes = nodes;
    if let Some(plan) = conservation_plan(seed) {
        // NM dump-failure fallbacks and AM-unresponsive escalations must
        // keep the tiling exact too.
        cfg = cfg.with_faults(plan);
    }
    let shared = SharedCollector::new();
    let mut sim = YarnSim::new(cfg, workload);
    sim.set_tracer(Box::new(shared.clone()));
    let _ = sim.run();
    shared.take()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation holds on the trace-driven simulator across random
    /// seeds, all four policies, all media, varying cluster sizes, and
    /// with node-failure injection on or off.
    #[test]
    fn cluster_sim_conserves_blame(
        seed in 0u64..1_000_000,
        policy_idx in 0usize..PreemptionPolicy::ALL.len(),
        media_idx in 0usize..MediaKind::ALL.len(),
        nodes in 3usize..8,
    ) {
        let failures = seed % 2 == 0;
        let mut cfg = SimConfig::trace_sim(
            PreemptionPolicy::ALL[policy_idx],
            MediaKind::ALL[media_idx],
        )
        .with_nodes(nodes);
        if failures {
            // Aggressive failure injection: exercises kill evictions,
            // dump aborts (the DumpFallback path) and restore retries.
            cfg = cfg.with_failures(
                SimDuration::from_secs(1_200),
                SimDuration::from_secs(120),
            );
        }
        if let Some(plan) = conservation_plan(seed) {
            // Fault injection layered on top: dump retries, kill
            // fallbacks, restore retries and scratch restarts must all
            // keep the submit..finish tiling exact.
            cfg = cfg.with_faults(plan);
        }
        check_conservation(&collect_cluster(cfg, seed), "cluster");
    }

    /// Conservation holds on the YARN protocol simulator (container
    /// startup, dump grace windows, ForceKill fallbacks) across random
    /// seeds, policies, media and cluster sizes.
    #[test]
    fn yarn_sim_conserves_blame(
        seed in 0u64..1_000_000,
        policy_idx in 0usize..PreemptionPolicy::ALL.len(),
        media_idx in 0usize..MediaKind::ALL.len(),
        nodes in 2usize..5,
    ) {
        let collector = collect_yarn(
            PreemptionPolicy::ALL[policy_idx],
            MediaKind::ALL[media_idx],
            nodes,
            seed,
        );
        check_conservation(&collector, "yarn");
    }
}

/// The serialized report is byte-stable for a fixed seed: archived
/// baselines stay diffable forever.
#[test]
fn obs_report_is_byte_stable_per_seed() {
    let build = || {
        let cfg = SimConfig::trace_sim(PreemptionPolicy::Adaptive, MediaKind::Hdd).with_nodes(5);
        ObsReport::build(&collect_cluster(cfg, 9), 10).to_json()
    };
    let a = build();
    let b = build();
    assert_eq!(a, b, "same seed must serialize to identical bytes");
    assert!(
        a.starts_with("{\"schema\":\"cbp-obs-report\",\"version\":3,"),
        "report must open with its schema header"
    );
}

/// A YARN-side report build smoke test: bands, nodes and totals are
/// populated and internally consistent.
#[test]
fn yarn_report_aggregates_consistently() {
    let collector = collect_yarn(PreemptionPolicy::Adaptive, MediaKind::Hdd, 3, 17);
    let report = ObsReport::build(&collector, 5);
    assert!(report.source.tasks_finished > 0);
    assert!(!report.nodes.is_empty(), "per-node tallies must be present");
    let band_finished: u64 = report.bands.iter().map(|b| b.finished).sum();
    assert_eq!(
        band_finished, report.source.tasks_finished,
        "band partition must cover every finished task"
    );
    assert!(report.top_jobs.len() <= 5, "top-K truncation");
}
