//! Property and validation tests for `cbp-obs` critical-path extraction
//! and what-if attribution.
//!
//! Three contracts, each exercised on **both** simulators:
//!
//! 1. **Tiling** — every complete job's critical path (the segment
//!    timeline of its completion-determining task) tiles the job's
//!    submit→finish interval exactly, across randomized policies ×
//!    media × cluster sizes × fault plans (the extraction itself treats
//!    a violation as fatal; the proptests re-check every path).
//! 2. **Byte-stability** — the `"crit"` report section and the folded
//!    flamegraph export serialize to identical bytes for the same seed.
//! 3. **What-if validity** — the zero-cost-dump counterfactual's
//!    per-band p95 response prediction lands within 15% of an *actual*
//!    re-run on a free-dump medium, on the fig3 (ClusterSim) and fig8
//!    (YarnSim) smoke configurations. This bounds the error of the
//!    first-order "remove the segments, keep the rest" model, which
//!    deliberately ignores scheduling feedback.

use cbp_bench::experiments::google_setup;
use cbp_bench::Scale;
use cbp_core::{ClusterSim, PreemptionPolicy, SimConfig};
use cbp_faults::FaultSpec;
use cbp_obs::{
    extract_job_paths, paths_to_folded, CritReport, ObsReport, SharedCollector, SpanCollector,
    WhatIf,
};
use cbp_simkit::units::Bandwidth;
use cbp_simkit::SimDuration;
use cbp_storage::{MediaKind, MediaSpec};
use cbp_workload::facebook::FacebookConfig;
use cbp_workload::google::GoogleTraceConfig;
use cbp_workload::Workload;
use cbp_yarn::{YarnConfig, YarnSim};
use proptest::prelude::*;

/// Runs the trace-driven simulator with a segment-recording collector.
fn collect_cluster(cfg: SimConfig, workload: Workload) -> SpanCollector {
    let shared = SharedCollector::with_segments();
    let mut sim = ClusterSim::new(cfg, workload);
    sim.set_tracer(Box::new(shared.clone()));
    let _ = sim.run();
    shared.take()
}

/// Runs the YARN protocol simulator with a segment-recording collector.
fn collect_yarn(cfg: YarnConfig, workload: Workload) -> SpanCollector {
    let shared = SharedCollector::with_segments();
    let mut sim = YarnSim::new(cfg, workload);
    sim.set_tracer(Box::new(shared.clone()));
    let _ = sim.run();
    shared.take()
}

/// The fig8-style YARN smoke setup (contended Facebook draw on a tiny
/// cluster), with a configurable policy/media.
fn yarn_smoke(policy: PreemptionPolicy, media: MediaKind, seed: u64) -> (YarnConfig, Workload) {
    let nodes = 2;
    let slots = nodes * 24;
    let workload = FacebookConfig {
        jobs: 10,
        total_tasks: 260,
        giant_job_tasks: (slots as f64 * 1.3) as usize,
        ..Default::default()
    }
    .generate(seed);
    let mut cfg = YarnConfig::paper_cluster(policy, media);
    cfg.nodes = nodes;
    (cfg, workload)
}

/// Re-checks the tiling invariant for every extracted path: contiguous
/// segments covering submit→finish exactly, and the per-kind sum equal
/// to the job's response time.
fn check_paths(collector: &SpanCollector, label: &str) {
    let jp = extract_job_paths(collector)
        .unwrap_or_else(|e| panic!("{label}: critical-path extraction failed: {e}"));
    assert!(!jp.paths.is_empty(), "{label}: no complete jobs");
    for p in &jp.paths {
        p.check_tiling().unwrap_or_else(|e| panic!("{label}: {e}"));
        let seg_sum: u64 = p.segments.iter().map(|s| s.dur_us()).sum();
        assert_eq!(
            seg_sum,
            p.finish_us - p.submit_us,
            "{label}: job {} segment sum must equal the critical interval",
            p.job
        );
    }
}

/// Every third case gets light chaos, every third heavy (mirrors the
/// blame-conservation suite): retry and lost segments must tile too.
fn fault_plan(seed: u64) -> Option<FaultSpec> {
    match seed % 3 {
        0 => None,
        1 => Some(FaultSpec {
            seed,
            ..FaultSpec::light()
        }),
        _ => Some(FaultSpec {
            seed,
            ..FaultSpec::heavy()
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tiling holds on the trace-driven simulator across seeds, all
    /// policies, all media, node counts, failure and fault injection.
    #[test]
    fn cluster_sim_critical_paths_tile(
        seed in 0u64..1_000_000,
        policy_idx in 0usize..PreemptionPolicy::ALL.len(),
        media_idx in 0usize..MediaKind::ALL.len(),
        nodes in 3usize..8,
    ) {
        let mut cfg = SimConfig::trace_sim(
            PreemptionPolicy::ALL[policy_idx],
            MediaKind::ALL[media_idx],
        )
        .with_nodes(nodes);
        if seed % 2 == 0 {
            cfg = cfg.with_failures(
                SimDuration::from_secs(1_200),
                SimDuration::from_secs(120),
            );
        }
        if let Some(plan) = fault_plan(seed) {
            cfg = cfg.with_faults(plan);
        }
        let workload = GoogleTraceConfig::small(80.0).generate(seed);
        check_paths(&collect_cluster(cfg, workload), "cluster");
    }

    /// Tiling holds on the YARN protocol simulator (container startup,
    /// grace windows, force-kills, AM escalations) across the same axes.
    #[test]
    fn yarn_sim_critical_paths_tile(
        seed in 0u64..1_000_000,
        policy_idx in 0usize..PreemptionPolicy::ALL.len(),
        media_idx in 0usize..MediaKind::ALL.len(),
    ) {
        let (mut cfg, workload) = yarn_smoke(
            PreemptionPolicy::ALL[policy_idx],
            MediaKind::ALL[media_idx],
            seed,
        );
        if let Some(plan) = fault_plan(seed) {
            cfg = cfg.with_faults(plan);
        }
        check_paths(&collect_yarn(cfg, workload), "yarn");
    }
}

/// The crit section and the folded export are byte-stable per seed on
/// both simulators: flamegraphs and archived reports diff cleanly.
#[test]
fn crit_report_and_folded_are_byte_stable() {
    let build_cluster = || {
        let cfg = SimConfig::trace_sim(PreemptionPolicy::Adaptive, MediaKind::Hdd).with_nodes(5);
        let c = collect_cluster(cfg, GoogleTraceConfig::small(80.0).generate(9));
        let report = ObsReport::build(&c, 10).with_crit(&c).unwrap();
        let folded = paths_to_folded(&CritReport::extract_paths(&c).unwrap());
        (report.to_json(), folded)
    };
    let (json_a, folded_a) = build_cluster();
    let (json_b, folded_b) = build_cluster();
    assert_eq!(json_a, json_b, "cluster crit JSON must be byte-stable");
    assert_eq!(folded_a, folded_b, "cluster folded must be byte-stable");
    assert!(json_a.contains("\"crit\":{"), "crit section present");
    assert!(!folded_a.is_empty(), "folded stacks present");

    let build_yarn = || {
        let (cfg, workload) = yarn_smoke(PreemptionPolicy::Adaptive, MediaKind::Hdd, 17);
        let c = collect_yarn(cfg, workload);
        let report = ObsReport::build(&c, 10).with_crit(&c).unwrap();
        let folded = paths_to_folded(&CritReport::extract_paths(&c).unwrap());
        (report.to_json(), folded)
    };
    let (json_a, folded_a) = build_yarn();
    let (json_b, folded_b) = build_yarn();
    assert_eq!(json_a, json_b, "yarn crit JSON must be byte-stable");
    assert_eq!(folded_a, folded_b, "yarn folded must be byte-stable");
}

/// A medium whose dumps are effectively free: unbounded write bandwidth
/// and zero setup, with the read side untouched — the physical analogue
/// of the `dump0` counterfactual.
fn free_dump_media(spec: &MediaSpec) -> MediaSpec {
    MediaSpec::custom(
        spec.kind(),
        Bandwidth::from_gb_per_sec_f64(100_000.0),
        spec.read_bw(),
        SimDuration::from_micros(0),
        spec.capacity(),
    )
}

/// Bands need at least this many jobs before a p95 comparison means
/// anything.
const MIN_JOBS_FOR_P95: u64 = 5;

/// Maximum relative error of the dump0 prediction vs the actual re-run.
const WHAT_IF_TOL: f64 = 0.15;

/// Compares the dump0 prediction from `baseline` against the measured
/// per-band p95 of `rerun` (the same scenario on a free-dump medium).
fn check_dump0_prediction(baseline: &SpanCollector, rerun: &SpanCollector, label: &str) {
    let predicted = CritReport::build(baseline).unwrap();
    let actual = CritReport::build(rerun).unwrap();
    let dump0 = WhatIf::ALL
        .iter()
        .position(|w| *w == WhatIf::Dump0)
        .unwrap();
    let mut compared = 0;
    for pb in &predicted.bands {
        // Exact percentiles + per-job dominance (a counterfactual only
        // removes cost) mean the predicted p95 can never exceed the
        // band's actual p95 from the same run.
        for (i, w) in WhatIf::ALL.iter().enumerate() {
            assert!(
                pb.what_if_p95_us[i] <= pb.response_p95_us,
                "{label}/{}: {} predicted p95 above actual",
                pb.band.name(),
                w.name(),
            );
        }
        if pb.jobs < MIN_JOBS_FOR_P95 {
            continue;
        }
        let Some(ab) = actual
            .bands
            .iter()
            .find(|b| b.band == pb.band && b.jobs >= MIN_JOBS_FOR_P95)
        else {
            continue;
        };
        let pred = pb.what_if_p95_us[dump0];
        let meas = ab.response_p95_us;
        let err = (pred - meas).abs() / meas.max(1.0);
        assert!(
            err <= WHAT_IF_TOL,
            "{label}/{}: dump0 prediction {pred:.0}µs vs measured {meas:.0}µs \
             ({:.1}% > {:.0}% tolerance)",
            pb.band.name(),
            err * 100.0,
            WHAT_IF_TOL * 100.0,
        );
        compared += 1;
    }
    assert!(compared > 0, "{label}: no band had enough jobs to compare");
}

/// fig3 smoke (ClusterSim, Google trace, checkpoint policy): the dump0
/// prediction from the NVM run must land within tolerance of an actual
/// free-dump re-run. A fast medium keeps the checkpoint share of the
/// response small enough that the un-modelled scheduling feedback (free
/// dumps also *unblock the cluster* sooner) stays inside the bound; on
/// HDD the feedback term dominates (measured ~36% at this seed) and the
/// first-order model over-predicts — documented as a limit in DESIGN.md
/// §5.3.
#[test]
fn what_if_dump0_matches_rerun_cluster() {
    let (workload, base) = google_setup(Scale::SMOKE, 42);
    let cfg = base
        .with_policy(PreemptionPolicy::Checkpoint)
        .with_media(MediaSpec::nvm());
    let baseline = collect_cluster(cfg.clone(), workload.clone());
    let rerun = collect_cluster(
        cfg.clone().with_media(free_dump_media(&cfg.media)),
        workload,
    );
    check_dump0_prediction(&baseline, &rerun, "cluster");
}

/// fig8 smoke (YarnSim, Facebook workload, checkpoint policy): same
/// bound on the protocol simulator, where dumps also hold container
/// leases through the grace window.
#[test]
fn what_if_dump0_matches_rerun_yarn() {
    let (cfg, workload) = yarn_smoke(PreemptionPolicy::Checkpoint, MediaKind::Hdd, 42);
    let baseline = collect_yarn(cfg.clone(), workload.clone());
    let mut free = cfg.clone();
    free.media = free_dump_media(&cfg.media);
    let rerun = collect_yarn(free, workload);
    check_dump0_prediction(&baseline, &rerun, "yarn");
}
