//! End-to-end tests of `repro bench`: the binary must emit schema-valid
//! BENCH json that its own `--check` accepts at 0% tolerance, and the
//! check must reject perturbed candidates and mismatched configs.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cbp-bench-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn bench_emits_schema_valid_json_that_self_checks_at_zero_tolerance() {
    let dir = tmp_dir("emit");
    let out = repro()
        .args([
            "bench",
            "--scenario",
            "fig8_smoke",
            "--reps",
            "1",
            "--warmup",
            "0",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("repro bench runs");
    assert!(
        out.status.success(),
        "bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let path = dir.join("BENCH_fig8_smoke.json");
    let json = std::fs::read_to_string(&path).expect("BENCH file written");
    assert!(
        json.starts_with("{\"schema\":\"cbp-bench\",\"version\":1,"),
        "schema header missing: {}",
        &json[..json.len().min(80)]
    );
    assert!(cbp_telemetry::json::is_valid(&json), "invalid JSON emitted");
    // Config and measured fields live in separate objects.
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(v.get("config").and_then(|c| c.get("scenario")).is_some());
    assert!(v.get("measured").and_then(|m| m.get("events")).is_some());

    let check = repro()
        .args([
            "bench",
            "--check",
            path.to_str().unwrap(),
            "--candidate",
            path.to_str().unwrap(),
            "--tol-pct",
            "0",
        ])
        .output()
        .expect("repro bench --check runs");
    assert!(
        check.status.success(),
        "self-check at 0%% must pass: {}{}",
        String::from_utf8_lossy(&check.stdout),
        String::from_utf8_lossy(&check.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_exits_one_on_regression() {
    let dir = tmp_dir("regress");
    let baseline = cbp_bench::run_scenario(
        &cbp_bench::find_scenario("fig8_smoke").unwrap(),
        cbp_bench::BenchOptions { reps: 1, warmup: 0 },
    )
    .to_json();
    let base_path = dir.join("base.json");
    std::fs::write(&base_path, &baseline).unwrap();

    // A candidate whose event count differs: regression at any tolerance.
    let v: serde_json::Value = serde_json::from_str(&baseline).unwrap();
    let events = v
        .get("measured")
        .and_then(|m| m.get("events"))
        .and_then(|e| e.as_u64())
        .unwrap();
    let perturbed = baseline.replace(
        &format!("\"events\":{events}"),
        &format!("\"events\":{}", events + 1),
    );
    assert_ne!(perturbed, baseline);
    let cand_path = dir.join("cand.json");
    std::fs::write(&cand_path, &perturbed).unwrap();

    let check = repro()
        .args([
            "bench",
            "--check",
            base_path.to_str().unwrap(),
            "--candidate",
            cand_path.to_str().unwrap(),
            "--tol-pct",
            "50",
        ])
        .output()
        .expect("repro bench --check runs");
    assert_eq!(
        check.status.code(),
        Some(1),
        "event-count drift must exit 1: {}",
        String::from_utf8_lossy(&check.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_rejects_mismatched_scenarios() {
    let tiny = cbp_bench::tiny_matrix();
    let opts = cbp_bench::BenchOptions { reps: 1, warmup: 0 };
    let a = cbp_bench::run_scenario(&tiny[0], opts).to_json();
    let b = cbp_bench::run_scenario(&tiny[1], opts).to_json();
    let err = cbp_bench::check_bench_files(&a, &b, 100.0).unwrap_err();
    assert!(err.contains("config.scenario"), "{err}");
}
