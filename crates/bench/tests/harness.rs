//! Harness smoke tests: the cheap experiments produce well-formed tables
//! whose headline numbers sit where the paper puts them.

use cbp_bench::{run_one, Scale, EXPERIMENT_IDS};

#[test]
fn experiment_ids_dispatch() {
    // Every id resolves; unknown ids do not. (Only the cheap experiments
    // are actually *run* here; the expensive ones are covered by `repro`.)
    assert!(run_one("bogus", Scale::SMOKE, 1).is_none());
    assert!(EXPERIMENT_IDS.contains(&"fig3"));
    assert!(EXPERIMENT_IDS.contains(&"mapreduce"));
}

#[test]
fn table3_matches_paper_anchors() {
    let exp = run_one("table3", Scale::SMOKE, 1).unwrap();
    let t = &exp.tables[0];
    assert_eq!(t.columns.len(), 5);
    assert_eq!(t.rows.len(), 3);
    // HDD first checkpoint within 5% of the paper's 169.18 s.
    let hdd_first: f64 = t.rows[0][1].parse().unwrap();
    assert!(
        (hdd_first - 169.18).abs() / 169.18 < 0.05,
        "HDD first checkpoint {hdd_first}"
    );
    // PMFS second checkpoint within 25% of the paper's 0.28 s.
    let pmfs_second: f64 = t.rows[2][2].parse().unwrap();
    assert!(
        (pmfs_second - 0.28).abs() / 0.28 < 0.25,
        "PMFS second checkpoint {pmfs_second}"
    );
}

#[test]
fn fig2_is_linear_and_ordered() {
    let exp = run_one("fig2", Scale::SMOKE, 1).unwrap();
    let fig2a = &exp.tables[0];
    // Per row: HDD > SSD > NVM.
    for row in &fig2a.rows {
        let hdd: f64 = row[1].parse().unwrap();
        let ssd: f64 = row[2].parse().unwrap();
        let nvm: f64 = row[3].parse().unwrap();
        assert!(hdd > ssd && ssd > nvm, "media ordering violated: {row:?}");
    }
    // Roughly linear: time(10 GB) ≈ 2x time(5 GB) on HDD.
    let t5: f64 = fig2a.rows[3][1].parse().unwrap();
    let t10: f64 = fig2a.rows[5][1].parse().unwrap();
    assert!(
        (t10 / t5 - 2.0).abs() < 0.1,
        "HDD not linear: {t5} -> {t10}"
    );
    // HDFS (fig2b) is slower than local on every cell.
    let fig2b = &exp.tables[1];
    for (ra, rb) in fig2a.rows.iter().zip(&fig2b.rows) {
        for col in 1..4 {
            let local: f64 = ra[col].parse().unwrap();
            let dfs: f64 = rb[col].parse().unwrap();
            assert!(dfs >= local, "HDFS faster than local at {ra:?} col {col}");
        }
    }
}

#[test]
fn fig4_crossovers() {
    let exp = run_one("fig4", Scale::SMOKE, 1).unwrap();
    let high = &exp.tables[0];
    // Wait is flat at 1.5; kill flat at 1.0; checkpoint decreasing.
    let chk_first: f64 = high.rows[0][3].parse().unwrap();
    let chk_last: f64 = high.rows[4][3].parse().unwrap();
    assert!(
        chk_first > chk_last,
        "checkpoint should improve with bandwidth"
    );
    let kill: f64 = high.rows[0][2].parse().unwrap();
    assert!((kill - 1.0).abs() < 0.05);
    let wait: f64 = high.rows[0][1].parse().unwrap();
    assert!((wait - 1.5).abs() < 0.05);
    // At 1 GB/s checkpointing the high-priority job is worse than waiting
    // (the paper's low-bandwidth warning).
    assert!(chk_first > wait);
}

#[test]
fn markdown_renders_for_cheap_experiments() {
    for id in ["fig2", "table3", "fig4", "fig6"] {
        let exp = run_one(id, Scale::SMOKE, 1).unwrap();
        let md = exp.markdown();
        assert!(md.contains("**Paper:**"), "{id} missing paper claim");
        assert!(md.contains("|---"), "{id} missing table");
    }
}
