//! Capstone invariants for checkpoint-image lifecycle management
//! (capacity backpressure, spill-to-remote, eviction and GC), driven on
//! BOTH simulators:
//!
//! 1. **Ledger conservation** — every byte reserved on a checkpoint
//!    device is a live catalog image or an injected leak. Both
//!    simulators hard-assert this after *every* event in debug builds,
//!    so simply completing the randomized runs below proves the
//!    invariant across policies × media × fault plans (including
//!    storage pressure layered over heavy chaos).
//! 2. **Liveness** — a cluster whose checkpoint stores are shrunk to a
//!    sliver and leaking still finishes every task, with the ladder on
//!    or off (off degrades to kills; it never wedges).
//! 3. **Determinism** — the same `(seed, plan)` pair replays to a
//!    byte-identical JSONL trace with lifecycle management enabled.
//! 4. **Effectiveness** — under pressure the ladder engages in order
//!    (GC before eviction) and strictly reduces `no_space_kills`
//!    versus the `--no-lifecycle` ablation.

use std::cell::RefCell;
use std::rc::Rc;

use cbp_core::{ClusterSim, PreemptionPolicy, RunReport, SimConfig};
use cbp_faults::FaultSpec;
use cbp_storage::MediaKind;
use cbp_workload::facebook::FacebookConfig;
use cbp_workload::google::GoogleTraceConfig;
use cbp_workload::Workload;
use cbp_yarn::{YarnConfig, YarnReport, YarnSim};
use proptest::prelude::*;

/// A `Write` sink whose buffer outlives the boxed tracer.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The fault plan for a lifecycle case. `class` rotates the regime:
/// 0 = pure storage pressure (shrunk stores + leaks, nothing else),
/// 1 = light chaos (the lifecycle machinery mostly idle — it must not
/// perturb anything), 2 = pressure layered over heavy chaos (leaks,
/// dump/restore failures and image corruption all at once — the GC pass
/// reclaims corrupt chains too).
fn lifecycle_plan(class: u8, plan_seed: u64) -> FaultSpec {
    match class % 3 {
        0 => FaultSpec {
            seed: plan_seed,
            ..FaultSpec::pressure()
        },
        1 => FaultSpec {
            seed: plan_seed,
            ..FaultSpec::light()
        },
        _ => FaultSpec {
            seed: plan_seed,
            pressure: FaultSpec::pressure().pressure,
            ..FaultSpec::heavy()
        },
    }
}

/// Runs the trace-driven simulator with a JSONL tracer and returns the
/// report plus the exact bytes written.
fn traced_cluster(cfg: SimConfig, workload: &Workload) -> (RunReport, Vec<u8>) {
    let buf = SharedBuf::default();
    let mut sim = ClusterSim::new(cfg, workload.clone());
    sim.set_tracer(Box::new(cbp_telemetry::JsonlTracer::new(buf.clone())));
    let report = sim.run();
    let bytes = buf.0.borrow().clone();
    (report, bytes)
}

/// Runs the YARN protocol simulator with a JSONL tracer.
fn traced_yarn(cfg: YarnConfig, workload: &Workload) -> (YarnReport, Vec<u8>) {
    let buf = SharedBuf::default();
    let mut sim = YarnSim::new(cfg, workload.clone());
    sim.set_tracer(Box::new(cbp_telemetry::JsonlTracer::new(buf.clone())));
    let report = sim.run();
    let bytes = buf.0.borrow().clone();
    (report, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// ClusterSim: ledger conservation (hard-asserted per event in this
    /// debug build), liveness and byte-identical replay with lifecycle
    /// management enabled, across policies × media × pressure regimes.
    #[test]
    fn cluster_sim_lifecycle_conservation_and_determinism(
        seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        class in 0u8..3,
        policy_idx in 0usize..PreemptionPolicy::ALL.len(),
        media_idx in 0usize..MediaKind::ALL.len(),
        nodes in 4usize..8,
    ) {
        let workload = GoogleTraceConfig::small(80.0).generate(seed);
        let cfg = || SimConfig::trace_sim(
            PreemptionPolicy::ALL[policy_idx],
            MediaKind::ALL[media_idx],
        )
        .with_nodes(nodes)
        .with_faults(lifecycle_plan(class, plan_seed));

        let (report, bytes_a) = traced_cluster(cfg(), &workload);
        prop_assert_eq!(report.metrics.jobs_finished, workload.job_count() as u64);
        prop_assert_eq!(report.metrics.tasks_finished, workload.task_count() as u64);

        let (_, bytes_b) = traced_cluster(cfg(), &workload);
        prop_assert_eq!(bytes_a, bytes_b, "same (seed, plan) must replay identically");
    }

    /// YarnSim: same contract on the protocol simulator (NM-local
    /// stores, dumps routed through HDFS).
    #[test]
    fn yarn_sim_lifecycle_conservation_and_determinism(
        seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        class in 0u8..3,
        policy_idx in 0usize..PreemptionPolicy::ALL.len(),
        media_idx in 0usize..MediaKind::ALL.len(),
    ) {
        let workload = FacebookConfig {
            jobs: 10,
            total_tasks: 240,
            giant_job_tasks: 60,
            ..Default::default()
        }
        .generate(seed);
        let cfg = || {
            let mut cfg = YarnConfig::paper_cluster(
                PreemptionPolicy::ALL[policy_idx],
                MediaKind::ALL[media_idx],
            );
            cfg.nodes = 2;
            cfg.with_faults(lifecycle_plan(class, plan_seed))
        };

        let (report, bytes_a) = traced_yarn(cfg(), &workload);
        prop_assert_eq!(report.jobs_finished, workload.job_count() as u64);
        prop_assert_eq!(report.tasks_finished, workload.task_count() as u64);

        let (_, bytes_b) = traced_yarn(cfg(), &workload);
        prop_assert_eq!(bytes_a, bytes_b, "same (seed, plan) must replay identically");
    }

    /// The ablation stays live too: with the ladder disabled, pressure
    /// degrades dumps to kills but never strands a task, and the
    /// conservation invariant still holds (GC/evict/spill are the only
    /// code paths switched off; the ledger itself is unconditional).
    #[test]
    fn lifecycle_off_under_pressure_stays_live(
        seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
    ) {
        let plan = FaultSpec { seed: plan_seed, ..FaultSpec::pressure() };
        let w = GoogleTraceConfig::small(80.0).generate(seed);
        let cfg = SimConfig::trace_sim(PreemptionPolicy::Checkpoint, MediaKind::Nvm)
            .with_nodes(5)
            .with_lifecycle(false)
            .with_faults(plan.clone());
        let report = ClusterSim::new(cfg, w.clone()).run();
        prop_assert_eq!(report.metrics.tasks_finished, w.task_count() as u64);

        let fw = FacebookConfig {
            jobs: 8,
            total_tasks: 180,
            giant_job_tasks: 60,
            ..Default::default()
        }
        .generate(seed);
        let mut ycfg = YarnConfig::paper_cluster(PreemptionPolicy::Checkpoint, MediaKind::Nvm)
            .with_lifecycle(false)
            .with_faults(plan);
        ycfg.nodes = 2;
        let report = YarnSim::new(ycfg, fw.clone()).run();
        prop_assert_eq!(report.tasks_finished, fw.task_count() as u64);
    }
}

/// Counts JSONL trace lines whose `event` field is `name`.
fn event_count(bytes: &[u8], name: &str) -> usize {
    let needle = format!("\"event\":\"{name}\"");
    String::from_utf8(bytes.to_vec())
        .expect("trace is UTF-8")
        .lines()
        .filter(|l| l.contains(&needle))
        .count()
}

/// Index of the first JSONL trace line whose `event` field is `name`.
fn first_event(bytes: &[u8], name: &str) -> Option<usize> {
    let needle = format!("\"event\":\"{name}\"");
    String::from_utf8(bytes.to_vec())
        .expect("trace is UTF-8")
        .lines()
        .position(|l| l.contains(&needle))
}

/// Under storage pressure the ladder engages in order: the GC pass is
/// always rung one, so the first `gc_pass` record precedes the first
/// `image_evict`, and the counters mirror the trace.
#[test]
fn pressure_ladder_engages_in_order() {
    // The stock `pressure` profile leaves the trace-sim stores ~30%
    // headroom at smoke scale; squeeze harder so the ladder must run.
    let cfg = || {
        SimConfig::trace_sim(PreemptionPolicy::Checkpoint, MediaKind::Nvm)
            .with_nodes(4)
            .with_faults(
                FaultSpec::parse("pressure,seed=7,cap=0.01,leak=0.6,leak-window=300")
                    .expect("pressure spec parses"),
            )
    };
    // Whether a draw is contended enough to both checkpoint and run out
    // of space is seed-dependent; probe forward deterministically.
    let (report, bytes) = (5..40)
        .map(|seed| GoogleTraceConfig::small(120.0).generate(seed))
        .find_map(|w| {
            let (report, bytes) = traced_cluster(cfg(), &w);
            (report.metrics.gc_reclaimed_bytes > 0 && report.metrics.evicted_chains > 0)
                .then_some((report, bytes))
        })
        .expect("a draw that engages GC and eviction within 35 seeds");

    let gc = first_event(&bytes, "gc_pass").expect("gc_pass traced");
    let evict = first_event(&bytes, "image_evict").expect("image_evict traced");
    assert!(
        gc < evict,
        "GC is rung one: gc_pass must precede image_evict"
    );
    assert!(
        event_count(&bytes, "gc_pass") > 0 && event_count(&bytes, "image_evict") > 0,
        "ladder records present"
    );
    assert_eq!(
        event_count(&bytes, "image_evict") as u64,
        report.metrics.evicted_chains,
        "evicted_chains mirrors the trace"
    );
    assert_eq!(
        event_count(&bytes, "image_spill") as u64,
        report.metrics.spill_dumps,
        "spill_dumps mirrors the trace"
    );
    assert_eq!(
        event_count(&bytes, "no_space") as u64,
        report.metrics.no_space_kills,
        "no_space_kills mirrors the trace"
    );
}

/// The headline claim: with the same shrunk, leaking stores, enabling
/// the lifecycle ladder strictly reduces no-space kills on the
/// trace-driven simulator (and never strands work in either mode).
#[test]
fn lifecycle_strictly_reduces_no_space_kills_cluster() {
    let cfg = |lifecycle: bool| {
        SimConfig::trace_sim(PreemptionPolicy::Checkpoint, MediaKind::Nvm)
            .with_nodes(4)
            .with_lifecycle(lifecycle)
            .with_faults(
                FaultSpec::parse("pressure,seed=7,cap=0.01,leak=0.6,leak-window=300")
                    .expect("pressure spec parses"),
            )
    };
    let (w, off) = (5..40)
        .map(|seed| GoogleTraceConfig::small(120.0).generate(seed))
        .find_map(|w| {
            let off = ClusterSim::new(cfg(false), w.clone()).run();
            (off.metrics.no_space_kills > 0).then_some((w, off))
        })
        .expect("a draw where the bare fallback kills within 35 seeds");
    let on = ClusterSim::new(cfg(true), w.clone()).run();
    assert_eq!(off.metrics.tasks_finished, w.task_count() as u64);
    assert_eq!(on.metrics.tasks_finished, w.task_count() as u64);
    assert!(
        on.metrics.no_space_kills < off.metrics.no_space_kills,
        "lifecycle on must kill strictly less for lack of space \
         (on={}, off={})",
        on.metrics.no_space_kills,
        off.metrics.no_space_kills
    );
    assert!(
        on.metrics.gc_reclaimed_bytes > 0
            || on.metrics.evicted_chains > 0
            || on.metrics.spill_dumps > 0,
        "the reduction must come from the ladder actually engaging"
    );
    assert_eq!(
        off.metrics.gc_reclaimed_bytes + off.metrics.evicted_chains + off.metrics.spill_dumps,
        0,
        "the ablation must not run any ladder rung"
    );
}

/// Same claim on the YARN protocol simulator.
#[test]
fn lifecycle_strictly_reduces_no_space_kills_yarn() {
    let cfg = |lifecycle: bool| {
        let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Checkpoint, MediaKind::Nvm)
            .with_lifecycle(lifecycle)
            .with_faults(FaultSpec {
                seed: 7,
                ..FaultSpec::pressure()
            });
        cfg.nodes = 2;
        cfg
    };
    let (fw, off) = (5..40)
        .map(|seed| {
            FacebookConfig {
                jobs: 10,
                total_tasks: 240,
                giant_job_tasks: 60,
                ..Default::default()
            }
            .generate(seed)
        })
        .find_map(|fw| {
            let off = YarnSim::new(cfg(false), fw.clone()).run();
            (off.no_space_kills > 0).then_some((fw, off))
        })
        .expect("a draw where the bare fallback kills within 35 seeds");
    let on = YarnSim::new(cfg(true), fw.clone()).run();
    assert_eq!(off.tasks_finished, fw.task_count() as u64);
    assert_eq!(on.tasks_finished, fw.task_count() as u64);
    assert!(
        on.no_space_kills < off.no_space_kills,
        "lifecycle on must kill strictly less for lack of space (on={}, off={})",
        on.no_space_kills,
        off.no_space_kills
    );
    assert!(
        on.gc_reclaimed_bytes > 0 || on.evicted_chains > 0 || on.spill_dumps > 0,
        "the reduction must come from the ladder actually engaging"
    );
}
