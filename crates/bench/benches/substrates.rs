//! Criterion benchmarks of the substrate crates: event queue, storage
//! device queueing, DFS placement, and the energy integrator.

use cbp_cluster::{EnergyMeter, EnergyModel};
use cbp_dfs::{DfsCluster, DfsConfig, DnId};
use cbp_simkit::units::ByteSize;
use cbp_simkit::{EventQueue, SimTime};
use cbp_storage::{Device, MediaSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                // Scatter times so the heap actually works.
                q.push(SimTime::from_micros((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_device_queue(c: &mut Criterion) {
    c.bench_function("device_1k_interleaved_ops", |b| {
        b.iter_batched(
            || Device::new(MediaSpec::ssd()),
            |mut dev| {
                let mut t = SimTime::ZERO;
                for i in 0..1_000u64 {
                    if i % 2 == 0 {
                        dev.submit_write(t, ByteSize::from_mb(64));
                    } else {
                        dev.submit_read(t, ByteSize::from_mb(64));
                    }
                    t += cbp_simkit::SimDuration::from_millis(10);
                }
                black_box(dev.busy_time())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_dfs(c: &mut Criterion) {
    c.bench_function("dfs_create_read_delete_100_files", |b| {
        b.iter_batched(
            || DfsCluster::homogeneous(DfsConfig::default(), MediaSpec::ssd(), 8, 3),
            |mut dfs| {
                for i in 0..100 {
                    let path = format!("/f{i}");
                    dfs.create(&path, ByteSize::from_mb(256), DnId(i % 8))
                        .unwrap();
                    black_box(dfs.read_cost(&path, DnId((i + 1) % 8)).unwrap().duration);
                }
                for i in 0..100 {
                    dfs.delete(&format!("/f{i}")).unwrap();
                }
                black_box(dfs.total_used())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_energy(c: &mut Criterion) {
    c.bench_function("energy_meter_10k_updates", |b| {
        b.iter(|| {
            let mut m = EnergyMeter::new(EnergyModel::default());
            for i in 0..10_000u64 {
                m.set_utilization(SimTime::from_millis(i * 10), (i % 100) as f64 / 100.0);
            }
            black_box(m.kwh(SimTime::from_secs(100)))
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_device_queue,
    bench_dfs,
    bench_energy
);
criterion_main!(benches);
