//! Criterion micro-benchmarks of the checkpoint substrate (the code behind
//! Fig. 2 and Table 3): dirty-page tracking, dump sizing, and full
//! dump/restore cycles on each medium.

use cbp_checkpoint::{Criu, TaskMemory};
use cbp_simkit::units::ByteSize;
use cbp_simkit::SimTime;
use cbp_storage::{Device, MediaSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_dirty_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("dirty_tracking");
    for gb in [1u64, 5] {
        group.bench_function(format!("touch_10pct_{gb}GB"), |b| {
            b.iter_batched(
                || {
                    let mut mem = TaskMemory::new(ByteSize::from_gb(gb));
                    mem.clear_dirty();
                    mem
                },
                |mut mem| {
                    mem.touch_fraction(0.10);
                    black_box(mem.dirty_bytes())
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("dirty_bytes_scan_{gb}GB"), |b| {
            let mem = TaskMemory::new(ByteSize::from_gb(gb));
            b.iter(|| black_box(mem.dirty_bytes()))
        });
    }
    group.finish();
}

fn bench_dump_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("criu_dump_model");
    group.sample_size(20);
    for spec in [MediaSpec::hdd(), MediaSpec::ssd(), MediaSpec::nvm()] {
        group.bench_function(format!("full_plus_incremental_{}", spec.kind()), |b| {
            b.iter_batched(
                || {
                    (
                        Criu::new(true),
                        Device::new(spec),
                        TaskMemory::new(ByteSize::from_gb(5)),
                    )
                },
                |(mut criu, mut dev, mut mem)| {
                    let d1 = criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap();
                    mem.touch_fraction(0.10);
                    let d2 = criu.dump(1, &mut mem, 0, &mut dev, d1.op.end).unwrap();
                    let r = criu.restore(1, &mut dev, d2.op.end).unwrap();
                    black_box((d1.size, d2.size, r.size))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_nvram(c: &mut Criterion) {
    use cbp_checkpoint::{NvramCheckpointer, NvramSpec};
    let mut group = c.benchmark_group("nvram_model");
    group.bench_function("suspend_resume_cycle_5GB", |b| {
        b.iter_batched(
            || {
                (
                    NvramCheckpointer::new(NvramSpec::default()),
                    TaskMemory::new(ByteSize::from_gb(5)),
                )
            },
            |(mut nvram, mut mem)| {
                let s1 = nvram.suspend(1, &mut mem).unwrap();
                mem.touch_fraction(0.10);
                let s2 = nvram.suspend(1, &mut mem).unwrap();
                let r = nvram.resume(1, true);
                black_box((s1.copied, s2.copied, r.copied_upfront))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let criu = Criu::new(true);
    let dev = Device::new(MediaSpec::ssd());
    let mem = TaskMemory::new(ByteSize::from_gb(2));
    c.bench_function("algorithm1_estimate", |b| {
        b.iter(|| black_box(criu.estimate(1, &mem, &dev, SimTime::ZERO).total()))
    });
}

criterion_group!(
    benches,
    bench_dirty_tracking,
    bench_dump_cycle,
    bench_nvram,
    bench_estimate
);
criterion_main!(benches);
