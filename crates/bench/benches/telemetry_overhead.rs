//! Criterion benchmark proving the telemetry wiring is free when disabled.
//!
//! Every trace point in `ClusterSim` is guarded by a cached
//! `tracer.enabled()` bool, so a run with the default `NullTracer` must be
//! within noise (the PR's acceptance bar: <2%) of the pre-telemetry
//! baseline. Since the baseline no longer exists in-tree, we compare
//!
//! * `null_tracer` — the default, exactly what every experiment runs, vs.
//! * `sink_tracer` — a `JsonlTracer` writing to `std::io::sink()`, the
//!   full record-construction + serialization cost, vs.
//! * `sampled` — `NullTracer` plus the 60 s time-series probe.
//!
//! `null_tracer` is the number to watch: it is the disabled-path cost.
//!
//! After the timed groups, the bench prints an engine-throughput line
//! (events/sec from the run's `TelemetryReport`, which the engine fills
//! from its `RunStats`) for each configuration, so the Criterion output
//! can be compared against the `repro bench` BENCH_*.json trajectory —
//! see EXPERIMENTS.md, "Wall-clock profiling & perf trajectory".

use cbp_core::{ClusterSim, PreemptionPolicy, SimConfig};
use cbp_simkit::SimDuration;
use cbp_storage::MediaKind;
use cbp_telemetry::JsonlTracer;
use cbp_workload::google::GoogleTraceConfig;
use cbp_workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup() -> (Workload, SimConfig) {
    let workload = GoogleTraceConfig::small(120.0).generate(7);
    let cfg = SimConfig::trace_sim(PreemptionPolicy::Adaptive, MediaKind::Ssd).with_nodes(4);
    (workload, cfg)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let (workload, cfg) = setup();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(20);

    group.bench_function("null_tracer", |b| {
        b.iter(|| {
            // Default tracer: the disabled path (one branch per trace point).
            let sim = ClusterSim::new(cfg.clone(), workload.clone());
            black_box(sim.run().metrics.preemptions)
        })
    });

    group.bench_function("sink_tracer", |b| {
        b.iter(|| {
            let mut sim = ClusterSim::new(cfg.clone(), workload.clone());
            sim.set_tracer(Box::new(JsonlTracer::new(std::io::sink())));
            black_box(sim.run().metrics.preemptions)
        })
    });

    group.bench_function("sampled", |b| {
        b.iter(|| {
            let mut sim = ClusterSim::new(cfg.clone(), workload.clone());
            sim.enable_sampling(SimDuration::from_secs(60));
            black_box(sim.run().metrics.preemptions)
        })
    });

    group.finish();
    report_throughput(&cfg, &workload);
}

/// One untimed run per configuration, reporting engine events/sec so the
/// Criterion wall times can be read alongside the BENCH_*.json trajectory.
fn report_throughput(cfg: &SimConfig, workload: &Workload) {
    println!("telemetry_overhead: engine throughput (events/sec)");
    type Prepare = fn(&mut ClusterSim);
    let configs: [(&str, Prepare); 3] = [
        ("null_tracer", |_| {}),
        ("sink_tracer", |sim| {
            sim.set_tracer(Box::new(JsonlTracer::new(std::io::sink())));
        }),
        ("sampled", |sim| {
            sim.enable_sampling(SimDuration::from_secs(60));
        }),
    ];
    for (name, prepare) in configs {
        let mut sim = ClusterSim::new(cfg.clone(), workload.clone());
        prepare(&mut sim);
        let telemetry = sim.run().telemetry;
        println!(
            "  {name:<12} {:>9} events  {:>12.0} events/s",
            telemetry.engine_events,
            telemetry.events_per_sec()
        );
    }
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
