//! Criterion benchmarks of the scheduling stacks: full policy runs on a
//! small contended trace (the engine behind Figs. 3, 5, 8 and 10).

use cbp_core::{PreemptionPolicy, SimConfig};
use cbp_storage::MediaKind;
use cbp_workload::facebook::FacebookConfig;
use cbp_workload::google::GoogleTraceConfig;
use cbp_yarn::YarnConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_trace_sim(c: &mut Criterion) {
    let workload = GoogleTraceConfig::small(120.0).generate(7);
    let mut group = c.benchmark_group("trace_sim");
    group.sample_size(10);
    for policy in [
        PreemptionPolicy::Kill,
        PreemptionPolicy::Checkpoint,
        PreemptionPolicy::Adaptive,
    ] {
        group.bench_function(format!("{policy}_ssd"), |b| {
            b.iter(|| {
                let cfg = SimConfig::trace_sim(policy, MediaKind::Ssd).with_nodes(4);
                black_box(cfg.run(&workload).metrics.preemptions)
            })
        });
    }
    group.finish();
}

fn bench_yarn_sim(c: &mut Criterion) {
    let workload = FacebookConfig {
        jobs: 10,
        total_tasks: 200,
        giant_job_tasks: 60,
        ..Default::default()
    }
    .generate(7);
    let mut group = c.benchmark_group("yarn_sim");
    group.sample_size(10);
    for policy in [PreemptionPolicy::Kill, PreemptionPolicy::Adaptive] {
        group.bench_function(format!("{policy}_nvm"), |b| {
            b.iter(|| {
                let mut cfg = YarnConfig::paper_cluster(policy, MediaKind::Nvm);
                cfg.nodes = 2;
                black_box(cfg.run(&workload).tasks_finished)
            })
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_gen");
    group.sample_size(10);
    group.bench_function("google_small", |b| {
        let cfg = GoogleTraceConfig::small(200.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(cfg.generate(seed).task_count())
        })
    });
    group.bench_function("facebook_full", |b| {
        let cfg = FacebookConfig::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(cfg.generate(seed).task_count())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_sim,
    bench_yarn_sim,
    bench_workload_generation
);
criterion_main!(benches);
