//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment-id|all> [--scale full|small|smoke|<0..1>] [--seed N] [--md PATH] [--json PATH]
//!       [--trace-out PATH] [--chrome-trace PATH] [--timeseries PATH] [--telemetry]
//!       [--analyze PATH] [--critical-path] [--flamegraph-out PATH] [--what-if SCENARIO]
//!       [--faults SPEC] [--no-lifecycle]
//! repro analyze <trace.jsonl> [--report PATH] [--baseline PATH] [--tol-rel F] [--tol-abs-us F]
//!       [--critical-path] [--flamegraph-out PATH] [--what-if SCENARIO]
//! ```
//!
//! Experiment ids: fig1 table1 table2 fig2 table3 fig3 fig4 fig5 fig6
//! fig8 fig9 fig10 fig11 fig12 ablate mapreduce qos faults.
//!
//! `--faults SPEC` attaches a deterministic fault plan (a chaos profile
//! `off`/`light`/`heavy`/`chaos`, optionally tuned: `heavy,seed=7,dump=0.3`
//! or `chaos,crash=0.2,rack=0.1,partition=0.3,breaker=0.5`) to the
//! instrumented run, so chaos runs can be traced, analyzed, and
//! replayed byte-identically. The `chaos` profile layers failure-domain
//! chaos (correlated node/rack crash-recover cycles, rack partitions)
//! and the checkpoint-path circuit breaker on top of `heavy`; the
//! `pressure` profile shrinks every node's checkpoint store and leaks
//! reservations into it (keys: `cap`, `leak`, `leak-gb`, `leak-window`),
//! exercising the image-lifecycle GC → evict → spill ladder.
//! `--no-lifecycle` disables that ladder for ablation.
//!
//! The telemetry flags add **one instrumented run** of the requested
//! experiment's simulation (see `cbp_bench::telemetry_run`); without them
//! no tracing code runs at all. Unknown flags are rejected.
//!
//! `repro analyze` replays a `--trace-out` JSONL file offline through the
//! `cbp-obs` span collector and prints the same penalty analysis that
//! `--analyze` produces online — the two reports are byte-identical for
//! the same run. With `--baseline` it diffs against an archived report
//! and exits 1 on a regression verdict.

use std::fmt::Write as _;

use cbp_bench::{
    analyze_trace_collector, check_bench_files, emit_crit_extras, find_scenario, run_all,
    run_instrumented, run_one, run_scenario, standard_matrix, tiny_matrix, BenchOptions, Scale,
    TelemetryOptions, ANALYZE_TOP_K, EXPERIMENT_IDS,
};
use cbp_obs::{diff_reports, ObsReport, Tolerances, Verdict, WhatIf};

// Installed only for allocator-peak benchmarking: every BENCH json then
// reports `alloc_peak_bytes` instead of null.
#[cfg(feature = "count-alloc")]
#[global_allocator]
static ALLOC: cbp_prof::alloc::CountingAllocator = cbp_prof::alloc::CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        usage();
        return;
    }
    if args[0] == "--list" {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }
    if args[0] == "analyze" {
        analyze_cmd(&args[1..]);
        return;
    }
    if args[0] == "bench" {
        bench_cmd(&args[1..]);
        return;
    }

    let id = args[0].clone();
    let mut scale = Scale::SMALL;
    let mut seed = 42u64;
    let mut md_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut telemetry = TelemetryOptions::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("invalid --scale value"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("invalid --seed value"));
            }
            "--md" => {
                i += 1;
                md_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --md path")),
                );
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --json path")),
                );
            }
            "--trace-out" => {
                i += 1;
                telemetry.trace_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --trace-out path")),
                );
            }
            "--chrome-trace" => {
                i += 1;
                telemetry.chrome_trace = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --chrome-trace path")),
                );
            }
            "--timeseries" => {
                i += 1;
                telemetry.timeseries = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --timeseries path")),
                );
            }
            "--telemetry" => {
                telemetry.telemetry = true;
            }
            "--analyze" => {
                i += 1;
                telemetry.analyze = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --analyze path")),
                );
            }
            "--critical-path" => {
                telemetry.critical_path = true;
            }
            "--flamegraph-out" => {
                i += 1;
                telemetry.flamegraph_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --flamegraph-out path")),
                );
            }
            "--what-if" => {
                i += 1;
                let spec = args.get(i).unwrap_or_else(|| {
                    die("missing --what-if scenario (dump0|iobw-inf|faults-off)")
                });
                telemetry.what_if.push(
                    WhatIf::parse(spec)
                        .unwrap_or_else(|| die(&format!("unknown --what-if scenario '{spec}'"))),
                );
            }
            "--faults" => {
                i += 1;
                let spec = args.get(i).unwrap_or_else(|| {
                    die("missing --faults spec (off|light|heavy|chaos|key=value,...)")
                });
                telemetry.faults =
                    Some(cbp_faults::FaultSpec::parse(spec).unwrap_or_else(|e| die(&e)));
            }
            "--no-lifecycle" => {
                telemetry.no_lifecycle = true;
            }
            "--no-resume" => {
                telemetry.no_resume = true;
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    if telemetry.any() && id == "all" {
        die("telemetry flags need a single experiment id, not 'all'");
    }
    if telemetry.faults.is_some() && !telemetry.any() {
        die(
            "--faults applies to the instrumented run; add a telemetry sink \
             (--trace-out/--chrome-trace/--timeseries/--telemetry/--analyze)",
        );
    }
    if telemetry.no_lifecycle && !telemetry.any() {
        die(
            "--no-lifecycle applies to the instrumented run; add a telemetry sink \
             (--trace-out/--chrome-trace/--timeseries/--telemetry/--analyze)",
        );
    }
    if telemetry.no_resume && telemetry.faults.is_none() {
        die("--no-resume is an ablation of the fault plan's chunked resume; add --faults SPEC");
    }

    let experiments = if id == "all" {
        run_all(scale, seed)
    } else {
        match run_one(&id, scale, seed) {
            Some(e) => vec![e],
            None => die(&format!(
                "unknown experiment '{id}'; valid: all {}",
                EXPERIMENT_IDS.join(" ")
            )),
        }
    };

    for exp in &experiments {
        println!("################ {} ################", exp.id);
        println!("paper: {}\n", exp.paper_claim);
        for t in &exp.tables {
            println!("{}", t.text());
        }
    }

    if telemetry.any() {
        match run_instrumented(&id, scale, seed, &telemetry) {
            Ok(true) => {}
            Ok(false) => {
                eprintln!("warning: '{id}' is analytic (no simulation); telemetry flags ignored")
            }
            Err(e) => die(&e),
        }
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&experiments)
            .unwrap_or_else(|e| die(&format!("serialize: {e}")));
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }

    if let Some(path) = md_path {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# Reproduced experiments\n\nGenerated by `repro all --scale {} --seed {seed}`. \
             Absolute numbers come from the simulated substrates; compare *shapes* \
             (orderings, crossovers, rough factors) against the paper's anchors quoted \
             with each experiment.\n\nAll tables report *simulated* time. For the \
             simulators' own wall-clock cost — events/sec, per-scope self time, \
             the `BENCH_*.json` trajectory and its regression gate — see `repro bench` \
             (README \"Perf\" section, DESIGN.md §5.2) and the `telemetry_overhead` \
             Criterion bench's throughput report.\n",
            scale.factor
        );
        for exp in &experiments {
            out.push_str(&exp.markdown());
        }
        std::fs::write(&path, out).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}

/// `repro bench` — the wall-clock perf harness.
///
/// ```text
/// repro bench [--matrix tiny|standard] [--scenario NAME]... [--reps N]
///             [--warmup N] [--out DIR] [--profile]
/// repro bench --check <baseline.json> --candidate <candidate.json> [--tol-pct P]
/// ```
///
/// Run mode benchmarks each scenario and writes `BENCH_<scenario>.json`
/// under `--out` (default: current directory). Check mode compares two
/// BENCH files direction-aware and exits 1 on regression.
fn bench_cmd(args: &[String]) {
    let mut matrix: Option<String> = None;
    let mut scenarios: Vec<String> = Vec::new();
    let mut opts = BenchOptions::default();
    let mut out_dir = String::from(".");
    let mut profile = false;
    let mut check: Option<String> = None;
    let mut candidate: Option<String> = None;
    let mut tol_pct = 5.0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--matrix" => {
                i += 1;
                matrix = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --matrix value (tiny|standard)")),
                );
            }
            "--scenario" => {
                i += 1;
                scenarios.push(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --scenario name")),
                );
            }
            "--reps" => {
                i += 1;
                opts.reps = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| die("invalid --reps value"));
            }
            "--warmup" => {
                i += 1;
                opts.warmup = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("invalid --warmup value"));
            }
            "--out" => {
                i += 1;
                out_dir = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("missing --out dir"));
            }
            "--profile" => profile = true,
            "--check" => {
                i += 1;
                check = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --check baseline path")),
                );
            }
            "--candidate" => {
                i += 1;
                candidate = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --candidate path")),
                );
            }
            "--tol-pct" => {
                i += 1;
                tol_pct = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|p: &f64| *p >= 0.0)
                    .unwrap_or_else(|| die("invalid --tol-pct value"));
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    if let Some(baseline_path) = check {
        let candidate_path =
            candidate.unwrap_or_else(|| die("--check needs --candidate <bench.json>"));
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| die(&format!("read {baseline_path}: {e}")));
        let cand = std::fs::read_to_string(&candidate_path)
            .unwrap_or_else(|e| die(&format!("read {candidate_path}: {e}")));
        let diff = check_bench_files(&baseline, &cand, tol_pct).unwrap_or_else(|e| die(&e));
        print!("{}", diff.render());
        if diff.regressed() {
            std::process::exit(1);
        }
        return;
    }

    let selected = if !scenarios.is_empty() {
        scenarios
            .iter()
            .map(|n| {
                find_scenario(n)
                    .unwrap_or_else(|| die(&format!("unknown scenario '{n}'; see --matrix lists")))
            })
            .collect()
    } else {
        match matrix.as_deref().unwrap_or("tiny") {
            "tiny" => tiny_matrix(),
            "standard" => standard_matrix(),
            other => die(&format!("unknown matrix '{other}' (tiny|standard)")),
        }
    };

    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| die(&format!("create --out dir {out_dir}: {e}")));
    for s in &selected {
        let result = run_scenario(s, opts);
        println!("{}", result.render_line());
        if profile {
            for t in &result.top_scopes {
                println!(
                    "    {:<40} {:>10} calls  {:>9.2} ms self  {:>5.1}%",
                    t.path, t.calls, t.self_ms, t.self_pct
                );
            }
        }
        let path = format!("{out_dir}/BENCH_{}.json", s.name);
        std::fs::write(&path, result.to_json())
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}

/// `repro analyze <trace.jsonl> [--report PATH] [--baseline PATH]
/// [--tol-rel F] [--tol-abs-us F]` — offline replay of a `--trace-out`
/// file through the `cbp-obs` span collector.
fn analyze_cmd(args: &[String]) {
    let mut trace: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut tol = Tolerances::default();
    let mut crit = TelemetryOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--critical-path" => {
                crit.critical_path = true;
            }
            "--flamegraph-out" => {
                i += 1;
                crit.flamegraph_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --flamegraph-out path")),
                );
            }
            "--what-if" => {
                i += 1;
                let spec = args.get(i).unwrap_or_else(|| {
                    die("missing --what-if scenario (dump0|iobw-inf|faults-off)")
                });
                crit.what_if.push(
                    WhatIf::parse(spec)
                        .unwrap_or_else(|| die(&format!("unknown --what-if scenario '{spec}'"))),
                );
            }
            "--report" => {
                i += 1;
                report_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --report path")),
                );
            }
            "--baseline" => {
                i += 1;
                baseline_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --baseline path")),
                );
            }
            "--tol-rel" => {
                i += 1;
                tol.rel = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("invalid --tol-rel value"));
            }
            "--tol-abs-us" => {
                i += 1;
                tol.abs_us = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("invalid --tol-abs-us value"));
            }
            other if other.starts_with('-') => die(&format!("unknown argument: {other}")),
            other if trace.is_none() => trace = Some(other.to_string()),
            other => die(&format!("unexpected argument: {other}")),
        }
        i += 1;
    }
    let trace = trace.unwrap_or_else(|| die("usage: repro analyze <trace.jsonl> [...]"));
    let collector = analyze_trace_collector(&trace, crit.wants_crit()).unwrap_or_else(|e| die(&e));
    let mut report = ObsReport::build(&collector, ANALYZE_TOP_K);
    if crit.wants_crit() {
        report = report.with_crit(&collector).unwrap_or_else(|e| die(&e));
    }
    print!("{}", report.render_table());
    emit_crit_extras(&report, &collector, &crit).unwrap_or_else(|e| die(&e));
    if let Some(path) = &report_path {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &baseline_path {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        let diff = diff_reports(&baseline, &report.to_json(), tol).unwrap_or_else(|e| die(&e));
        print!("{}", diff.render());
        if diff.verdict() == Verdict::Regressed {
            std::process::exit(1);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: repro <experiment-id|all> [--scale full|small|smoke|<0..1>] [--seed N] \
         [--md PATH] [--json PATH]\n\
         \x20            [--trace-out PATH] [--chrome-trace PATH] [--timeseries PATH] [--telemetry]\n\
         \x20            [--analyze PATH] [--faults SPEC] [--no-lifecycle] [--no-resume]\n\
         \x20      repro analyze <trace.jsonl> [--report PATH] [--baseline PATH] [--tol-rel F] \
         [--tol-abs-us F]\n\
         \x20      repro bench [--matrix tiny|standard] [--scenario NAME]... [--reps N] \
         [--warmup N] [--out DIR] [--profile]\n\
         \x20      repro bench --check <baseline.json> --candidate <candidate.json> [--tol-pct P]\n\
         \n\
         perf harness (wall-clock; writes schema-versioned BENCH_<scenario>.json):\n\
         \x20 --matrix tiny        one smoke scenario per simulator (default; CI)\n\
         \x20 --matrix standard    both simulators x small/large x faults off/light\n\
         \x20 --profile            also print the top self-time scopes per scenario\n\
         \x20 --check/--candidate  compare two BENCH files direction-aware; exit 1 on\n\
         \x20                      regression (wall/alloc up or events/s down > --tol-pct)\n\
         \n\
         telemetry flags (single experiment only; one extra instrumented run):\n\
         \x20 --trace-out PATH     structured JSONL trace ({{\"t_us\":..,\"event\":..}} per line)\n\
         \x20 --chrome-trace PATH  Chrome/Perfetto trace.json (open at https://ui.perfetto.dev)\n\
         \x20 --timeseries PATH    columnar time-series JSON (utilization, queue depth, ...)\n\
         \x20 --telemetry          print the `subsystem.metric` registry and engine throughput\n\
         \x20 --analyze PATH       write the cbp-obs blame/penalty report and print its tables\n\
         \x20 --critical-path      extract per-job critical paths; print the attribution table\n\
         \x20                      (the report JSON gains a \"crit\" section)\n\
         \x20 --flamegraph-out P   write critical paths as inferno folded stacks (implies\n\
         \x20                      --critical-path; render with inferno-flamegraph < P)\n\
         \x20 --what-if SCENARIO   predict per-band p95 responses under a counterfactual\n\
         \x20                      (dump0|iobw-inf|faults-off; repeatable; implies --critical-path)\n\
         \x20 --faults SPEC        attach a deterministic fault plan to the instrumented run\n\
         \x20                      (off|light|heavy|chaos|pressure, tunable:\n\
         \x20                      heavy,seed=7,dump=0.3,stall=0.2)\n\
         \x20                      chaos adds failure domains + the checkpoint-path breaker; keys:\n\
         \x20                      crash, rack, downtime, crash-window, partition, penalty,\n\
         \x20                      partition-window, rack-size, breaker, breaker-min,\n\
         \x20                      breaker-cooldown, breaker-decay\n\
         \x20                      pressure shrinks checkpoint stores and leaks reservations;\n\
         \x20                      keys: cap, leak, leak-gb, leak-window\n\
         \x20 --no-lifecycle       disable the image-lifecycle ladder (GC -> evict -> spill)\n\
         \x20                      for the instrumented run (ablation baseline)\n\
         \x20 --no-resume          disable chunked resumable transfers + targeted repair\n\
         \x20                      (failed dumps rewrite from byte zero, corrupt images are\n\
         \x20                      total losses; requires --faults; same as resume=false)\n\
         \x20                      integrity keys on --faults: chunk-mb=N, resume=true|false\n\
         \n\
         offline analysis (replays a --trace-out file; byte-identical to --analyze,\n\
         also accepts --critical-path / --flamegraph-out / --what-if):\n\
         \x20 --report PATH        write the report JSON (archive as a baseline)\n\
         \x20 --baseline PATH      diff against an archived report; exit 1 on regression\n\
         \x20 --tol-rel F          relative tolerance for the diff (default 0.05)\n\
         \x20 --tol-abs-us F       absolute tolerance for *_us keys (default 1000)\n\
         \n\
         experiments: all {}",
        EXPERIMENT_IDS.join(" ")
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
