//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment-id|all> [--scale full|small|smoke|<0..1>] [--seed N] [--md PATH] [--json PATH]
//!       [--trace-out PATH] [--chrome-trace PATH] [--timeseries PATH] [--telemetry]
//!       [--analyze PATH] [--faults SPEC]
//! repro analyze <trace.jsonl> [--report PATH] [--baseline PATH] [--tol-rel F] [--tol-abs-us F]
//! ```
//!
//! Experiment ids: fig1 table1 table2 fig2 table3 fig3 fig4 fig5 fig6
//! fig8 fig9 fig10 fig11 fig12 ablate mapreduce qos faults.
//!
//! `--faults SPEC` attaches a deterministic fault plan (a chaos profile
//! `off`/`light`/`heavy`, optionally tuned: `heavy,seed=7,dump=0.3`) to
//! the instrumented run, so chaos runs can be traced, analyzed, and
//! replayed byte-identically.
//!
//! The telemetry flags add **one instrumented run** of the requested
//! experiment's simulation (see `cbp_bench::telemetry_run`); without them
//! no tracing code runs at all. Unknown flags are rejected.
//!
//! `repro analyze` replays a `--trace-out` JSONL file offline through the
//! `cbp-obs` span collector and prints the same penalty analysis that
//! `--analyze` produces online — the two reports are byte-identical for
//! the same run. With `--baseline` it diffs against an archived report
//! and exits 1 on a regression verdict.

use std::fmt::Write as _;

use cbp_bench::{
    analyze_trace_file, run_all, run_instrumented, run_one, Scale, TelemetryOptions, ANALYZE_TOP_K,
    EXPERIMENT_IDS,
};
use cbp_obs::{diff_reports, Tolerances, Verdict};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        usage();
        return;
    }
    if args[0] == "--list" {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }
    if args[0] == "analyze" {
        analyze_cmd(&args[1..]);
        return;
    }

    let id = args[0].clone();
    let mut scale = Scale::SMALL;
    let mut seed = 42u64;
    let mut md_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut telemetry = TelemetryOptions::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("invalid --scale value"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("invalid --seed value"));
            }
            "--md" => {
                i += 1;
                md_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --md path")),
                );
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --json path")),
                );
            }
            "--trace-out" => {
                i += 1;
                telemetry.trace_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --trace-out path")),
                );
            }
            "--chrome-trace" => {
                i += 1;
                telemetry.chrome_trace = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --chrome-trace path")),
                );
            }
            "--timeseries" => {
                i += 1;
                telemetry.timeseries = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --timeseries path")),
                );
            }
            "--telemetry" => {
                telemetry.telemetry = true;
            }
            "--analyze" => {
                i += 1;
                telemetry.analyze = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --analyze path")),
                );
            }
            "--faults" => {
                i += 1;
                let spec = args.get(i).unwrap_or_else(|| {
                    die("missing --faults spec (off|light|heavy|key=value,...)")
                });
                telemetry.faults =
                    Some(cbp_faults::FaultSpec::parse(spec).unwrap_or_else(|e| die(&e)));
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    if telemetry.any() && id == "all" {
        die("telemetry flags need a single experiment id, not 'all'");
    }
    if telemetry.faults.is_some() && !telemetry.any() {
        die(
            "--faults applies to the instrumented run; add a telemetry sink \
             (--trace-out/--chrome-trace/--timeseries/--telemetry/--analyze)",
        );
    }

    let experiments = if id == "all" {
        run_all(scale, seed)
    } else {
        match run_one(&id, scale, seed) {
            Some(e) => vec![e],
            None => die(&format!(
                "unknown experiment '{id}'; valid: all {}",
                EXPERIMENT_IDS.join(" ")
            )),
        }
    };

    for exp in &experiments {
        println!("################ {} ################", exp.id);
        println!("paper: {}\n", exp.paper_claim);
        for t in &exp.tables {
            println!("{}", t.text());
        }
    }

    if telemetry.any() {
        match run_instrumented(&id, scale, seed, &telemetry) {
            Ok(true) => {}
            Ok(false) => {
                eprintln!("warning: '{id}' is analytic (no simulation); telemetry flags ignored")
            }
            Err(e) => die(&e),
        }
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&experiments)
            .unwrap_or_else(|e| die(&format!("serialize: {e}")));
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }

    if let Some(path) = md_path {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# Reproduced experiments\n\nGenerated by `repro all --scale {} --seed {seed}`. \
             Absolute numbers come from the simulated substrates; compare *shapes* \
             (orderings, crossovers, rough factors) against the paper's anchors quoted \
             with each experiment.\n",
            scale.factor
        );
        for exp in &experiments {
            out.push_str(&exp.markdown());
        }
        std::fs::write(&path, out).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}

/// `repro analyze <trace.jsonl> [--report PATH] [--baseline PATH]
/// [--tol-rel F] [--tol-abs-us F]` — offline replay of a `--trace-out`
/// file through the `cbp-obs` span collector.
fn analyze_cmd(args: &[String]) {
    let mut trace: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut tol = Tolerances::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--report" => {
                i += 1;
                report_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --report path")),
                );
            }
            "--baseline" => {
                i += 1;
                baseline_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("missing --baseline path")),
                );
            }
            "--tol-rel" => {
                i += 1;
                tol.rel = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("invalid --tol-rel value"));
            }
            "--tol-abs-us" => {
                i += 1;
                tol.abs_us = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("invalid --tol-abs-us value"));
            }
            other if other.starts_with('-') => die(&format!("unknown argument: {other}")),
            other if trace.is_none() => trace = Some(other.to_string()),
            other => die(&format!("unexpected argument: {other}")),
        }
        i += 1;
    }
    let trace = trace.unwrap_or_else(|| die("usage: repro analyze <trace.jsonl> [...]"));
    let report = analyze_trace_file(&trace, ANALYZE_TOP_K).unwrap_or_else(|e| die(&e));
    print!("{}", report.render_table());
    if let Some(path) = &report_path {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &baseline_path {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        let diff = diff_reports(&baseline, &report.to_json(), tol).unwrap_or_else(|e| die(&e));
        print!("{}", diff.render());
        if diff.verdict() == Verdict::Regressed {
            std::process::exit(1);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: repro <experiment-id|all> [--scale full|small|smoke|<0..1>] [--seed N] \
         [--md PATH] [--json PATH]\n\
         \x20            [--trace-out PATH] [--chrome-trace PATH] [--timeseries PATH] [--telemetry]\n\
         \x20            [--analyze PATH] [--faults SPEC]\n\
         \x20      repro analyze <trace.jsonl> [--report PATH] [--baseline PATH] [--tol-rel F] \
         [--tol-abs-us F]\n\
         \n\
         telemetry flags (single experiment only; one extra instrumented run):\n\
         \x20 --trace-out PATH     structured JSONL trace ({{\"t_us\":..,\"event\":..}} per line)\n\
         \x20 --chrome-trace PATH  Chrome/Perfetto trace.json (open at https://ui.perfetto.dev)\n\
         \x20 --timeseries PATH    columnar time-series JSON (utilization, queue depth, ...)\n\
         \x20 --telemetry          print the `subsystem.metric` registry and engine throughput\n\
         \x20 --analyze PATH       write the cbp-obs blame/penalty report and print its tables\n\
         \x20 --faults SPEC        attach a deterministic fault plan to the instrumented run\n\
         \x20                      (off|light|heavy, tunable: heavy,seed=7,dump=0.3,stall=0.2)\n\
         \n\
         offline analysis (replays a --trace-out file; byte-identical to --analyze):\n\
         \x20 --report PATH        write the report JSON (archive as a baseline)\n\
         \x20 --baseline PATH      diff against an archived report; exit 1 on regression\n\
         \x20 --tol-rel F          relative tolerance for the diff (default 0.05)\n\
         \x20 --tol-abs-us F       absolute tolerance for *_us keys (default 1000)\n\
         \n\
         experiments: all {}",
        EXPERIMENT_IDS.join(" ")
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
