//! Result tables and markdown rendering.

use std::fmt::Write as _;

use serde::Serialize;

/// One table or figure-series of results.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Paper artifact id (`fig3a`, `table1`, ...).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes, including the paper's anchor observations.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates a table with headers.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders as a GitHub-flavored markdown table with notes.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for n in &self.notes {
                let _ = writeln!(out, "- {n}");
            }
        }
        out
    }

    /// Renders as an aligned plain-text table for the terminal.
    pub fn text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", header.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", cells.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

/// A complete experiment: one or more tables plus the paper's headline
/// expectation.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment {
    /// Experiment id (`fig3`, `table3`, ...).
    pub id: String,
    /// What the paper claims this artifact shows.
    pub paper_claim: String,
    /// The reproduced tables.
    pub tables: Vec<Table>,
}

impl Experiment {
    /// Creates an experiment shell.
    pub fn new(id: impl Into<String>, paper_claim: impl Into<String>) -> Self {
        Experiment {
            id: id.into(),
            paper_claim: paper_claim.into(),
            tables: Vec::new(),
        }
    }

    /// Adds a table.
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Markdown section for EXPERIMENTS.md.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.id);
        let _ = writeln!(out, "**Paper:** {}\n", self.paper_claim);
        for t in &self.tables {
            out.push_str(&t.markdown());
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn fmt(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a fraction as a percentage.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t1", "Sample", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("a note");
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().markdown();
        assert!(md.contains("### t1 — Sample"));
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("- a note"));
    }

    #[test]
    fn text_alignment() {
        let txt = sample().text();
        assert!(txt.contains("== t1 — Sample"));
        assert!(txt.contains("a  bb"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("t", "t", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn experiment_markdown() {
        let mut e = Experiment::new("fig0", "claim");
        e.push(sample());
        let md = e.markdown();
        assert!(md.starts_with("## fig0"));
        assert!(md.contains("**Paper:** claim"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.2345, 2), "1.23");
        assert_eq!(pct(0.123), "12.3%");
    }
}
