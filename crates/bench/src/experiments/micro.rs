//! §3.3.1 microbenchmarks: Fig. 2 (suspend/restore vs size) and Table 3
//! (incremental checkpointing).

use cbp_checkpoint::{Criu, TaskMemory};
use cbp_dfs::{DfsCluster, DfsConfig, DnId};
use cbp_simkit::units::ByteSize;
use cbp_simkit::SimTime;
use cbp_storage::{Device, MediaSpec};

use crate::table::{fmt, Experiment, Table};

const SIZES_GB: [f64; 6] = [0.5, 1.0, 2.5, 5.0, 7.5, 10.0];

/// Fig. 2a/2b: total dump+restore time vs image size, local FS and HDFS.
pub fn fig2() -> Experiment {
    let mut exp = Experiment::new(
        "fig2",
        "suspend+restore time is linear in memory size; SSD is 3-4x faster \
         than HDD and NVM 10-15x faster than SSD; HDFS adds overhead over \
         the local file system on every medium",
    );

    let mut fig2a = Table::new(
        "fig2a",
        "Local FS: total dump+restore time [s] vs checkpoint size",
        &["size [GB]", "HDD", "SSD", "NVM"],
    );
    for gb in SIZES_GB {
        let size = ByteSize::from_gb_f64(gb);
        let mut cells = vec![fmt(gb, 1)];
        for spec in [MediaSpec::hdd(), MediaSpec::ssd(), MediaSpec::nvm()] {
            cells.push(fmt(spec.round_trip_time(size).as_secs_f64(), 1));
        }
        fig2a.row(cells);
    }
    {
        let hdd = MediaSpec::hdd()
            .round_trip_time(ByteSize::from_gb(10))
            .as_secs_f64();
        let ssd = MediaSpec::ssd()
            .round_trip_time(ByteSize::from_gb(10))
            .as_secs_f64();
        let nvm = MediaSpec::nvm()
            .round_trip_time(ByteSize::from_gb(10))
            .as_secs_f64();
        fig2a.note(format!(
            "ratios at 10 GB: HDD/SSD = {:.1}x (paper 3-4x), SSD/NVM = {:.1}x (paper 10-15x)",
            hdd / ssd,
            ssd / nvm
        ));
    }
    exp.push(fig2a);

    let mut fig2b = Table::new(
        "fig2b",
        "HDFS: total dump+restore time [s] vs checkpoint size (remote reader)",
        &["size [GB]", "HDD", "SSD", "PMFS"],
    );
    for gb in SIZES_GB {
        let size = ByteSize::from_gb_f64(gb);
        let mut cells = vec![fmt(gb, 1)];
        for media in [MediaSpec::hdd(), MediaSpec::ssd(), MediaSpec::nvm()] {
            let mut dfs = DfsCluster::homogeneous(DfsConfig::default(), media, 4, 11);
            let write = dfs
                .create("/img", size, DnId(0))
                .expect("fresh path")
                .duration;
            // Restore on another node, as remote resume does.
            let read = dfs.read_cost("/img", DnId(1)).expect("exists").duration;
            cells.push(fmt((write + read).as_secs_f64(), 1));
        }
        fig2b.row(cells);
    }
    fig2b.note("paper: HDFS takes more time than the local FS but enables restore on any node");
    exp.push(fig2b);

    exp
}

/// Table 3: first (full) vs second (incremental, 10% dirty) checkpoint of a
/// 5 GB program.
pub fn table3() -> Experiment {
    let mut exp = Experiment::new(
        "table3",
        "with 10% of memory modified, the second (incremental) checkpoint is \
         about an order of magnitude faster: 169.18->15.34 s (HDD), \
         43.73->4.08 s (SSD), 2.92->0.28 s (PMFS)",
    );
    let mut t = Table::new(
        "table3",
        "Benefits of incremental checkpointing (5 GB task, 10% dirtied)",
        &[
            "storage",
            "first checkpoint [s]",
            "second checkpoint [s]",
            "paper first",
            "paper second",
        ],
    );
    let paper = [
        ("HDD", 169.18, 15.34),
        ("SSD", 43.73, 4.08),
        ("PMFS", 2.92, 0.28),
    ];
    for (spec, (label, p1, p2)) in [MediaSpec::hdd(), MediaSpec::ssd(), MediaSpec::nvm()]
        .into_iter()
        .zip(paper)
    {
        let mut criu = Criu::new(true);
        let mut dev = Device::new(spec);
        let mut mem = TaskMemory::new(ByteSize::from_gb(5));
        let d1 = criu
            .dump(1, &mut mem, 0, &mut dev, SimTime::ZERO)
            .expect("capacity suffices");
        mem.touch_fraction(0.10);
        dev.on_advance(SimTime::from_secs(10_000));
        let d2 = criu
            .dump(1, &mut mem, 0, &mut dev, SimTime::from_secs(10_000))
            .expect("capacity suffices");
        t.row(vec![
            label.to_string(),
            fmt(d1.op.end.since(d1.op.start).as_secs_f64(), 2),
            fmt(d2.op.end.since(d2.op.start).as_secs_f64(), 2),
            fmt(p1, 2),
            fmt(p2, 2),
        ]);
    }
    exp.push(t);
    exp
}
