//! QoS by latency-sensitivity class — the concern behind the paper's
//! Table 2: "a large number of highest latency-sensitive tasks (14.8%) were
//! still preempted. This can have a significantly negative impact on task
//! performance and application QoS."

use cbp_core::PreemptionPolicy;
use cbp_storage::MediaKind;
use cbp_workload::LatencyClass;

use crate::table::{fmt, Experiment, Table};
use crate::Scale;

use super::google_setup;

/// Mean response per latency class under each policy, normalized to Kill.
pub fn qos(scale: Scale, seed: u64) -> Experiment {
    let (workload, base) = google_setup(scale, seed);
    let kill = base
        .clone()
        .with_policy(PreemptionPolicy::Kill)
        .run(&workload);

    let mut exp = Experiment::new(
        "qos",
        "(extension of Table 2's observation) latency-sensitive jobs suffer \
         most from kill-based preemption; checkpointing on fast storage \
         restores their response times",
    );

    let mut t = Table::new(
        "qos",
        "Mean response per latency class, normalized to Kill",
        &["policy", "class 0", "class 1", "class 2", "class 3"],
    );
    t.row(vec![
        "Kill".into(),
        "1.00".into(),
        "1.00".into(),
        "1.00".into(),
        "1.00".into(),
    ]);
    for (label, policy, media) in [
        ("Chk-HDD", PreemptionPolicy::Checkpoint, MediaKind::Hdd),
        ("Chk-NVM", PreemptionPolicy::Checkpoint, MediaKind::Nvm),
        ("Adaptive-NVM", PreemptionPolicy::Adaptive, MediaKind::Nvm),
    ] {
        let report = base
            .clone()
            .with_policy(policy)
            .with_media(media.spec())
            .run(&workload);
        let mut cells = vec![label.to_string()];
        for class in LatencyClass::ALL {
            let k = kill.metrics.mean_response_latency(class);
            let v = report.metrics.mean_response_latency(class);
            cells.push(if k == 0.0 { "-".into() } else { fmt(v / k, 2) });
        }
        t.row(cells);
    }
    t.note("paper Table 2: even the most latency-sensitive class saw 14.8% preemption under kill");
    exp.push(t);
    exp
}
