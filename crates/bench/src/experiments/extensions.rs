//! Extension experiments beyond the paper's evaluation: the §7 future-work
//! items implemented in this repository.

use cbp_core::PreemptionPolicy;
use cbp_faults::FaultSpec;
use cbp_storage::MediaKind;
use cbp_workload::mapreduce::MapReduceConfig;
use cbp_yarn::YarnConfig;

use crate::experiments::google_setup;
use crate::table::{fmt, Experiment, Table};
use crate::Scale;

/// MapReduce under checkpoint-based preemption: the reduce barrier
/// amplifies the cost of killing maps.
pub fn mapreduce(scale: Scale, seed: u64) -> Experiment {
    let plan = MapReduceConfig {
        jobs: scale.apply(24, 8),
        ..Default::default()
    }
    .generate(seed);
    let nodes = scale.apply(8, 2);

    let mut exp = Experiment::new(
        "mapreduce",
        "(extension; paper §7 future work) two-phase MapReduce jobs: reduces \
         wait for every map, so killed maps delay whole jobs; suspend-resume \
         keeps the barrier moving",
    );

    let mut t = Table::new(
        "mapreduce",
        "MapReduce jobs under each preemption policy",
        &[
            "policy",
            "wasted core-h",
            "mean low [min]",
            "mean high [min]",
            "kills",
            "checkpoints",
        ],
    );
    for (policy, media) in [
        (PreemptionPolicy::Kill, MediaKind::Ssd),
        (PreemptionPolicy::Checkpoint, MediaKind::Ssd),
        (PreemptionPolicy::Checkpoint, MediaKind::Nvm),
        (PreemptionPolicy::Adaptive, MediaKind::Nvm),
    ] {
        let mut cfg = YarnConfig::paper_cluster(policy, media);
        cfg.nodes = nodes;
        let r = cfg.run_mapreduce(&plan);
        let label = if policy == PreemptionPolicy::Kill {
            "Kill (stock)".to_string()
        } else {
            format!("{policy}-{media}")
        };
        t.row(vec![
            label,
            fmt(r.wasted_cpu_hours(), 2),
            fmt(r.mean_low_response() / 60.0, 1),
            fmt(r.mean_high_response() / 60.0, 1),
            r.kills.to_string(),
            r.checkpoints.to_string(),
        ]);
    }
    t.note(format!(
        "{} jobs: {} maps + {} reduces on {} nodes",
        plan.workload.job_count(),
        plan.map_count(),
        plan.reduce_count(),
        nodes
    ));
    exp.push(t);

    // The NM grace-period ablation: stock YARN's short grace vs the
    // generous grace the paper's AM-side handling implies.
    let mut grace = Table::new(
        "mapreduce-grace",
        "NodeManager grace period vs checkpointing viability (Chk, MapReduce)",
        &[
            "grace",
            "medium",
            "checkpoints",
            "force-kills",
            "wasted core-h",
        ],
    );
    for (label, secs) in [("5 s (stock)", 5u64), ("10 min", 600)] {
        for media in [MediaKind::Hdd, MediaKind::Nvm] {
            let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Checkpoint, media);
            cfg.nodes = nodes;
            let r = cfg
                .with_graceful_timeout(cbp_simkit::SimDuration::from_secs(secs))
                .run_mapreduce(&plan);
            grace.row(vec![
                label.to_string(),
                media.to_string(),
                r.checkpoints.to_string(),
                r.force_kills.to_string(),
                fmt(r.wasted_cpu_hours(), 2),
            ]);
        }
    }
    grace.note("a stock-YARN grace aborts slow-media dumps; fast NVM dumps mostly fit");
    exp.push(grace);

    exp
}

/// Fault-plan sensitivity: deterministic chaos (dump/restore failures,
/// corrupted images, device stall windows) against each preemption
/// policy. The recovery policies — bounded dump retries with
/// kill-fallback, restore retries with scratch-restart — keep every job
/// finishing; the table shows where their cost lands in the waste ledger
/// and whether checkpointing keeps its win as faults intensify.
pub fn faults(scale: Scale, seed: u64) -> Experiment {
    let (workload, base) = google_setup(scale, seed);
    let mut exp = Experiment::new(
        "faults",
        "(extension; robustness) checkpointing's CPU-waste win over kill-based \
         preemption must survive an imperfect substrate: failed dumps fall back \
         to kills, failed restores retry from surviving replicas or restart from \
         scratch, and every retry is charged to the waste ledger",
    );

    let mut t = Table::new(
        "faults",
        "Fault-plan sensitivity (trace-driven sim, HDD checkpoints)",
        &[
            "policy",
            "plan",
            "wasted core-h",
            "retry core-h",
            "dump retries",
            "dump kills",
            "scratch restarts",
            "mean resp [min]",
        ],
    );
    let plans: [(&str, Option<FaultSpec>); 3] = [
        ("off", None),
        (
            "light",
            Some(FaultSpec {
                seed,
                ..FaultSpec::light()
            }),
        ),
        (
            "heavy",
            Some(FaultSpec {
                seed,
                ..FaultSpec::heavy()
            }),
        ),
    ];
    for policy in [
        PreemptionPolicy::Kill,
        PreemptionPolicy::Checkpoint,
        PreemptionPolicy::Adaptive,
    ] {
        for (label, plan) in &plans {
            let mut cfg = base.clone().with_policy(policy);
            if let Some(spec) = plan {
                cfg = cfg.with_faults(spec.clone());
            }
            let r = cfg.run(&workload);
            let m = &r.metrics;
            assert_eq!(
                m.jobs_finished,
                workload.job_count() as u64,
                "{policy}/{label}: chaos stranded jobs"
            );
            t.row(vec![
                policy.to_string(),
                label.to_string(),
                fmt(m.wasted_cpu_hours(), 2),
                fmt(m.retry_overhead_cpu_hours, 2),
                m.dump_fail_retries.to_string(),
                m.dump_fail_kills.to_string(),
                m.scratch_restarts.to_string(),
                fmt(m.mean_response_overall() / 60.0, 1),
            ]);
        }
    }
    t.note(
        "same (workload seed, plan seed) everywhere; Kill ignores dump/restore \
         faults by construction, so its rows isolate the stall-window effect",
    );
    exp.push(t);

    // AM-unresponsiveness escalation on the protocol simulator: as the
    // probability that an AM ignores ContainerPreemptEvents rises, the
    // RM's escalation deadline converts would-be checkpoints into kills.
    let nodes = scale.apply(8, 2);
    let mut am = Table::new(
        "faults-am",
        "AM unresponsiveness vs RM escalation (YARN protocol sim, Chk-HDD)",
        &[
            "P(AM ignores)",
            "checkpoints",
            "kills",
            "escalations",
            "wasted core-h",
        ],
    );
    let fb_workload = cbp_workload::facebook::FacebookConfig {
        jobs: scale.apply(40, 10),
        total_tasks: scale.apply(7_000, 260),
        giant_job_tasks: nodes * 24 * 13 / 10,
        ..Default::default()
    }
    .generate(seed);
    for p in [0.0, 0.25, 1.0] {
        let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Checkpoint, MediaKind::Hdd);
        cfg.nodes = nodes;
        let r = cfg
            .with_faults(FaultSpec {
                seed,
                am_unresponsive_prob: p,
                ..FaultSpec::default()
            })
            .run(&fb_workload);
        am.row(vec![
            format!("{p:.2}"),
            r.checkpoints.to_string(),
            r.kills.to_string(),
            r.am_escalations.to_string(),
            fmt(r.wasted_cpu_hours(), 2),
        ]);
    }
    am.note("an ignored preemption request frees its slot only via the escalation kill");
    exp.push(am);

    exp
}
