//! Extension experiments beyond the paper's evaluation: the §7 future-work
//! items implemented in this repository.

use cbp_core::PreemptionPolicy;
use cbp_storage::MediaKind;
use cbp_workload::mapreduce::MapReduceConfig;
use cbp_yarn::YarnConfig;

use crate::table::{fmt, Experiment, Table};
use crate::Scale;

/// MapReduce under checkpoint-based preemption: the reduce barrier
/// amplifies the cost of killing maps.
pub fn mapreduce(scale: Scale, seed: u64) -> Experiment {
    let plan = MapReduceConfig {
        jobs: scale.apply(24, 8),
        ..Default::default()
    }
    .generate(seed);
    let nodes = scale.apply(8, 2);

    let mut exp = Experiment::new(
        "mapreduce",
        "(extension; paper §7 future work) two-phase MapReduce jobs: reduces \
         wait for every map, so killed maps delay whole jobs; suspend-resume \
         keeps the barrier moving",
    );

    let mut t = Table::new(
        "mapreduce",
        "MapReduce jobs under each preemption policy",
        &[
            "policy",
            "wasted core-h",
            "mean low [min]",
            "mean high [min]",
            "kills",
            "checkpoints",
        ],
    );
    for (policy, media) in [
        (PreemptionPolicy::Kill, MediaKind::Ssd),
        (PreemptionPolicy::Checkpoint, MediaKind::Ssd),
        (PreemptionPolicy::Checkpoint, MediaKind::Nvm),
        (PreemptionPolicy::Adaptive, MediaKind::Nvm),
    ] {
        let mut cfg = YarnConfig::paper_cluster(policy, media);
        cfg.nodes = nodes;
        let r = cfg.run_mapreduce(&plan);
        let label = if policy == PreemptionPolicy::Kill {
            "Kill (stock)".to_string()
        } else {
            format!("{policy}-{media}")
        };
        t.row(vec![
            label,
            fmt(r.wasted_cpu_hours(), 2),
            fmt(r.mean_low_response() / 60.0, 1),
            fmt(r.mean_high_response() / 60.0, 1),
            r.kills.to_string(),
            r.checkpoints.to_string(),
        ]);
    }
    t.note(format!(
        "{} jobs: {} maps + {} reduces on {} nodes",
        plan.workload.job_count(),
        plan.map_count(),
        plan.reduce_count(),
        nodes
    ));
    exp.push(t);

    // The NM grace-period ablation: stock YARN's short grace vs the
    // generous grace the paper's AM-side handling implies.
    let mut grace = Table::new(
        "mapreduce-grace",
        "NodeManager grace period vs checkpointing viability (Chk, MapReduce)",
        &[
            "grace",
            "medium",
            "checkpoints",
            "force-kills",
            "wasted core-h",
        ],
    );
    for (label, secs) in [("5 s (stock)", 5u64), ("10 min", 600)] {
        for media in [MediaKind::Hdd, MediaKind::Nvm] {
            let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Checkpoint, media);
            cfg.nodes = nodes;
            let r = cfg
                .with_graceful_timeout(cbp_simkit::SimDuration::from_secs(secs))
                .run_mapreduce(&plan);
            grace.row(vec![
                label.to_string(),
                media.to_string(),
                r.checkpoints.to_string(),
                r.force_kills.to_string(),
                fmt(r.wasted_cpu_hours(), 2),
            ]);
        }
    }
    grace.note("a stock-YARN grace aborts slow-media dumps; fast NVM dumps mostly fit");
    exp.push(grace);

    exp
}
