//! Ablations of the design choices DESIGN.md calls out: incremental
//! checkpointing, cost-aware victim selection, and cost-aware restore
//! placement.

use cbp_core::{PreemptionPolicy, QueueDiscipline, RestorePlacement, SimConfig, VictimSelection};
use cbp_simkit::SimDuration;
use cbp_storage::MediaKind;
use cbp_workload::PriorityBand;

use crate::table::{fmt, Experiment, Table};
use crate::Scale;

use super::google_setup;

/// Runs all three ablations on the (scaled) one-day trace.
pub fn ablations(scale: Scale, seed: u64) -> Experiment {
    let (workload, base) = google_setup(scale, seed);
    let base = base
        .with_policy(PreemptionPolicy::Checkpoint)
        .with_media(MediaKind::Hdd.spec());

    let mut exp = Experiment::new(
        "ablate",
        "each adaptive-machinery piece carries its weight: incremental dumps \
         shrink checkpoint overhead, cost-aware eviction picks cheaper \
         victims, and cost-aware restore placement unblocks suspended tasks",
    );

    let cfg = |f: &dyn Fn(SimConfig) -> SimConfig| f(base.clone()).run(&workload);

    // (a) Incremental checkpointing.
    {
        let on = cfg(&|c| c.with_incremental(true));
        let off = cfg(&|c| c.with_incremental(false));
        let mut t = Table::new(
            "ablate-incremental",
            "Incremental (soft-dirty) checkpointing, Chk-HDD",
            &[
                "variant",
                "dump overhead [core-h]",
                "incremental dumps",
                "mean response low [s]",
            ],
        );
        for (label, r) in [("on", &on), ("off", &off)] {
            t.row(vec![
                label.into(),
                fmt(r.metrics.dump_overhead_cpu_hours, 2),
                r.metrics.incremental_checkpoints.to_string(),
                fmt(r.metrics.mean_response(PriorityBand::Free), 0),
            ]);
        }
        exp.push(t);
    }

    // (b) Victim selection.
    {
        let aware = cfg(&|c| c.with_victim_selection(VictimSelection::CostAware));
        let naive = cfg(&|c| c.with_victim_selection(VictimSelection::Naive));
        let mut t = Table::new(
            "ablate-victims",
            "Victim selection under checkpoint-based preemption, Chk-HDD",
            &[
                "variant",
                "wasted core-h",
                "checkpoints",
                "mean response high [s]",
            ],
        );
        for (label, r) in [("cost-aware", &aware), ("naive", &naive)] {
            t.row(vec![
                label.into(),
                fmt(r.metrics.wasted_cpu_hours(), 2),
                r.metrics.checkpoints.to_string(),
                fmt(r.metrics.mean_response(PriorityBand::Production), 0),
            ]);
        }
        exp.push(t);
    }

    // (c') NVM: PMFS file-system path vs NVRAM persistent-memory path
    // (the paper's §3.2.3 alternative / §7 future work).
    {
        let nvm_base = base.clone().with_media(MediaKind::Nvm.spec());
        let pmfs = nvm_base.clone().run(&workload);
        let nvram = nvm_base
            .with_nvram(cbp_checkpoint::NvramSpec::default())
            .run(&workload);
        let mut t = Table::new(
            "ablate-nvram",
            "NVM as file system (PMFS) vs NVM as persistent memory (NVRAM)",
            &[
                "variant",
                "chk overhead [core-h]",
                "restores",
                "remote restores",
                "device busy",
            ],
        );
        for (label, r) in [("PMFS files", &pmfs), ("NVRAM shadow", &nvram)] {
            t.row(vec![
                label.into(),
                fmt(
                    r.metrics.dump_overhead_cpu_hours + r.metrics.restore_overhead_cpu_hours,
                    3,
                ),
                r.metrics.restores.to_string(),
                r.metrics.remote_restores.to_string(),
                crate::table::pct(r.metrics.io_overhead_fraction),
            ]);
        }
        t.note(
            "NVRAM avoids serialization and lazy-restores from the local \
             mirror, at the cost of losing remote resumption",
        );
        exp.push(t);
    }

    // (c'') Checkpoint-image compression.
    {
        let plain = cfg(&|c| c);
        let lz4 = cfg(&|c| c.with_compression(cbp_checkpoint::CompressionSpec::lz4()));
        let zstd = cfg(&|c| c.with_compression(cbp_checkpoint::CompressionSpec::zstd()));
        let mut t = Table::new(
            "ablate-compression",
            "Checkpoint-image stream compression, Chk-HDD",
            &[
                "variant",
                "chk overhead [core-h]",
                "mean response low [s]",
                "peak storage",
            ],
        );
        for (label, r) in [("none", &plain), ("lz4", &lz4), ("zstd", &zstd)] {
            t.row(vec![
                label.into(),
                fmt(
                    r.metrics.dump_overhead_cpu_hours + r.metrics.restore_overhead_cpu_hours,
                    2,
                ),
                fmt(r.metrics.mean_response(PriorityBand::Free), 0),
                crate::table::pct(r.metrics.storage_peak_fraction),
            ]);
        }
        t.note("compression trades compressor throughput for smaller, faster images on slow media");
        exp.push(t);
    }

    // (d) Node failures: HDFS replication keeps checkpoint images alive.
    {
        let flaky = base
            .clone()
            .with_failures(SimDuration::from_secs(3_600), SimDuration::from_secs(300));
        let kill = flaky
            .clone()
            .with_policy(PreemptionPolicy::Kill)
            .run(&workload);
        let chk = flaky.run(&workload);
        let mut t = Table::new(
            "ablate-failures",
            "Node failures (MTBF 1 h/node): kill vs checkpoint, Chk-HDD",
            &[
                "variant",
                "failure evictions",
                "images lost",
                "lost CPU [core-h]",
                "jobs finished",
            ],
        );
        for (label, r) in [("Kill", &kill), ("Checkpoint+HDFS", &chk)] {
            t.row(vec![
                label.into(),
                r.metrics.failure_evictions.to_string(),
                r.metrics.images_lost_to_failures.to_string(),
                fmt(r.metrics.kill_lost_cpu_hours, 2),
                r.metrics.jobs_finished.to_string(),
            ]);
        }
        t.note("replicated checkpoints turn a machine failure into a resume, not a rerun");
        exp.push(t);
    }

    // (e) Queue discipline within a priority.
    {
        let fifo = cfg(&|c| c.with_queue_discipline(QueueDiscipline::Fifo));
        let fair = cfg(&|c| c.with_queue_discipline(QueueDiscipline::Fair));
        let mut t = Table::new(
            "ablate-discipline",
            "Intra-priority queue discipline, Chk-HDD",
            &[
                "variant",
                "mean response low [s]",
                "mean response overall [s]",
            ],
        );
        for (label, r) in [("fifo", &fifo), ("fair", &fair)] {
            t.row(vec![
                label.into(),
                fmt(r.metrics.mean_response(PriorityBand::Free), 0),
                fmt(r.metrics.mean_response_overall(), 0),
            ]);
        }
        exp.push(t);
    }

    // (c) Restore placement.
    {
        let aware = cfg(&|c| c.with_restore_placement(RestorePlacement::CostAware));
        let local = cfg(&|c| c.with_restore_placement(RestorePlacement::LocalOnly));
        let mut t = Table::new(
            "ablate-restore",
            "Restore placement (Algorithm 2), Chk-HDD",
            &[
                "variant",
                "remote restores",
                "mean response low [s]",
                "makespan [s]",
            ],
        );
        for (label, r) in [("cost-aware", &aware), ("local-only", &local)] {
            t.row(vec![
                label.into(),
                r.metrics.remote_restores.to_string(),
                fmt(r.metrics.mean_response(PriorityBand::Free), 0),
                fmt(r.metrics.makespan_secs, 0),
            ]);
        }
        exp.push(t);
    }

    exp
}
