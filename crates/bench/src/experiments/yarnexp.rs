//! §5 YARN experiments: Figs. 8–12.

use cbp_core::PreemptionPolicy;
use cbp_storage::MediaKind;
use cbp_workload::facebook::FacebookConfig;
use cbp_workload::Workload;
use cbp_yarn::{YarnConfig, YarnReport};

use crate::table::{fmt, pct, Experiment, Table};
use crate::Scale;

/// The Facebook-derived workload and cluster, scaled together so the giant
/// production job always exceeds cluster capacity.
fn setup(scale: Scale, seed: u64) -> (Workload, YarnConfig) {
    let nodes = scale.apply(8, 2);
    let slots = nodes * 24;
    let workload = FacebookConfig {
        jobs: scale.apply(40, 10),
        total_tasks: scale.apply(7_000, 260),
        giant_job_tasks: (slots as f64 * 1.3) as usize,
        ..Default::default()
    }
    .generate(seed);
    let mut config = YarnConfig::paper_cluster(PreemptionPolicy::Kill, MediaKind::Hdd);
    config.nodes = nodes;
    (workload, config)
}

fn run(
    config: &YarnConfig,
    w: &Workload,
    policy: PreemptionPolicy,
    media: MediaKind,
) -> YarnReport {
    config
        .clone()
        .with_policy(policy)
        .with_media_kind(media)
        .run(w)
}

/// Fig. 8: wastage, energy and mean response times of Kill vs
/// Chk-{HDD,SSD,NVM}.
pub fn fig8(scale: Scale, seed: u64) -> Experiment {
    let (w, base) = setup(scale, seed);
    let kill = run(&base, &w, PreemptionPolicy::Kill, MediaKind::Ssd);
    let chk: Vec<(MediaKind, YarnReport)> = MediaKind::ALL
        .into_iter()
        .map(|m| (m, run(&base, &w, PreemptionPolicy::Checkpoint, m)))
        .collect();

    let mut exp = Experiment::new(
        "fig8",
        "stock YARN wastes ~28% of CPU time; checkpointing reduces wastage \
         by 50/65/67% and energy by 21/29/34% on HDD/SSD/NVM; NVM cuts \
         low-priority response 61% at comparable high-priority response",
    );

    let mut a = Table::new(
        "fig8a",
        "CPU wastage [core-hours]",
        &[
            "policy",
            "wasted core-h",
            "waste fraction",
            "reduction vs kill",
        ],
    );
    a.row(vec![
        "Kill".into(),
        fmt(kill.wasted_cpu_hours(), 2),
        pct(kill.waste_fraction()),
        "-".into(),
    ]);
    for (m, r) in &chk {
        let reduction = 1.0 - r.wasted_cpu_hours() / kill.wasted_cpu_hours().max(1e-9);
        a.row(vec![
            format!("Chk-{m}"),
            fmt(r.wasted_cpu_hours(), 2),
            pct(r.waste_fraction()),
            pct(reduction),
        ]);
    }
    a.note("paper fig8a: reductions of 50% (HDD), 65% (SSD), 67% (NVM)");
    exp.push(a);

    let mut b = Table::new(
        "fig8b",
        "Energy [kWh]",
        &["policy", "kWh", "reduction vs kill"],
    );
    b.row(vec!["Kill".into(), fmt(kill.energy_kwh, 2), "-".into()]);
    for (m, r) in &chk {
        b.row(vec![
            format!("Chk-{m}"),
            fmt(r.energy_kwh, 2),
            pct(1.0 - r.energy_kwh / kill.energy_kwh.max(1e-9)),
        ]);
    }
    b.note("paper fig8b: reductions of 21% (HDD), 29% (SSD), 34% (NVM)");
    exp.push(b);

    let mut c = Table::new(
        "fig8c",
        "Mean job response time [min]",
        &["policy", "low priority", "high priority"],
    );
    c.row(vec![
        "Kill".into(),
        fmt(kill.mean_low_response() / 60.0, 1),
        fmt(kill.mean_high_response() / 60.0, 1),
    ]);
    for (m, r) in &chk {
        c.row(vec![
            format!("Chk-{m}"),
            fmt(r.mean_low_response() / 60.0, 1),
            fmt(r.mean_high_response() / 60.0, 1),
        ]);
    }
    c.note("paper fig8c: low-priority -18/-53/-61% on HDD/SSD/NVM; high priority worse on HDD/SSD, comparable on NVM");
    exp.push(c);

    exp
}

/// Fig. 9: response-time CDF per policy.
pub fn fig9(scale: Scale, seed: u64) -> Experiment {
    let (w, base) = setup(scale, seed);
    let mut exp = Experiment::new(
        "fig9",
        "the whole response-time CDF improves under checkpoint-based \
         preemption, NVM most of all",
    );
    let mut t = Table::new(
        "fig9",
        "Response-time percentiles [min]",
        &["percentile", "Kill", "Chk-HDD", "Chk-SSD", "Chk-NVM"],
    );
    let mut samples: Vec<cbp_simkit::stats::Samples> = Vec::new();
    samples.push(run(&base, &w, PreemptionPolicy::Kill, MediaKind::Ssd).all_responses());
    for m in MediaKind::ALL {
        samples.push(run(&base, &w, PreemptionPolicy::Checkpoint, m).all_responses());
    }
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
        let mut row = vec![format!("p{p:.0}")];
        for s in samples.iter_mut() {
            row.push(fmt(s.percentile(p).unwrap_or(0.0) / 60.0, 1));
        }
        t.row(row);
    }
    exp.push(t);
    exp
}

/// Fig. 10: basic vs adaptive mean responses per medium.
pub fn fig10(scale: Scale, seed: u64) -> Experiment {
    let (w, base) = setup(scale, seed);
    let mut exp = Experiment::new(
        "fig10",
        "adaptive reduces low-priority response by 28/16/20% and \
         high-priority by 7/8/14% over basic checkpointing on HDD/SSD/NVM",
    );
    for m in MediaKind::ALL {
        let basic = run(&base, &w, PreemptionPolicy::Checkpoint, m);
        let adaptive = run(&base, &w, PreemptionPolicy::Adaptive, m);
        let mut t = Table::new(
            format!("fig10-{m}"),
            format!("{m}: mean response [min]"),
            &[
                "policy",
                "low priority",
                "high priority",
                "kills",
                "checkpoints",
            ],
        );
        for (label, r) in [("Basic", &basic), ("Adaptive", &adaptive)] {
            t.row(vec![
                label.into(),
                fmt(r.mean_low_response() / 60.0, 1),
                fmt(r.mean_high_response() / 60.0, 1),
                r.kills.to_string(),
                r.checkpoints.to_string(),
            ]);
        }
        exp.push(t);
    }
    exp
}

/// Fig. 11: response CDFs of kill / basic / adaptive per medium.
pub fn fig11(scale: Scale, seed: u64) -> Experiment {
    let (w, base) = setup(scale, seed);
    let mut exp = Experiment::new(
        "fig11",
        "adaptive improves the whole response CDF over basic on every medium",
    );
    for m in MediaKind::ALL {
        let mut kill = run(&base, &w, PreemptionPolicy::Kill, m).all_responses();
        let mut basic = run(&base, &w, PreemptionPolicy::Checkpoint, m).all_responses();
        let mut adaptive = run(&base, &w, PreemptionPolicy::Adaptive, m).all_responses();
        let mut t = Table::new(
            format!("fig11-{m}"),
            format!("{m}: response percentiles [min]"),
            &["percentile", "Kill", "Basic", "Adaptive"],
        );
        for p in [25.0, 50.0, 75.0, 90.0, 99.0] {
            t.row(vec![
                format!("p{p:.0}"),
                fmt(kill.percentile(p).unwrap_or(0.0) / 60.0, 1),
                fmt(basic.percentile(p).unwrap_or(0.0) / 60.0, 1),
                fmt(adaptive.percentile(p).unwrap_or(0.0) / 60.0, 1),
            ]);
        }
        exp.push(t);
    }
    exp
}

/// Fig. 12: checkpoint CPU and I/O overhead, basic vs adaptive.
pub fn fig12(scale: Scale, seed: u64) -> Experiment {
    let (w, base) = setup(scale, seed);
    let mut exp = Experiment::new(
        "fig12",
        "basic checkpointing costs 17/4/0.4% CPU overhead on HDD/SSD/NVM \
         (adaptive: 5.1/2.3/~0%) and 37/14/2.2% worst-case I/O bandwidth \
         (adaptive: 15.7/8.3/negligible); checkpoints use 5-10% of storage",
    );
    let mut cpu = Table::new(
        "fig12a",
        "Checkpoint/restore CPU overhead [% of consumed CPU]",
        &["medium", "Basic", "Adaptive"],
    );
    let mut io = Table::new(
        "fig12b",
        "Storage-device busy fraction (worst-case I/O overhead)",
        &["medium", "Basic", "Adaptive"],
    );
    let mut storage = Table::new(
        "fig12-storage",
        "Peak checkpoint storage use [fraction of capacity]",
        &["medium", "Basic", "Adaptive"],
    );
    for m in MediaKind::ALL {
        let basic = run(&base, &w, PreemptionPolicy::Checkpoint, m);
        let adaptive = run(&base, &w, PreemptionPolicy::Adaptive, m);
        cpu.row(vec![
            m.to_string(),
            pct(basic.cpu_overhead_fraction()),
            pct(adaptive.cpu_overhead_fraction()),
        ]);
        io.row(vec![
            m.to_string(),
            pct(basic.io_overhead_fraction),
            pct(adaptive.io_overhead_fraction),
        ]);
        storage.row(vec![
            m.to_string(),
            pct(basic.storage_peak_fraction),
            pct(adaptive.storage_peak_fraction),
        ]);
    }
    exp.push(cpu);
    exp.push(io);
    exp.push(storage);
    exp
}
