//! §2 characterization: Fig. 1a–1c, Table 1, Table 2.
//!
//! The paper analyzed the raw Google trace; we run the synthetic trace
//! through the kill-based scheduler and apply the same 5-second preemption
//! criterion to the emitted event log.

use cbp_simkit::SimDuration;
use cbp_workload::analysis::PreemptionAnalysis;
use cbp_workload::{LatencyClass, PriorityBand};

use crate::table::{pct, Experiment, Table};
use crate::Scale;

use super::google_setup;

/// Runs the characterization and builds Fig. 1 + Tables 1–2.
pub fn fig1_tables12(scale: Scale, seed: u64) -> Experiment {
    let (workload, config) = google_setup(scale, seed);
    let report = config.run(&workload);
    // Hourly buckets over the one-day trace (the paper's Fig. 1a buckets
    // its 29 days daily; one day at daily buckets has a single point).
    let analysis = PreemptionAnalysis::analyze_with(
        &report.trace,
        SimDuration::from_secs(5),
        SimDuration::from_secs(3_600),
    );

    let mut exp = Experiment::new(
        "fig1",
        "12.4% of scheduled tasks are preempted overall; low priority ≈20%, \
         >90% of preemptions hit priorities 0–1, 43.5% of preempted tasks \
         are preempted more than once, and waste reaches ≈35% of usage",
    );

    // Fig. 1a: preemption rate over time per band.
    let mut fig1a = Table::new(
        "fig1a",
        "Preemption rate timeline (per hour, fraction of tasks scheduled in the hour)",
        &["hour", "low", "medium", "high"],
    );
    for (i, bucket) in analysis.timeline.iter().enumerate() {
        let rate = |b: (u64, u64)| {
            if b.0 == 0 {
                0.0
            } else {
                b.1 as f64 / b.0 as f64
            }
        };
        fig1a.row(vec![
            i.to_string(),
            pct(rate(bucket.per_band[0])),
            pct(rate(bucket.per_band[1])),
            pct(rate(bucket.per_band[2])),
        ]);
    }
    fig1a.note("paper: low-priority rates dominate throughout the trace");
    exp.push(fig1a);

    // Fig. 1b: share of all preemptions per priority.
    let mut fig1b = Table::new(
        "fig1b",
        "Share of all preemptions per priority level",
        &["priority", "% of all preemptions"],
    );
    let shares = analysis.preemption_share_per_priority();
    for (p, share) in shares.iter().enumerate() {
        fig1b.row(vec![p.to_string(), pct(*share)]);
    }
    let low_share = shares[0] + shares[1];
    fig1b.note(format!(
        "priorities 0-1 take {} of preemptions (paper: >90%)",
        pct(low_share)
    ));
    exp.push(fig1b);

    // Fig. 1c: preemption-count distribution.
    let mut fig1c = Table::new(
        "fig1c",
        "Distinct tasks by number of preemptions",
        &["preemptions", "tasks"],
    );
    for (i, count) in analysis.preemption_count_histogram.iter().enumerate() {
        let label = if i == 9 {
            ">=10".to_string()
        } else {
            (i + 1).to_string()
        };
        fig1c.row(vec![label, count.to_string()]);
    }
    fig1c.note(format!(
        "{} of preempted tasks preempted more than once (paper: 43.5%)",
        pct(analysis.repeat_preemption_fraction())
    ));
    exp.push(fig1c);

    // Table 1.
    let mut t1 = Table::new(
        "table1",
        "Preempted tasks per priority band",
        &[
            "priority band",
            "scheduled tasks",
            "percent preempted",
            "paper",
        ],
    );
    let paper = [
        ("Free (0-1)", "20.26%"),
        ("Middle (2-8)", "0.55%"),
        ("Production (9-11)", "1.02%"),
    ];
    for ((band, counts), (label, paper_pct)) in analysis.per_band.iter().zip(paper) {
        let _ = band;
        t1.row(vec![
            label.to_string(),
            counts.scheduled_tasks.to_string(),
            pct(counts.preempted_fraction()),
            paper_pct.to_string(),
        ]);
    }
    t1.note(format!(
        "overall preempted fraction {} (paper: 12.4%)",
        pct(analysis.overall.preempted_fraction())
    ));
    t1.note(format!(
        "kill-based waste fraction {} (paper: up to 35%)",
        pct(analysis.waste_fraction())
    ));
    exp.push(t1);

    // Table 2.
    let mut t2 = Table::new(
        "table2",
        "Preempted tasks per latency-sensitivity class",
        &[
            "latency class",
            "scheduled tasks",
            "percent preempted",
            "paper",
        ],
    );
    let paper2 = ["11.76%", "18.87%", "8.14%", "14.80%"];
    for (class, paper_pct) in LatencyClass::ALL.iter().zip(paper2) {
        let counts = analysis.per_latency[class.0 as usize];
        t2.row(vec![
            format!("{class}"),
            counts.scheduled_tasks.to_string(),
            pct(counts.preempted_fraction()),
            paper_pct.to_string(),
        ]);
    }
    t2.note("paper: even the most latency-sensitive class sees 14.8% preemption");
    exp.push(t2);

    // Context row: per-band job mix of the generated trace.
    let mut mix = Table::new(
        "trace-mix",
        "Generated trace composition (context)",
        &["band", "tasks"],
    );
    for (band, count) in workload.tasks_per_band() {
        let label = match band {
            PriorityBand::Free => "free",
            PriorityBand::Middle => "middle",
            PriorityBand::Production => "production",
        };
        mix.row(vec![label.to_string(), count.to_string()]);
    }
    exp.push(mix);

    exp
}
