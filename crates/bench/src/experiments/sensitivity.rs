//! Bandwidth sensitivity with two k-means jobs: Fig. 4 (wait/kill/
//! checkpoint) and Fig. 6 (plus adaptive).

use cbp_core::scenario::SensitivityScenario;
use cbp_core::PreemptionPolicy;

use crate::table::{fmt, Experiment, Table};

const BWS: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];

fn sweep_tables(id_prefix: &str, policies: &[PreemptionPolicy]) -> Vec<Table> {
    let scenario = SensitivityScenario::default();
    let undisturbed = scenario.undisturbed_secs();

    let mut high = Table::new(
        format!("{id_prefix}a"),
        "High-priority response normalized to undisturbed runtime",
        &std::iter::once("bw [GB/s]")
            .chain(policies.iter().map(|p| policy_name(*p)))
            .collect::<Vec<_>>(),
    );
    let mut low = Table::new(
        format!("{id_prefix}b"),
        "Low-priority response normalized to undisturbed runtime",
        &std::iter::once("bw [GB/s]")
            .chain(policies.iter().map(|p| policy_name(*p)))
            .collect::<Vec<_>>(),
    );
    let mut energy = Table::new(
        format!("{id_prefix}c"),
        "Energy normalized to the Wait policy",
        &std::iter::once("bw [GB/s]")
            .chain(policies.iter().map(|p| policy_name(*p)))
            .collect::<Vec<_>>(),
    );

    for bw in BWS {
        let outcomes: Vec<_> = policies.iter().map(|p| scenario.run(*p, bw)).collect();
        let wait_energy = scenario.run(PreemptionPolicy::Wait, bw).energy_kwh;
        high.row(
            std::iter::once(fmt(bw, 1))
                .chain(
                    outcomes
                        .iter()
                        .map(|o| fmt(o.high_normalized(undisturbed), 2)),
                )
                .collect(),
        );
        low.row(
            std::iter::once(fmt(bw, 1))
                .chain(
                    outcomes
                        .iter()
                        .map(|o| fmt(o.low_normalized(undisturbed), 2)),
                )
                .collect(),
        );
        energy.row(
            std::iter::once(fmt(bw, 1))
                .chain(outcomes.iter().map(|o| fmt(o.energy_kwh / wait_energy, 2)))
                .collect(),
        );
    }
    vec![high, low, energy]
}

fn policy_name(p: PreemptionPolicy) -> &'static str {
    match p {
        PreemptionPolicy::Wait => "Wait",
        PreemptionPolicy::Kill => "Kill",
        PreemptionPolicy::Checkpoint => "Checkpoint",
        PreemptionPolicy::Adaptive => "Adaptive",
    }
}

/// Fig. 4: wait / kill / always-checkpoint over 1–5 GB/s.
pub fn fig4() -> Experiment {
    let mut exp = Experiment::new(
        "fig4",
        "kill is always best for the high-priority job; waiting costs it \
         >1.5x; checkpointing is worse than kill at low bandwidth and \
         approaches it as bandwidth grows; for the low-priority job \
         checkpointing beats kill once bandwidth is high enough; \
         checkpointing at low bandwidth costs more energy than kill",
    );
    for t in sweep_tables(
        "fig4",
        &[
            PreemptionPolicy::Wait,
            PreemptionPolicy::Kill,
            PreemptionPolicy::Checkpoint,
        ],
    ) {
        exp.push(t);
    }
    exp
}

/// Fig. 6: Fig. 4 plus the adaptive policy.
pub fn fig6() -> Experiment {
    let mut exp = Experiment::new(
        "fig6",
        "adaptive kills at low bandwidth and checkpoints at high bandwidth: \
         the high-priority job is never worse than under wait, and energy is \
         never worse than under kill",
    );
    for t in sweep_tables(
        "fig6",
        &[
            PreemptionPolicy::Wait,
            PreemptionPolicy::Kill,
            PreemptionPolicy::Checkpoint,
            PreemptionPolicy::Adaptive,
        ],
    ) {
        exp.push(t);
    }
    exp
}
