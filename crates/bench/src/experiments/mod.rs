//! One module per experiment family.

pub mod ablate;
pub mod characterize;
pub mod extensions;
pub mod micro;
pub mod qos;
pub mod sensitivity;
pub mod tracesim;
pub mod yarnexp;

use cbp_core::{PreemptionPolicy, SimConfig};
use cbp_storage::MediaKind;
use cbp_workload::google::GoogleTraceConfig;
use cbp_workload::Workload;

use crate::Scale;

/// The shared Google-trace simulation setup (§3.3.2 / §4.2.1): a one-day
/// trace and a cluster sized so kill-based preemption reproduces the §2
/// contention aggregates. Both the workload and the cluster scale together,
/// preserving per-node load.
pub fn google_setup(scale: Scale, seed: u64) -> (Workload, SimConfig) {
    let workload = GoogleTraceConfig::one_day()
        .scaled(scale.factor)
        .with_load_factor(1.35)
        .generate(seed);
    let nodes = scale.apply(200, 4);
    let config = SimConfig::trace_sim(PreemptionPolicy::Kill, MediaKind::Hdd).with_nodes(nodes);
    (workload, config)
}
