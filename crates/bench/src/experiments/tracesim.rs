//! Google-trace-driven simulations: Fig. 3 (kill vs checkpoint per medium)
//! and Fig. 5 (basic vs adaptive).

use cbp_core::{PreemptionPolicy, RunReport, SimConfig};
use cbp_storage::MediaKind;
use cbp_workload::PriorityBand;

use crate::table::{fmt, Experiment, Table};
use crate::Scale;

use super::google_setup;

const BANDS: [PriorityBand; 3] = [
    PriorityBand::Free,
    PriorityBand::Middle,
    PriorityBand::Production,
];

fn run(config: &SimConfig, workload: &cbp_workload::Workload) -> RunReport {
    config.run(workload)
}

/// Fig. 3: resource wastage, energy and normalized response times of
/// Kill / Chk-HDD / Chk-SSD / Chk-NVM on the one-day trace.
pub fn fig3(scale: Scale, seed: u64) -> Experiment {
    let (workload, base) = google_setup(scale, seed);
    let kill = run(&base.clone().with_policy(PreemptionPolicy::Kill), &workload);
    let chk: Vec<(MediaKind, RunReport)> = MediaKind::ALL
        .into_iter()
        .map(|media| {
            let cfg = base
                .clone()
                .with_policy(PreemptionPolicy::Checkpoint)
                .with_media(media.spec());
            (media, run(&cfg, &workload))
        })
        .collect();

    let mut exp = Experiment::new(
        "fig3",
        "kill wastes ~35% of capacity; checkpointing reduces wastage to \
         14.6/11.1/8.5% on HDD/SSD/NVM; NVM cuts energy ~5% and reduces \
         low/medium-priority response by 74%/23% at comparable high-priority \
         performance",
    );

    let mut a = Table::new(
        "fig3a",
        "Wasted CPU capacity [core-hours]",
        &["policy", "wasted core-h", "waste fraction"],
    );
    a.row(vec![
        "Kill".into(),
        fmt(kill.metrics.wasted_cpu_hours(), 1),
        crate::table::pct(kill.metrics.waste_fraction()),
    ]);
    for (media, r) in &chk {
        a.row(vec![
            format!("Chk-{media}"),
            fmt(r.metrics.wasted_cpu_hours(), 1),
            crate::table::pct(r.metrics.waste_fraction()),
        ]);
    }
    a.note("paper fig3a: Kill ~3,400 core-h (35%); Chk reduces to 14.6%/11.1%/8.5%");
    exp.push(a);

    let mut b = Table::new("fig3b", "Energy consumption [kWh]", &["policy", "kWh"]);
    b.row(vec!["Kill".into(), fmt(kill.metrics.energy_kwh, 1)]);
    for (media, r) in &chk {
        b.row(vec![format!("Chk-{media}"), fmt(r.metrics.energy_kwh, 1)]);
    }
    b.note("paper fig3b: HDD/SSD similar to kill; NVM ~5% lower");
    exp.push(b);

    let mut c = Table::new(
        "fig3c",
        "Response time normalized to Kill, per priority band",
        &["policy", "low", "medium", "high"],
    );
    let norm = |r: &RunReport, band: PriorityBand| {
        let k = kill.metrics.mean_response(band);
        if k == 0.0 {
            0.0
        } else {
            r.metrics.mean_response(band) / k
        }
    };
    c.row(vec![
        "Kill".into(),
        "1.00".into(),
        "1.00".into(),
        "1.00".into(),
    ]);
    for (media, r) in &chk {
        c.row(vec![
            format!("Chk-{media}"),
            fmt(norm(r, BANDS[0]), 2),
            fmt(norm(r, BANDS[1]), 2),
            fmt(norm(r, BANDS[2]), 2),
        ]);
    }
    c.note("paper fig3c: NVM cuts low by 74% and medium by 23%; HDD hurts medium/high");
    exp.push(c);

    exp
}

/// Fig. 5: adaptive vs basic checkpoint-based preemption per medium,
/// response time normalized to the basic policy.
pub fn fig5(scale: Scale, seed: u64) -> Experiment {
    let (workload, base) = google_setup(scale, seed);
    let mut exp = Experiment::new(
        "fig5",
        "adaptive cuts response times vs basic checkpointing: low priority \
         -36/-12/-3% and medium -55/-17/-8% on HDD/SSD/NVM, high priority \
         -29/-8% on HDD/SSD",
    );
    for media in MediaKind::ALL {
        let basic = run(
            &base
                .clone()
                .with_policy(PreemptionPolicy::Checkpoint)
                .with_media(media.spec()),
            &workload,
        );
        let adaptive = run(
            &base
                .clone()
                .with_policy(PreemptionPolicy::Adaptive)
                .with_media(media.spec()),
            &workload,
        );
        let mut t = Table::new(
            format!("fig5-{media}"),
            format!("{media}: response normalized to Basic"),
            &["policy", "low", "medium", "high"],
        );
        t.row(vec![
            "Basic".into(),
            "1.00".into(),
            "1.00".into(),
            "1.00".into(),
        ]);
        let norm = |band: PriorityBand| {
            let b = basic.metrics.mean_response(band);
            if b == 0.0 {
                0.0
            } else {
                adaptive.metrics.mean_response(band) / b
            }
        };
        t.row(vec![
            "Adaptive".into(),
            fmt(norm(BANDS[0]), 2),
            fmt(norm(BANDS[1]), 2),
            fmt(norm(BANDS[2]), 2),
        ]);
        t.note(format!(
            "adaptive kills {} / checkpoints {} (basic: 0 / {})",
            adaptive.metrics.kills, adaptive.metrics.checkpoints, basic.metrics.checkpoints
        ));
        exp.push(t);
    }
    exp
}
