//! The `repro bench` perf harness: wall-clock benchmarks of the two
//! simulators over a fixed scenario matrix, written as schema-versioned
//! `BENCH_<scenario>.json` files that CI diffs across commits.
//!
//! Each scenario is a fully determined simulation (kind, scale, seed,
//! fault profile): sim *outputs* are byte-identical across runs, so the
//! event count is asserted stable while wall time is summarized as
//! median/MAD over `reps` repetitions (after `warmup` discarded runs).
//! One extra profiled repetition (never timed) collects the top self-time
//! scopes via `cbp-prof`, so every BENCH file records *where* the time
//! went next to *how much* there was.
//!
//! The emitted JSON separates `config` (what was run — compared exactly)
//! from `measured` (what it cost — compared direction-aware within
//! `--tol-pct`): wall time and allocator peak may not rise beyond
//! tolerance, throughput may not fall, and the event count must match
//! exactly. Getting *faster* never fails the gate.

use std::time::Instant;

use cbp_core::{ClusterSim, PreemptionPolicy, TelemetryReport};
use cbp_faults::FaultSpec;
use cbp_storage::MediaKind;
use cbp_telemetry::json;
use cbp_workload::facebook::FacebookConfig;
use cbp_yarn::{YarnConfig, YarnSim};
use serde_json::Value;

use crate::experiments::google_setup;
use crate::Scale;

/// Schema tag stamped into every BENCH json document.
pub const BENCH_SCHEMA: &str = "cbp-bench";
/// Schema version stamped into every BENCH json document.
pub const BENCH_VERSION: u64 = 1;

/// Scopes listed in the `top_scopes` breakdown of each BENCH file.
pub const TOP_SCOPES: usize = 10;

/// Which simulator a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKind {
    /// The Google-trace cluster simulator (fig. 3 family).
    Trace,
    /// The YARN protocol simulator (fig. 8 family).
    Yarn,
}

impl SimKind {
    fn name(&self) -> &'static str {
        match self {
            SimKind::Trace => "trace",
            SimKind::Yarn => "yarn",
        }
    }
}

/// One fully determined benchmark scenario.
#[derive(Debug, Clone)]
pub struct BenchScenario {
    /// Stable name; the BENCH file is `BENCH_<name>.json`.
    pub name: &'static str,
    /// Which simulator to drive.
    pub kind: SimKind,
    /// Workload/cluster scale.
    pub scale: Scale,
    /// Workload seed.
    pub seed: u64,
    /// Fault profile (`None` = no fault plan attached).
    pub faults: Option<&'static str>,
}

impl BenchScenario {
    fn fault_spec(&self) -> Option<FaultSpec> {
        self.faults
            .map(|s| FaultSpec::parse(s).expect("matrix fault profiles are valid"))
    }
}

/// The quick matrix CI runs on every push: one scenario per simulator at
/// smoke scale.
pub fn tiny_matrix() -> Vec<BenchScenario> {
    vec![
        BenchScenario {
            name: "fig3_smoke",
            kind: SimKind::Trace,
            scale: Scale::SMOKE,
            seed: 42,
            faults: None,
        },
        BenchScenario {
            name: "fig8_smoke",
            kind: SimKind::Yarn,
            scale: Scale::SMOKE,
            seed: 42,
            faults: None,
        },
    ]
}

/// The full matrix for tracking the perf trajectory: both simulators,
/// two sizes, with and without a light fault plan, plus one correlated
/// crash/partition chaos scenario.
pub fn standard_matrix() -> Vec<BenchScenario> {
    vec![
        BenchScenario {
            name: "fig3_small",
            kind: SimKind::Trace,
            scale: Scale::SMOKE,
            seed: 42,
            faults: None,
        },
        BenchScenario {
            name: "fig3_large",
            kind: SimKind::Trace,
            scale: Scale::SMALL,
            seed: 42,
            faults: None,
        },
        BenchScenario {
            name: "fig3_small_faults",
            kind: SimKind::Trace,
            scale: Scale::SMOKE,
            seed: 42,
            faults: Some("light"),
        },
        BenchScenario {
            name: "fig8_small",
            kind: SimKind::Yarn,
            scale: Scale::SMOKE,
            seed: 42,
            faults: None,
        },
        BenchScenario {
            name: "fig8_large",
            kind: SimKind::Yarn,
            scale: Scale::SMALL,
            seed: 42,
            faults: None,
        },
        BenchScenario {
            name: "fig8_small_faults",
            kind: SimKind::Yarn,
            scale: Scale::SMOKE,
            seed: 42,
            faults: Some("light"),
        },
        BenchScenario {
            name: "fig3_small_chaos",
            kind: SimKind::Trace,
            scale: Scale::SMOKE,
            seed: 42,
            faults: Some("chaos"),
        },
    ]
}

/// Looks a scenario up by name across both matrices.
pub fn find_scenario(name: &str) -> Option<BenchScenario> {
    standard_matrix()
        .into_iter()
        .chain(tiny_matrix())
        .find(|s| s.name == name)
}

/// Repetition policy for [`run_scenario`].
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Timed repetitions (median/MAD computed over these).
    pub reps: usize,
    /// Discarded warm-up repetitions before timing starts.
    pub warmup: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions { reps: 3, warmup: 1 }
    }
}

/// One ranked entry of the per-scenario profile breakdown.
#[derive(Debug, Clone)]
pub struct TopScope {
    /// Slash-joined scope path (`rm_schedule/device_submit`).
    pub path: String,
    /// Times the path was entered during the profiled repetition.
    pub calls: u64,
    /// Self wall time of the profiled repetition, milliseconds.
    pub self_ms: f64,
    /// Self share of the profiled repetition's total scope time, percent.
    pub self_pct: f64,
}

/// Everything measured for one scenario.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// The scenario that was run.
    pub scenario: BenchScenario,
    /// The repetition policy used.
    pub opts: BenchOptions,
    /// Events the engine processed (identical every repetition).
    pub events: u64,
    /// Median wall time of the timed repetitions, milliseconds.
    pub median_wall_ms: f64,
    /// Median absolute deviation of the wall times, milliseconds.
    pub mad_wall_ms: f64,
    /// Engine throughput at the median wall time, events per second.
    pub events_per_sec: f64,
    /// Allocator high-water mark over one repetition (bytes); `None`
    /// unless built with the `count-alloc` feature.
    pub alloc_peak_bytes: Option<u64>,
    /// Top self-time scopes from the profiled repetition.
    pub top_scopes: Vec<TopScope>,
}

/// Runs one repetition of `s`, returning its engine report.
fn run_once(s: &BenchScenario) -> TelemetryReport {
    match s.kind {
        SimKind::Trace => {
            let (workload, base) = google_setup(s.scale, s.seed);
            let mut cfg = base.with_policy(PreemptionPolicy::Adaptive);
            if let Some(spec) = s.fault_spec() {
                cfg = cfg.with_faults(spec);
            }
            ClusterSim::new(cfg, workload).run().telemetry
        }
        SimKind::Yarn => {
            let nodes = s.scale.apply(8, 2);
            let slots = nodes * 24;
            let workload = FacebookConfig {
                jobs: s.scale.apply(40, 10),
                total_tasks: s.scale.apply(7_000, 260),
                giant_job_tasks: (slots as f64 * 1.3) as usize,
                ..Default::default()
            }
            .generate(s.seed);
            let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Adaptive, MediaKind::Hdd);
            cfg.nodes = nodes;
            if let Some(spec) = s.fault_spec() {
                cfg = cfg.with_faults(spec);
            }
            YarnSim::new(cfg, workload).run_with_telemetry().1
        }
    }
}

#[cfg(feature = "count-alloc")]
fn alloc_peak_of(s: &BenchScenario) -> Option<u64> {
    cbp_prof::alloc::reset_peak();
    let _ = run_once(s);
    Some(cbp_prof::alloc::peak_bytes())
}

#[cfg(not(feature = "count-alloc"))]
fn alloc_peak_of(_s: &BenchScenario) -> Option<u64> {
    None
}

/// Benchmarks one scenario: `warmup` discarded runs, one profiled run
/// (feeding `top_scopes`, never timed), then `reps` timed runs.
pub fn run_scenario(s: &BenchScenario, opts: BenchOptions) -> BenchResult {
    assert!(opts.reps >= 1, "need at least one timed repetition");
    for _ in 0..opts.warmup {
        let _ = run_once(s);
    }

    // Profiled repetition: collects the scope tree. Kept out of the timed
    // set so profiler bookkeeping never skews the reported wall numbers.
    cbp_prof::start(cbp_prof::ProfOptions::default());
    let _ = run_once(s);
    let profile = cbp_prof::stop().expect("profiler started above");
    let scope_total: u64 = profile.top_self(usize::MAX).iter().map(|f| f.self_ns).sum();
    let top_scopes: Vec<TopScope> = profile
        .top_self(TOP_SCOPES)
        .into_iter()
        .map(|f| TopScope {
            path: f.path,
            calls: f.calls,
            self_ms: f.self_ns as f64 / 1e6,
            self_pct: if scope_total > 0 {
                f.self_ns as f64 * 100.0 / scope_total as f64
            } else {
                0.0
            },
        })
        .collect();

    let alloc_peak_bytes = alloc_peak_of(s);

    let mut walls_ms = Vec::with_capacity(opts.reps);
    let mut events = 0u64;
    for rep in 0..opts.reps {
        let start = Instant::now();
        let t = run_once(s);
        walls_ms.push(start.elapsed().as_secs_f64() * 1e3);
        if rep == 0 {
            events = t.engine_events;
        } else {
            assert_eq!(
                events, t.engine_events,
                "simulation must be deterministic: event count changed between reps"
            );
        }
    }
    let median_wall_ms = median(&mut walls_ms);
    let mut deviations: Vec<f64> = walls_ms
        .iter()
        .map(|w| (w - median_wall_ms).abs())
        .collect();
    let mad_wall_ms = median(&mut deviations);
    let events_per_sec = if median_wall_ms > 0.0 {
        events as f64 / (median_wall_ms / 1e3)
    } else {
        0.0
    };

    BenchResult {
        scenario: s.clone(),
        opts,
        events,
        median_wall_ms,
        mad_wall_ms,
        events_per_sec,
        alloc_peak_bytes,
        top_scopes,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

impl BenchResult {
    /// Serializes as a BENCH json document: fixed key order, `config`
    /// (exact-match fields) strictly separated from `measured`
    /// (tolerance-compared fields).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        json::push_key(&mut out, "schema");
        json::push_str_escaped(&mut out, BENCH_SCHEMA);
        out.push(',');
        json::push_key(&mut out, "version");
        json::push_u64(&mut out, BENCH_VERSION);
        out.push(',');
        json::push_key(&mut out, "config");
        out.push('{');
        json::push_key(&mut out, "scenario");
        json::push_str_escaped(&mut out, self.scenario.name);
        out.push(',');
        json::push_key(&mut out, "sim");
        json::push_str_escaped(&mut out, self.scenario.kind.name());
        out.push(',');
        json::push_key(&mut out, "scale");
        json::push_f64(&mut out, self.scenario.scale.factor);
        out.push(',');
        json::push_key(&mut out, "seed");
        json::push_u64(&mut out, self.scenario.seed);
        out.push(',');
        json::push_key(&mut out, "faults");
        json::push_str_escaped(&mut out, self.scenario.faults.unwrap_or("off"));
        out.push(',');
        json::push_key(&mut out, "reps");
        json::push_u64(&mut out, self.opts.reps as u64);
        out.push(',');
        json::push_key(&mut out, "warmup");
        json::push_u64(&mut out, self.opts.warmup as u64);
        out.push_str("},");
        json::push_key(&mut out, "measured");
        out.push('{');
        json::push_key(&mut out, "events");
        json::push_u64(&mut out, self.events);
        out.push(',');
        json::push_key(&mut out, "median_wall_ms");
        json::push_f64(&mut out, self.median_wall_ms);
        out.push(',');
        json::push_key(&mut out, "mad_wall_ms");
        json::push_f64(&mut out, self.mad_wall_ms);
        out.push(',');
        json::push_key(&mut out, "events_per_sec");
        json::push_f64(&mut out, self.events_per_sec);
        out.push(',');
        json::push_key(&mut out, "alloc_peak_bytes");
        match self.alloc_peak_bytes {
            Some(b) => json::push_u64(&mut out, b),
            None => out.push_str("null"),
        }
        out.push(',');
        json::push_key(&mut out, "top_scopes");
        out.push('[');
        for (i, t) in self.top_scopes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json::push_key(&mut out, "path");
            json::push_str_escaped(&mut out, &t.path);
            out.push(',');
            json::push_key(&mut out, "calls");
            json::push_u64(&mut out, t.calls);
            out.push(',');
            json::push_key(&mut out, "self_ms");
            json::push_f64(&mut out, t.self_ms);
            out.push(',');
            json::push_key(&mut out, "self_pct");
            json::push_f64(&mut out, t.self_pct);
            out.push('}');
        }
        out.push_str("]}}");
        out
    }

    /// One-line human summary for the `repro bench` console output.
    pub fn render_line(&self) -> String {
        let alloc = match self.alloc_peak_bytes {
            Some(b) => format!("  peak {:.1} MiB", b as f64 / (1024.0 * 1024.0)),
            None => String::new(),
        };
        format!(
            "{:<20} {:>8} events  median {:>9.1} ms (±{:.1} MAD)  {:>10.0} events/s{}",
            self.scenario.name,
            self.events,
            self.median_wall_ms,
            self.mad_wall_ms,
            self.events_per_sec,
            alloc
        )
    }
}

// ---------------------------------------------------------------------------
// Regression checking

/// Direction-aware verdict for one measured metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchVerdict {
    /// Within tolerance (or changed in the good direction).
    Pass,
    /// Changed in the bad direction beyond tolerance.
    Regressed,
}

/// One compared metric in a [`BenchDiff`].
#[derive(Debug, Clone)]
pub struct BenchDiffRow {
    /// Metric key (as in the `measured` object).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Signed change in percent (positive = candidate larger).
    pub delta_pct: f64,
    /// Verdict under the tolerance.
    pub verdict: BenchVerdict,
}

/// The result of checking a candidate BENCH file against a baseline.
#[derive(Debug, Clone)]
pub struct BenchDiff {
    /// Scenario name both files describe.
    pub scenario: String,
    /// Per-metric comparisons.
    pub rows: Vec<BenchDiffRow>,
}

impl BenchDiff {
    /// True if any metric regressed.
    pub fn regressed(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.verdict == BenchVerdict::Regressed)
    }

    /// Renders the comparison as an aligned table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "bench check: {}", self.scenario);
        for r in &self.rows {
            let _ = writeln!(
                out,
                "  {:<18} {:>14.3} -> {:>14.3}  {:>+8.2}%  {}",
                r.metric,
                r.baseline,
                r.candidate,
                r.delta_pct,
                match r.verdict {
                    BenchVerdict::Pass => "ok",
                    BenchVerdict::Regressed => "REGRESSED",
                }
            );
        }
        out
    }
}

/// How a metric is allowed to move. `LowerIsBetter` fails when the
/// candidate *rises* past tolerance, `HigherIsBetter` when it *falls*,
/// `Exact` on any difference (tolerance ignored).
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
    Exact,
}

fn get_f64(v: &Value, section: &str, key: &str) -> Result<Option<f64>, String> {
    let field = v
        .get(section)
        .and_then(|s| s.get(key))
        .ok_or_else(|| format!("missing {section}.{key}"))?;
    if field.is_null() {
        return Ok(None);
    }
    field
        .as_f64()
        .map(Some)
        .ok_or_else(|| format!("{section}.{key} is not a number"))
}

fn get_str(v: &Value, section: &str, key: &str) -> Result<String, String> {
    v.get(section)
        .and_then(|s| s.get(key))
        .and_then(|f| f.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing {section}.{key}"))
}

/// Checks `candidate` against `baseline` (both BENCH json texts) at
/// `tol_pct` percent tolerance.
///
/// The `config` objects must match exactly — comparing different
/// scenarios, seeds or scales is an error, not a regression. Within
/// `measured`, wall time and allocator peak may rise at most `tol_pct`
/// percent, throughput may fall at most `tol_pct` percent, and the event
/// count must be identical (the simulators are deterministic; a change
/// means the engine did different work, which no tolerance excuses).
///
/// # Errors
///
/// Returns an error for malformed/mismatched documents (wrong schema or
/// version, different configs, missing fields).
pub fn check_bench_files(
    baseline: &str,
    candidate: &str,
    tol_pct: f64,
) -> Result<BenchDiff, String> {
    let base: Value = serde_json::from_str(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cand: Value = serde_json::from_str(candidate).map_err(|e| format!("candidate: {e}"))?;

    for (name, v) in [("baseline", &base), ("candidate", &cand)] {
        let schema = v.get("schema").and_then(|s| s.as_str());
        if schema != Some(BENCH_SCHEMA) {
            return Err(format!("{name}: not a {BENCH_SCHEMA} document"));
        }
        let version = v.get("version").and_then(|s| s.as_u64());
        if version != Some(BENCH_VERSION) {
            return Err(format!(
                "{name}: unsupported schema version {version:?} (want {BENCH_VERSION})"
            ));
        }
    }
    for key in ["scenario", "sim", "faults"] {
        let b = get_str(&base, "config", key)?;
        let c = get_str(&cand, "config", key)?;
        if b != c {
            return Err(format!(
                "config.{key} differs: baseline {b:?} vs candidate {c:?}"
            ));
        }
    }
    for key in ["scale", "seed"] {
        let b = get_f64(&base, "config", key)?;
        let c = get_f64(&cand, "config", key)?;
        if b != c {
            return Err(format!(
                "config.{key} differs: baseline {b:?} vs candidate {c:?}"
            ));
        }
    }

    let metrics: [(&'static str, Direction); 4] = [
        ("events", Direction::Exact),
        ("median_wall_ms", Direction::LowerIsBetter),
        ("events_per_sec", Direction::HigherIsBetter),
        ("alloc_peak_bytes", Direction::LowerIsBetter),
    ];
    let mut rows = Vec::new();
    for (key, dir) in metrics {
        let b = get_f64(&base, "measured", key)?;
        let c = get_f64(&cand, "measured", key)?;
        let (b, c) = match (b, c) {
            (Some(b), Some(c)) => (b, c),
            // Allocator peak is null without `count-alloc`; skip the row
            // when either side lacks it rather than failing the gate.
            (None, _) | (_, None) if key == "alloc_peak_bytes" => continue,
            _ => return Err(format!("measured.{key} is null")),
        };
        let delta_pct = if b != 0.0 { (c - b) * 100.0 / b } else { 0.0 };
        let verdict = match dir {
            Direction::Exact if c != b => BenchVerdict::Regressed,
            Direction::LowerIsBetter if delta_pct > tol_pct => BenchVerdict::Regressed,
            Direction::HigherIsBetter if delta_pct < -tol_pct => BenchVerdict::Regressed,
            _ => BenchVerdict::Pass,
        };
        rows.push(BenchDiffRow {
            metric: key,
            baseline: b,
            candidate: c,
            delta_pct,
            verdict,
        });
    }
    Ok(BenchDiff {
        scenario: get_str(&base, "config", "scenario")?,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_result() -> BenchResult {
        run_scenario(
            &BenchScenario {
                name: "fig3_smoke",
                kind: SimKind::Trace,
                scale: Scale::SMOKE,
                seed: 7,
                faults: None,
            },
            BenchOptions { reps: 1, warmup: 0 },
        )
    }

    #[test]
    fn bench_json_is_schema_tagged_and_valid() {
        let r = smoke_result();
        let j = r.to_json();
        assert!(j.starts_with("{\"schema\":\"cbp-bench\",\"version\":1,"));
        assert!(cbp_telemetry::json::is_valid(&j));
        assert!(r.events > 0);
        assert!(r.median_wall_ms > 0.0);
        assert!(r.events_per_sec > 0.0);
        assert!(!r.top_scopes.is_empty(), "profiled rep yields scopes");
        // The engine wraps every event in an event_kind scope, so the
        // breakdown must contain at least one ClusterSim kind.
        assert!(
            r.top_scopes
                .iter()
                .any(|t| t.path.starts_with("task_finish")
                    || t.path.starts_with("job_submit")
                    || t.path.contains("schedule_pass")),
            "expected simulator scopes, got {:?}",
            r.top_scopes.iter().map(|t| &t.path).collect::<Vec<_>>()
        );
    }

    #[test]
    fn self_check_at_zero_tolerance_passes() {
        let j = smoke_result().to_json();
        let diff = check_bench_files(&j, &j, 0.0).expect("same file must compare");
        assert!(!diff.regressed(), "{}", diff.render());
    }

    #[test]
    fn perturbed_candidate_fails_direction_aware() {
        let j = smoke_result().to_json();
        // 2x wall time: regression.
        let slow = perturb(&j, "median_wall_ms", 2.0);
        let diff = check_bench_files(&j, &slow, 10.0).unwrap();
        assert!(diff.regressed());
        // Half the wall time: an improvement, never a regression.
        let fast = perturb(&j, "median_wall_ms", 0.5);
        let diff = check_bench_files(&j, &fast, 10.0).unwrap();
        assert!(!diff.regressed(), "{}", diff.render());
        // Throughput drop: regression (higher-is-better direction).
        let starved = perturb(&j, "events_per_sec", 0.5);
        let diff = check_bench_files(&j, &starved, 10.0).unwrap();
        assert!(diff.regressed());
    }

    #[test]
    fn config_mismatch_is_an_error_not_a_regression() {
        let a = smoke_result().to_json();
        let b = a.replace("\"seed\":7", "\"seed\":8");
        let err = check_bench_files(&a, &b, 50.0).unwrap_err();
        assert!(err.contains("config.seed"), "{err}");
        let c = a.replace("\"schema\":\"cbp-bench\"", "\"schema\":\"other\"");
        assert!(check_bench_files(&a, &c, 50.0).is_err());
    }

    #[test]
    fn matrices_have_unique_findable_names() {
        let mut names: Vec<&str> = standard_matrix()
            .iter()
            .chain(tiny_matrix().iter())
            .map(|s| s.name)
            .collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(len, names.len(), "scenario names must be unique");
        for n in names {
            assert!(find_scenario(n).is_some(), "{n} must be findable");
        }
    }

    /// Multiplies the value of `key` in the `measured` object by `factor`.
    fn perturb(json: &str, key: &str, factor: f64) -> String {
        let v: Value = serde_json::from_str(json).unwrap();
        let old = v
            .get("measured")
            .and_then(|m| m.get(key))
            .and_then(|x| x.as_f64())
            .unwrap();
        let needle = {
            let mut s = String::new();
            cbp_telemetry::json::push_key(&mut s, key);
            cbp_telemetry::json::push_f64(&mut s, old);
            s
        };
        let replacement = {
            let mut s = String::new();
            cbp_telemetry::json::push_key(&mut s, key);
            cbp_telemetry::json::push_f64(&mut s, old * factor);
            s
        };
        let out = json.replace(&needle, &replacement);
        assert_ne!(out, *json, "perturbation must change the document");
        out
    }
}
