//! Instrumented ("observability") runs behind `repro`'s telemetry flags.
//!
//! The experiment functions in [`crate::experiments`] run many
//! configurations to assemble a table; tracing all of them at once would
//! interleave unrelated runs in one file. Instead, when any of
//! `--trace-out` / `--chrome-trace` / `--timeseries` / `--telemetry` is
//! passed, `repro` performs **one additional instrumented run**
//! representative of the requested experiment (the adaptive checkpoint
//! policy on the experiment's workload) and emits the requested artifacts
//! from it.
//!
//! All sinks are deterministic per `(experiment, scale, seed)`: the JSONL
//! trace, the Chrome trace and the time series are byte-identical across
//! repeated invocations. Registry snapshots exclude wall-clock quantities
//! for the same reason; engine throughput is printed separately.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use cbp_core::{ClusterSim, PreemptionPolicy, TelemetryReport};
use cbp_faults::FaultSpec;
use cbp_obs::{paths_to_folded, ObsReport, SharedCollector, SpanCollector, WhatIf};
use cbp_simkit::SimDuration;
use cbp_storage::MediaKind;
use cbp_telemetry::{ChromeTraceTracer, JsonlTracer, MultiTracer, Tracer};
use cbp_workload::facebook::FacebookConfig;
use cbp_yarn::{YarnConfig, YarnSim};

use crate::experiments::google_setup;
use crate::Scale;

/// Jobs listed in the analysis report's worst-penalized table. Shared by
/// the online (`--analyze`) and offline (`repro analyze`) paths so both
/// produce byte-identical reports for the same run.
pub const ANALYZE_TOP_K: usize = 10;

/// Which telemetry artifacts `repro` was asked to produce.
#[derive(Debug, Default, Clone)]
pub struct TelemetryOptions {
    /// `--trace-out PATH`: structured JSONL trace.
    pub trace_out: Option<String>,
    /// `--chrome-trace PATH`: Chrome/Perfetto `trace.json`.
    pub chrome_trace: Option<String>,
    /// `--timeseries PATH`: columnar time-series JSON.
    pub timeseries: Option<String>,
    /// `--telemetry`: print the metrics registry and engine throughput.
    pub telemetry: bool,
    /// `--analyze PATH`: write the `cbp-obs` analysis report and print
    /// the penalty table.
    pub analyze: Option<String>,
    /// `--critical-path`: record segment timelines, extract per-job
    /// critical paths and print the attribution table (the report JSON
    /// gains its `"crit"` section).
    pub critical_path: bool,
    /// `--flamegraph-out PATH`: write the critical paths as
    /// inferno-compatible folded-stack text (implies `--critical-path`).
    pub flamegraph_out: Option<String>,
    /// `--what-if SCENARIO` (repeatable): print predicted per-band p95
    /// responses under the counterfactual (implies `--critical-path`).
    pub what_if: Vec<WhatIf>,
    /// `--faults SPEC`: attach a deterministic fault plan to the
    /// instrumented run (chaos replay; see [`FaultSpec::parse`]).
    pub faults: Option<FaultSpec>,
    /// `--no-lifecycle`: disable checkpoint-image lifecycle management
    /// (the GC → evict → spill degradation ladder) for the instrumented
    /// run. Ablation baseline for the capacity-pressure experiments;
    /// lifecycle is on by default.
    pub no_lifecycle: bool,
    /// `--no-resume`: disable chunked resumable transfers + targeted
    /// chunk repair in the attached fault plan (failed dumps rewrite
    /// from byte zero, corrupt images are total losses). Ablation of
    /// the integrity machinery; requires `--faults`.
    pub no_resume: bool,
}

impl TelemetryOptions {
    /// True if any artifact was requested (default is fully silent).
    pub fn any(&self) -> bool {
        self.trace_out.is_some()
            || self.chrome_trace.is_some()
            || self.timeseries.is_some()
            || self.telemetry
            || self.analyze.is_some()
            || self.wants_crit()
    }

    /// True if any flag needs segment timelines and critical paths.
    pub fn wants_crit(&self) -> bool {
        self.critical_path || self.flamegraph_out.is_some() || !self.what_if.is_empty()
    }
}

/// Experiments driven by the YARN protocol simulator.
const YARN_IDS: [&str; 6] = ["fig8", "fig9", "fig10", "fig11", "fig12", "mapreduce"];

/// Experiments with no backing discrete-event simulation (analytic models
/// and microbenchmark tables); there is nothing to trace.
const ANALYTIC_IDS: [&str; 4] = ["fig2", "table3", "fig4", "fig6"];

/// Sim-time gap between time-series samples.
const SAMPLE_INTERVAL_SECS: u64 = 60;

/// Runs one instrumented simulation representative of `id` and emits the
/// artifacts selected in `opts`. Returns `Ok(false)` if the experiment has
/// no backing simulation (nothing was written).
pub fn run_instrumented(
    id: &str,
    scale: Scale,
    seed: u64,
    opts: &TelemetryOptions,
) -> Result<bool, String> {
    if ANALYTIC_IDS.contains(&id) {
        return Ok(false);
    }
    let (telemetry, collector) = if YARN_IDS.contains(&id) {
        run_yarn(scale, seed, opts)?
    } else {
        run_trace_sim(scale, seed, opts)?
    };
    emit(&telemetry, collector, opts)?;
    Ok(true)
}

/// Builds the fan-out tracer for the requested sinks, plus (when
/// `--analyze` was given) a [`SharedCollector`] handle kept outside the
/// tracer so the report can be extracted after the run. Returns
/// `(None, None)` if nothing was requested, so the simulator keeps its
/// `NullTracer`.
#[allow(clippy::type_complexity)]
fn build_tracer(
    opts: &TelemetryOptions,
) -> Result<(Option<Box<dyn Tracer>>, Option<SharedCollector>), String> {
    let mut multi = MultiTracer::new();
    if let Some(path) = &opts.trace_out {
        let f = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        multi.push(Box::new(JsonlTracer::new(BufWriter::new(f))));
    }
    if let Some(path) = &opts.chrome_trace {
        let f = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        multi.push(Box::new(ChromeTraceTracer::new(BufWriter::new(f))));
    }
    let collector = if opts.wants_crit() {
        Some(SharedCollector::with_segments())
    } else if opts.analyze.is_some() {
        Some(SharedCollector::new())
    } else {
        None
    };
    if let Some(c) = &collector {
        multi.push(Box::new(c.clone()));
    }
    let tracer: Option<Box<dyn Tracer>> = if multi.is_empty() {
        None
    } else {
        Some(Box::new(multi))
    };
    Ok((tracer, collector))
}

/// Instrumented Google-trace run (adaptive policy, default media).
fn run_trace_sim(
    scale: Scale,
    seed: u64,
    opts: &TelemetryOptions,
) -> Result<(TelemetryReport, Option<SharedCollector>), String> {
    let (workload, base) = google_setup(scale, seed);
    let mut cfg = base
        .with_policy(PreemptionPolicy::Adaptive)
        .with_lifecycle(!opts.no_lifecycle);
    if let Some(spec) = &opts.faults {
        let mut spec = spec.clone();
        if opts.no_resume {
            spec.resume = false;
        }
        cfg = cfg.with_faults(spec);
    }
    let mut sim = ClusterSim::new(cfg, workload);
    let (tracer, collector) = build_tracer(opts)?;
    if let Some(tracer) = tracer {
        sim.set_tracer(tracer);
    }
    if opts.timeseries.is_some() {
        sim.enable_sampling(SimDuration::from_secs(SAMPLE_INTERVAL_SECS));
    }
    Ok((sim.run().telemetry, collector))
}

/// Instrumented YARN run (adaptive policy on the Facebook workload).
fn run_yarn(
    scale: Scale,
    seed: u64,
    opts: &TelemetryOptions,
) -> Result<(TelemetryReport, Option<SharedCollector>), String> {
    let nodes = scale.apply(8, 2);
    let slots = nodes * 24;
    let workload = FacebookConfig {
        jobs: scale.apply(40, 10),
        total_tasks: scale.apply(7_000, 260),
        giant_job_tasks: (slots as f64 * 1.3) as usize,
        ..Default::default()
    }
    .generate(seed);
    let mut cfg = YarnConfig::paper_cluster(PreemptionPolicy::Adaptive, MediaKind::Hdd)
        .with_lifecycle(!opts.no_lifecycle);
    cfg.nodes = nodes;
    if let Some(spec) = &opts.faults {
        let mut spec = spec.clone();
        if opts.no_resume {
            spec.resume = false;
        }
        cfg = cfg.with_faults(spec);
    }
    let mut sim = YarnSim::new(cfg, workload);
    let (tracer, collector) = build_tracer(opts)?;
    if let Some(tracer) = tracer {
        sim.set_tracer(tracer);
    }
    let (_, telemetry) = sim.run_with_telemetry();
    Ok((telemetry, collector))
}

/// Replays a `--trace-out` JSONL file offline and builds the same
/// [`ObsReport`] the online `--analyze` path produces. Entry point for
/// the `repro analyze` subcommand.
pub fn analyze_trace_file(path: &str, top_k: usize) -> Result<ObsReport, String> {
    Ok(ObsReport::build(
        &analyze_trace_collector(path, false)?,
        top_k,
    ))
}

/// Replays a `--trace-out` JSONL file into a [`SpanCollector`],
/// optionally recording segment timelines for critical-path extraction.
/// The offline collector state is identical to the online one for the
/// same run, so reports built either way are byte-identical.
pub fn analyze_trace_collector(path: &str, segments: bool) -> Result<SpanCollector, String> {
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    cbp_obs::collect_jsonl_with(BufReader::new(f), segments)
        .map_err(|e| format!("read {path}: {e}"))
}

/// Writes the time series (if requested), prints the registry table and
/// engine throughput (if requested), and writes + prints the `cbp-obs`
/// analysis report (if `--analyze` was given).
fn emit(
    telemetry: &TelemetryReport,
    collector: Option<SharedCollector>,
    opts: &TelemetryOptions,
) -> Result<(), String> {
    if let Some(path) = &opts.trace_out {
        eprintln!("wrote {path}");
    }
    if let Some(path) = &opts.chrome_trace {
        eprintln!("wrote {path}");
    }
    if let Some(path) = &opts.timeseries {
        match &telemetry.timeseries {
            Some(series) => {
                std::fs::write(path, series.to_json()).map_err(|e| format!("write {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            None => eprintln!(
                "warning: --timeseries is only available for trace-driven \
                 (ClusterSim) experiments; nothing written to {path}"
            ),
        }
    }
    if opts.telemetry {
        println!("################ telemetry ################");
        print!("{}", telemetry.registry.render_table());
        println!(
            "engine: {} events in {:.3}s wall ({:.0} events/s)",
            telemetry.engine_events,
            telemetry.engine_wall_secs,
            telemetry.events_per_sec()
        );
    }
    if opts.analyze.is_some() || opts.wants_crit() {
        let collector = collector
            .expect("analysis flags always install a collector")
            .take();
        let mut report = ObsReport::build(&collector, ANALYZE_TOP_K);
        if opts.wants_crit() {
            report = report.with_crit(&collector)?;
        }
        if let Some(path) = &opts.analyze {
            std::fs::write(path, report.to_json()).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        println!("################ analysis ################");
        print!("{}", report.render_table());
        emit_crit_extras(&report, &collector, opts)?;
    }
    Ok(())
}

/// Folded-stack export and what-if tables behind the critical-path
/// flags. Shared by the online (`--analyze`) and offline (`repro
/// analyze`) paths.
pub fn emit_crit_extras(
    report: &ObsReport,
    collector: &SpanCollector,
    opts: &TelemetryOptions,
) -> Result<(), String> {
    if let Some(path) = &opts.flamegraph_out {
        let paths = cbp_obs::CritReport::extract_paths(collector)?;
        std::fs::write(path, paths_to_folded(&paths)).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if !opts.what_if.is_empty() {
        let crit = report
            .crit
            .as_ref()
            .expect("what-if requires the crit section");
        for w in &opts.what_if {
            print!("{}", crit.render_what_if(*w));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `ResponseSummary` percentiles must survive JSON serialization —
    /// `BandMetrics.responses` is `#[serde(skip)]`, so the summary is the
    /// only percentile information a JSON consumer gets.
    #[test]
    fn response_summary_survives_json_export() {
        let (workload, base) = google_setup(Scale::SMOKE, 3);
        let report = base.with_policy(PreemptionPolicy::Kill).run(&workload);
        let json = serde_json::to_value(&report.metrics).expect("serialize RunMetrics");
        let bands = json
            .get("per_band")
            .and_then(|b| b.as_object())
            .expect("per_band object");
        assert!(!bands.is_empty(), "smoke run finishes jobs in some band");
        for (band, metrics) in bands {
            let summary = metrics
                .get("response_summary")
                .unwrap_or_else(|| panic!("band {band} missing response_summary"));
            for key in ["p50", "p95", "p99", "max"] {
                let v = summary
                    .get(key)
                    .and_then(|v| v.as_f64())
                    .unwrap_or_else(|| panic!("band {band} summary missing {key}"));
                assert!(v >= 0.0);
            }
            // raw samples must stay out of the export
            assert!(metrics.get("responses").is_none());
        }
    }

    #[test]
    fn instrumented_run_produces_deterministic_registry() {
        let opts = TelemetryOptions::default();
        let (a, _) = run_trace_sim(Scale::SMOKE, 11, &opts).unwrap();
        let (b, _) = run_trace_sim(Scale::SMOKE, 11, &opts).unwrap();
        assert_eq!(
            a.registry.to_json(),
            b.registry.to_json(),
            "registry snapshots must be byte-stable per seed"
        );
        assert!(a.engine_events > 0);
    }

    /// The CI chaos smoke's core contract: the same `(seed, fault plan)`
    /// instrumented run replays to an identical registry snapshot.
    #[test]
    fn faulted_instrumented_run_is_deterministic() {
        let opts = TelemetryOptions {
            faults: Some(FaultSpec {
                seed: 7,
                ..FaultSpec::heavy()
            }),
            ..Default::default()
        };
        let (a, _) = run_trace_sim(Scale::SMOKE, 11, &opts).unwrap();
        let (b, _) = run_trace_sim(Scale::SMOKE, 11, &opts).unwrap();
        assert_eq!(
            a.registry.to_json(),
            b.registry.to_json(),
            "chaos replays must be byte-stable per (seed, plan)"
        );

        let calm = TelemetryOptions::default();
        let (c, _) = run_trace_sim(Scale::SMOKE, 11, &calm).unwrap();
        assert_ne!(
            a.registry.to_json(),
            c.registry.to_json(),
            "a heavy plan must actually perturb the run"
        );
    }

    #[test]
    fn yarn_instrumented_run_has_engine_stats() {
        let opts = TelemetryOptions::default();
        let (t, collector) = run_yarn(Scale::SMOKE, 5, &opts).unwrap();
        assert!(collector.is_none(), "no --analyze, no collector");
        assert!(t.engine_events > 0);
        assert_eq!(
            t.registry.counter("engine.events"),
            Some(t.engine_events),
            "registry mirrors the engine event count"
        );
        assert!(
            t.timeseries.is_none(),
            "YARN runs do not sample time series"
        );
    }

    /// The online `--analyze` collector and an offline replay of the same
    /// run's `--trace-out` file must produce byte-identical reports. This
    /// is the core contract of `repro analyze`.
    #[test]
    fn online_and_offline_analysis_agree() {
        let dir = std::env::temp_dir().join(format!("cbp-analyze-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let opts = TelemetryOptions {
            trace_out: Some(trace.to_str().unwrap().to_string()),
            analyze: Some(dir.join("unused.json").to_str().unwrap().to_string()),
            ..Default::default()
        };
        let (_, collector) = run_trace_sim(Scale::SMOKE, 11, &opts).unwrap();
        let online = ObsReport::build(
            &collector.expect("collector installed").take(),
            ANALYZE_TOP_K,
        );
        let offline = analyze_trace_file(trace.to_str().unwrap(), ANALYZE_TOP_K).unwrap();
        assert_eq!(
            online.to_json(),
            offline.to_json(),
            "online and offline reports must be byte-identical"
        );
        assert!(online.source.tasks_finished > 0, "smoke run finishes tasks");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Same contract with the critical-path section on: the online
    /// segment-recording collector and an offline segment-recording
    /// replay produce byte-identical reports *including* `"crit"`, and
    /// byte-identical folded stacks.
    #[test]
    fn online_and_offline_critical_paths_agree() {
        let dir = std::env::temp_dir().join(format!("cbp-crit-analyze-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let opts = TelemetryOptions {
            trace_out: Some(trace.to_str().unwrap().to_string()),
            critical_path: true,
            ..Default::default()
        };
        let (_, collector) = run_trace_sim(Scale::SMOKE, 11, &opts).unwrap();
        let online_c = collector.expect("collector installed").take();
        let online = ObsReport::build(&online_c, ANALYZE_TOP_K)
            .with_crit(&online_c)
            .unwrap();
        let offline_c = analyze_trace_collector(trace.to_str().unwrap(), true).unwrap();
        let offline = ObsReport::build(&offline_c, ANALYZE_TOP_K)
            .with_crit(&offline_c)
            .unwrap();
        assert_eq!(
            online.to_json(),
            offline.to_json(),
            "online and offline crit reports must be byte-identical"
        );
        assert!(
            online.to_json().contains("\"crit\":{"),
            "report must carry the crit section"
        );
        let online_folded =
            paths_to_folded(&cbp_obs::CritReport::extract_paths(&online_c).unwrap());
        let offline_folded =
            paths_to_folded(&cbp_obs::CritReport::extract_paths(&offline_c).unwrap());
        assert_eq!(online_folded, offline_folded);
        assert!(!online_folded.is_empty(), "smoke run yields folded stacks");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
