//! The experiment harness: one function per table/figure of the paper.
//!
//! Each experiment returns [`Experiment`] — a set of [`Table`]s mirroring
//! the rows/series the paper plots — so the `repro` binary can print them
//! and assemble `EXPERIMENTS.md`. Absolute numbers come from the simulated
//! substrates, so the comparison target is the *shape* (orderings,
//! crossovers, rough factors), not the authors' testbed values; each
//! experiment embeds the paper's anchor observations in its notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_run;
pub mod experiments;
mod table;
pub mod telemetry_run;

pub use bench_run::{
    check_bench_files, find_scenario, run_scenario, standard_matrix, tiny_matrix, BenchDiff,
    BenchOptions, BenchResult, BenchScenario, SimKind, BENCH_SCHEMA, BENCH_VERSION,
};
pub use table::{Experiment, Table};
pub use telemetry_run::{
    analyze_trace_collector, analyze_trace_file, emit_crit_extras, run_instrumented,
    TelemetryOptions, ANALYZE_TOP_K,
};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Fraction of the paper's workload/cluster size (1.0 = full).
    pub factor: f64,
}

impl Scale {
    /// The paper's full scale.
    pub const FULL: Scale = Scale { factor: 1.0 };
    /// A laptop-friendly default (10% of the trace, proportionally smaller
    /// cluster — per-node load is preserved).
    pub const SMALL: Scale = Scale { factor: 0.1 };
    /// Tiny smoke-test scale for CI.
    pub const SMOKE: Scale = Scale { factor: 0.02 };

    /// Scales an integer quantity, keeping at least `min`.
    pub fn apply(&self, full: usize, min: usize) -> usize {
        ((full as f64 * self.factor).round() as usize).max(min)
    }
}

/// Runs every experiment at the given scale, in paper order.
pub fn run_all(scale: Scale, seed: u64) -> Vec<Experiment> {
    vec![
        experiments::characterize::fig1_tables12(scale, seed),
        experiments::micro::fig2(),
        experiments::micro::table3(),
        experiments::tracesim::fig3(scale, seed),
        experiments::sensitivity::fig4(),
        experiments::tracesim::fig5(scale, seed),
        experiments::sensitivity::fig6(),
        experiments::yarnexp::fig8(scale, seed),
        experiments::yarnexp::fig9(scale, seed),
        experiments::yarnexp::fig10(scale, seed),
        experiments::yarnexp::fig11(scale, seed),
        experiments::yarnexp::fig12(scale, seed),
        experiments::ablate::ablations(scale, seed),
        experiments::extensions::mapreduce(scale, seed),
        experiments::qos::qos(scale, seed),
        experiments::extensions::faults(scale, seed),
    ]
}

/// Looks up one experiment by id (`fig1`, `table3`, `fig8`, `ablate`, ...).
pub fn run_one(id: &str, scale: Scale, seed: u64) -> Option<Experiment> {
    let exp = match id {
        "fig1" | "table1" | "table2" => experiments::characterize::fig1_tables12(scale, seed),
        "fig2" => experiments::micro::fig2(),
        "table3" => experiments::micro::table3(),
        "fig3" => experiments::tracesim::fig3(scale, seed),
        "fig4" => experiments::sensitivity::fig4(),
        "fig5" => experiments::tracesim::fig5(scale, seed),
        "fig6" => experiments::sensitivity::fig6(),
        "fig8" => experiments::yarnexp::fig8(scale, seed),
        "fig9" => experiments::yarnexp::fig9(scale, seed),
        "fig10" => experiments::yarnexp::fig10(scale, seed),
        "fig11" => experiments::yarnexp::fig11(scale, seed),
        "fig12" => experiments::yarnexp::fig12(scale, seed),
        "ablate" => experiments::ablate::ablations(scale, seed),
        "mapreduce" => experiments::extensions::mapreduce(scale, seed),
        "qos" => experiments::qos::qos(scale, seed),
        "faults" => experiments::extensions::faults(scale, seed),
        _ => return None,
    };
    Some(exp)
}

/// All experiment ids accepted by [`run_one`].
pub const EXPERIMENT_IDS: [&str; 18] = [
    "fig1",
    "table1",
    "table2",
    "fig2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablate",
    "mapreduce",
    "qos",
    "faults",
];

impl Scale {
    /// Parses `full` / `small` / `smoke` / a float factor.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::FULL),
            "small" => Some(Scale::SMALL),
            "smoke" => Some(Scale::SMOKE),
            other => other
                .parse::<f64>()
                .ok()
                .filter(|f| *f > 0.0 && *f <= 1.0)
                .map(|factor| Scale { factor }),
        }
    }
}
