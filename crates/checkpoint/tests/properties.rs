//! Property-based tests for the checkpoint model's core invariants.

use cbp_checkpoint::{Criu, DirtyBitmap, TaskMemory};
use cbp_simkit::units::ByteSize;
use cbp_simkit::{SimRng, SimTime};
use cbp_storage::{Device, MediaSpec};
use proptest::prelude::*;

proptest! {
    /// Dirty bytes never exceed the footprint, whatever write pattern the
    /// task produces.
    #[test]
    fn dirty_bytes_bounded_by_footprint(
        size_mb in 1u64..2048,
        touches in proptest::collection::vec((0.0f64..1.0, any::<bool>()), 0..20),
        seed in any::<u64>(),
    ) {
        let mut mem = TaskMemory::new(ByteSize::from_mb(size_mb));
        let mut rng = SimRng::seed_from_u64(seed);
        for (frac, random) in touches {
            if random {
                mem.touch_random(frac, &mut rng);
            } else {
                mem.touch_fraction(frac);
            }
            prop_assert!(mem.dirty_bytes() <= mem.size());
            prop_assert!(mem.dirty_pages() <= mem.page_count());
        }
    }

    /// clear_dirty always zeroes tracking; mark_all_dirty always saturates.
    #[test]
    fn clear_and_saturate(size_mb in 1u64..2048, frac in 0.0f64..1.0) {
        let mut mem = TaskMemory::new(ByteSize::from_mb(size_mb));
        mem.clear_dirty();
        prop_assert_eq!(mem.dirty_pages(), 0);
        mem.touch_fraction(frac);
        let expected = ((mem.page_count() as f64 * frac).round() as usize)
            .min(mem.page_count());
        prop_assert_eq!(mem.dirty_pages(), expected);
        mem.mark_all_dirty();
        prop_assert_eq!(mem.dirty_pages(), mem.page_count());
    }

    /// Bitmap count equals the number of distinct set positions.
    #[test]
    fn bitmap_count_matches_sets(
        len in 1usize..512,
        positions in proptest::collection::vec(any::<prop::sample::Index>(), 0..100),
    ) {
        let mut bm = DirtyBitmap::new_clear(len);
        let mut distinct = std::collections::HashSet::new();
        for p in positions {
            let i = p.index(len);
            bm.set(i);
            distinct.insert(i);
        }
        prop_assert_eq!(bm.count(), distinct.len());
        for &i in &distinct {
            prop_assert!(bm.get(i));
        }
    }

    /// A dump + touch + dump sequence conserves storage accounting: the
    /// device's in-use bytes always equal the catalog's chain size.
    #[test]
    fn storage_accounting_conserved(
        size_mb in 64u64..1024,
        fracs in proptest::collection::vec(0.0f64..0.5, 1..6),
    ) {
        let mut criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = TaskMemory::new(ByteSize::from_mb(size_mb));
        let mut now = SimTime::ZERO;
        criu.dump(1, &mut mem, 0, &mut dev, now).unwrap();
        for f in fracs {
            now += cbp_simkit::SimDuration::from_secs(60);
            mem.touch_fraction(f);
            criu.dump(1, &mut mem, 0, &mut dev, now).unwrap();
            prop_assert_eq!(dev.used(), criu.image_size(1));
        }
        for (_, bytes) in criu.discard(1) {
            dev.release(bytes);
        }
        prop_assert_eq!(dev.used(), ByteSize::ZERO);
    }

    /// Incremental dump size equals the dirty bytes at dump time.
    #[test]
    fn incremental_size_is_dirty_bytes(
        size_mb in 64u64..1024,
        frac in 0.0f64..1.0,
    ) {
        let mut criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = TaskMemory::new(ByteSize::from_mb(size_mb));
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap();
        mem.touch_fraction(frac);
        let expected = mem.dirty_bytes();
        let d = criu
            .dump(1, &mut mem, 0, &mut dev, SimTime::from_secs(60))
            .unwrap();
        prop_assert_eq!(d.size, expected);
    }
}
