//! Task address-space model with soft-dirty page tracking.

use cbp_simkit::units::ByteSize;
use cbp_simkit::SimRng;

/// The page granularity at which writes are tracked.
///
/// Real soft-dirty bits are per 4 KiB page; tracking a 5 GB task at that
/// granularity would cost 1.3 M bits per task for no modelling benefit, so
/// the model uses 1 MB pages. Incremental-dump sizes are therefore rounded
/// *up* to 1 MB multiples — a conservative (slightly pessimistic) estimate
/// of CRIU's saving.
pub const DEFAULT_PAGE_SIZE: ByteSize = ByteSize::from_mb(1);

/// A fixed-size bitmap over pages.
///
/// This is the model's stand-in for the kernel's soft-dirty page-table bits:
/// `set` marks a page written, `clear_all` is what CRIU does when it arms
/// tracking after a dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyBitmap {
    words: Vec<u64>,
    len: usize,
}

impl DirtyBitmap {
    /// Creates a bitmap over `len` pages with every bit **set** — a process
    /// that has never been checkpointed has all pages "dirty".
    pub fn new_all_set(len: usize) -> Self {
        let mut bm = DirtyBitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Creates a bitmap over `len` pages with every bit clear.
    pub fn new_clear(len: usize) -> Self {
        DirtyBitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of pages covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero pages.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks page `i` dirty.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "page {i} out of range ({} pages)", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Whether page `i` is dirty.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "page {i} out of range ({} pages)", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Marks the half-open page range `[start, end)` dirty.
    ///
    /// # Panics
    ///
    /// Panics if `end > len` or `start > end`.
    pub fn set_range(&mut self, start: usize, end: usize) {
        assert!(start <= end && end <= self.len, "bad range {start}..{end}");
        for i in start..end {
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Number of dirty pages.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears every bit (CRIU re-arms tracking after a dump).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Sets every bit (tracking lost; next dump must be full).
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }
}

/// The memory image of a running task.
///
/// The workload layer calls [`TaskMemory::touch_fraction`] (or the finer
/// variants) as the task executes; the checkpoint layer reads
/// [`TaskMemory::dirty_bytes`] to size an incremental dump and clears
/// tracking on completion.
#[derive(Debug, Clone)]
pub struct TaskMemory {
    size: ByteSize,
    page_size: ByteSize,
    dirty: DirtyBitmap,
    /// Rotating cursor so repeated deterministic touches spread over the
    /// address space instead of re-dirtying the same prefix.
    cursor: usize,
}

impl TaskMemory {
    /// Creates a task image of `size` bytes with [`DEFAULT_PAGE_SIZE`] pages.
    /// All pages start dirty (nothing has been checkpointed yet).
    pub fn new(size: ByteSize) -> Self {
        Self::with_page_size(size, DEFAULT_PAGE_SIZE)
    }

    /// Creates a task image with an explicit tracking page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn with_page_size(size: ByteSize, page_size: ByteSize) -> Self {
        assert!(!page_size.is_zero(), "page size must be positive");
        let pages = (size.as_u64().div_ceil(page_size.as_u64())) as usize;
        TaskMemory {
            size,
            page_size,
            dirty: DirtyBitmap::new_all_set(pages),
            cursor: 0,
        }
    }

    /// Total memory footprint.
    pub fn size(&self) -> ByteSize {
        self.size
    }

    /// Tracking granularity.
    pub fn page_size(&self) -> ByteSize {
        self.page_size
    }

    /// Number of tracked pages.
    pub fn page_count(&self) -> usize {
        self.dirty.len()
    }

    /// Number of pages written since the last checkpoint.
    pub fn dirty_pages(&self) -> usize {
        self.dirty.count()
    }

    /// Bytes that an incremental dump must save, rounded up to whole pages
    /// and capped at the footprint.
    pub fn dirty_bytes(&self) -> ByteSize {
        let raw = self.page_size * self.dirty_pages() as u64;
        raw.min(self.size)
    }

    /// Fraction of pages dirty, in `[0, 1]`.
    pub fn dirty_fraction(&self) -> f64 {
        if self.dirty.is_empty() {
            return 0.0;
        }
        self.dirty_pages() as f64 / self.page_count() as f64
    }

    /// Marks the byte range `[offset, offset + len)` written.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the footprint.
    pub fn touch_range(&mut self, offset: ByteSize, len: ByteSize) {
        let end_byte = offset.as_u64() + len.as_u64();
        assert!(
            end_byte
                <= self
                    .size
                    .as_u64()
                    .max(self.page_count() as u64 * self.page_size.as_u64()),
            "touch past end of memory"
        );
        if len.is_zero() {
            return;
        }
        let first = (offset.as_u64() / self.page_size.as_u64()) as usize;
        let last = (end_byte.div_ceil(self.page_size.as_u64())) as usize;
        self.dirty.set_range(first, last.min(self.page_count()));
    }

    /// Deterministically marks approximately `frac` of the pages written,
    /// sweeping a rotating cursor across the address space — models an
    /// iterative application (like the paper's k-means jobs) that rewrites a
    /// working set between checkpoints.
    pub fn touch_fraction(&mut self, frac: f64) {
        let frac = frac.clamp(0.0, 1.0);
        let pages = self.page_count();
        if pages == 0 {
            return;
        }
        let n = ((pages as f64 * frac).round() as usize).min(pages);
        for k in 0..n {
            let i = (self.cursor + k) % pages;
            self.dirty.set(i);
        }
        self.cursor = (self.cursor + n) % pages;
    }

    /// Marks `frac` of the pages written at uniformly random positions
    /// (models a scattered write pattern).
    pub fn touch_random(&mut self, frac: f64, rng: &mut SimRng) {
        let frac = frac.clamp(0.0, 1.0);
        let pages = self.page_count();
        if pages == 0 {
            return;
        }
        let n = ((pages as f64 * frac).round() as usize).min(pages);
        for _ in 0..n {
            let i = rng.index(pages);
            self.dirty.set(i);
        }
    }

    /// Clears soft-dirty tracking — called when a dump completes.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear_all();
    }

    /// Marks everything dirty — called when tracking is lost (e.g. the task
    /// was killed and restarted from scratch, or tracking was never armed).
    pub fn mark_all_dirty(&mut self) {
        self.dirty.set_all();
    }

    /// Direct access to the dirty bitmap (for tests and diagnostics).
    pub fn bitmap(&self) -> &DirtyBitmap {
        &self.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_memory_is_fully_dirty() {
        let mem = TaskMemory::new(ByteSize::from_gb(5));
        assert_eq!(mem.page_count(), 5000);
        assert_eq!(mem.dirty_pages(), 5000);
        assert_eq!(mem.dirty_bytes(), ByteSize::from_gb(5));
        assert!((mem.dirty_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clear_then_touch_fraction() {
        let mut mem = TaskMemory::new(ByteSize::from_gb(5));
        mem.clear_dirty();
        assert_eq!(mem.dirty_bytes(), ByteSize::ZERO);
        mem.touch_fraction(0.10);
        assert_eq!(mem.dirty_pages(), 500);
        assert_eq!(mem.dirty_bytes(), ByteSize::from_mb(500));
    }

    #[test]
    fn touch_fraction_rotates_coverage() {
        let mut mem = TaskMemory::with_page_size(ByteSize::from_mb(10), ByteSize::from_mb(1));
        mem.clear_dirty();
        mem.touch_fraction(0.5); // pages 0..5
        mem.clear_dirty();
        mem.touch_fraction(0.5); // pages 5..10 via cursor
        assert!(mem.bitmap().get(5));
        assert!(!mem.bitmap().get(0));
    }

    #[test]
    fn touch_range_partial_pages_round_up() {
        let mut mem = TaskMemory::with_page_size(ByteSize::from_mb(10), ByteSize::from_mb(1));
        mem.clear_dirty();
        // Half a page touches one page; spanning a boundary touches two.
        mem.touch_range(ByteSize::from_kb(100), ByteSize::from_kb(100));
        assert_eq!(mem.dirty_pages(), 1);
        mem.touch_range(ByteSize::from_kb(900), ByteSize::from_kb(200));
        assert_eq!(mem.dirty_pages(), 2);
    }

    #[test]
    fn touch_random_is_bounded() {
        let mut mem = TaskMemory::new(ByteSize::from_gb(1));
        mem.clear_dirty();
        let mut rng = SimRng::seed_from_u64(9);
        mem.touch_random(0.2, &mut rng);
        // Random collisions make this <= 20%, > 0.
        assert!(mem.dirty_pages() > 0);
        assert!(mem.dirty_pages() <= 200);
    }

    #[test]
    fn dirty_bytes_capped_at_footprint() {
        // 1.5 MB footprint with 1 MB pages -> 2 pages, but dirty_bytes is
        // capped at the footprint.
        let mem = TaskMemory::with_page_size(ByteSize::from_kb(1500), ByteSize::from_mb(1));
        assert_eq!(mem.page_count(), 2);
        assert_eq!(mem.dirty_bytes(), ByteSize::from_kb(1500));
    }

    #[test]
    fn mark_all_dirty_restores_full_dump() {
        let mut mem = TaskMemory::new(ByteSize::from_mb(100));
        mem.clear_dirty();
        mem.mark_all_dirty();
        assert_eq!(mem.dirty_bytes(), ByteSize::from_mb(100));
    }

    #[test]
    fn bitmap_tail_masking() {
        // 70 pages: spills into a second word with a partial tail.
        let bm = DirtyBitmap::new_all_set(70);
        assert_eq!(bm.count(), 70);
        let mut bm2 = DirtyBitmap::new_clear(70);
        bm2.set_all();
        assert_eq!(bm2.count(), 70);
        bm2.set(69);
        assert_eq!(bm2.count(), 70);
    }

    #[test]
    fn bitmap_set_get_range() {
        let mut bm = DirtyBitmap::new_clear(128);
        bm.set_range(60, 70);
        assert_eq!(bm.count(), 10);
        assert!(bm.get(60) && bm.get(69));
        assert!(!bm.get(59) && !bm.get(70));
        bm.clear_all();
        assert_eq!(bm.count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmap_out_of_range_panics() {
        DirtyBitmap::new_clear(10).set(10);
    }
}
