//! A CRIU-style application-transparent checkpoint/restore model.
//!
//! The paper suspends preempted tasks with CRIU (Checkpoint/Restore In
//! Userspace): the whole process state — dominated by memory content — is
//! dumped to storage, and later restored, possibly on another node via HDFS.
//! Two CRIU behaviours matter to the scheduler and are modelled
//! mechanistically here rather than as constants:
//!
//! 1. **Dump/restore latency** is proportional to image size over media
//!    bandwidth (plus per-node queueing, handled by
//!    [`cbp_storage::Device`]).
//! 2. **Incremental checkpoints** dump only pages written since the last
//!    checkpoint, tracked by the kernel's *soft-dirty* page-table bits.
//!    [`TaskMemory`] keeps an actual per-page dirty bitmap that tasks write
//!    into while running; a dump scans and clears it, exactly mirroring
//!    CRIU's `--track-mem` flow.
//!
//! The entry point is [`Criu`], which owns the image catalog:
//!
//! ```
//! use cbp_checkpoint::{Criu, TaskMemory};
//! use cbp_simkit::{units::ByteSize, SimTime};
//! use cbp_storage::{Device, MediaSpec};
//!
//! let mut criu = Criu::new(true);
//! let mut dev = Device::new(MediaSpec::nvm());
//! let mut mem = TaskMemory::new(ByteSize::from_gb(5));
//!
//! // First checkpoint: full image (all pages dirty since start).
//! let dump = criu.dump(7, &mut mem, 0, &mut dev, SimTime::ZERO)?;
//! assert_eq!(dump.size, ByteSize::from_gb(5));
//!
//! // The task runs on and rewrites 10% of its memory...
//! mem.touch_fraction(0.10);
//!
//! // ...so the second checkpoint is incremental and ~10% the size.
//! let dump2 = criu.dump(7, &mut mem, 0, &mut dev, SimTime::from_secs(60))?;
//! assert!(dump2.size < ByteSize::from_gb(1));
//! # Ok::<(), cbp_storage::CapacityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod criu;
mod image;
mod integrity;
mod lifecycle;
mod memory;
mod nvram;

pub use criu::{
    CompressionSpec, Criu, DumpResult, OverheadEstimate, RestoreResult, DEFAULT_MAX_CHAIN_LEN,
};
pub use image::{CheckpointKind, ImageChain, ImageId, ImageRecord};
pub use integrity::{chunk_checksum, ChunkEntry, ChunkManifest, DEFAULT_CHUNK_BYTES};
pub use lifecycle::{admit, plan_evictions, Admission, EvictionCandidate, ImageLedger};
pub use memory::{DirtyBitmap, TaskMemory, DEFAULT_PAGE_SIZE};
pub use nvram::{
    NvmPathComparison, NvramCheckpointer, NvramError, NvramResume, NvramSpec, NvramSuspend,
};
