//! Checkpoint image records and per-task image chains.

use cbp_simkit::units::ByteSize;
use cbp_simkit::SimTime;
use serde::{Deserialize, Serialize};

use crate::integrity::ChunkManifest;

/// Identifier of one dumped image (unique within a [`crate::Criu`] catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ImageId(pub u64);

/// Whether an image holds the whole address space or only pages dirtied
/// since the previous image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CheckpointKind {
    /// A complete dump.
    Full,
    /// A soft-dirty incremental dump layered on `parent`.
    Incremental {
        /// The image this delta applies on top of.
        parent: ImageId,
    },
}

/// One on-disk checkpoint image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageRecord {
    /// Image identity.
    pub id: ImageId,
    /// Full or incremental.
    pub kind: CheckpointKind,
    /// Bytes occupied on storage.
    pub size: ByteSize,
    /// When the dump completed.
    pub created: SimTime,
    /// Index of the node whose device holds the image (or whose DFS write
    /// originated there).
    pub origin_node: u32,
    /// Per-chunk integrity manifest recorded at dump time.
    pub manifest: ChunkManifest,
    /// Opaque scheduler-defined progress stamp (e.g. microseconds of
    /// completed work) captured when this image was dumped. Lets a chain
    /// truncated to a valid prefix roll the task's progress back to what
    /// the surviving tip actually captured.
    pub progress: u64,
}

/// The sequence of images that reconstructs one task: a full image followed
/// by zero or more incremental deltas.
///
/// A restore must read every image in the chain, so the restore cost of a
/// much-suspended task grows with its accumulated deltas — matching CRIU,
/// where each `--prev-images-dir` layer is read back.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ImageChain {
    images: Vec<ImageRecord>,
}

impl ImageChain {
    /// An empty chain (task never checkpointed).
    pub fn new() -> Self {
        ImageChain { images: Vec::new() }
    }

    /// Appends an image.
    ///
    /// # Panics
    ///
    /// Panics if a full image is appended onto a non-empty chain (that would
    /// orphan the existing images — call [`ImageChain::clear`] first), or an
    /// incremental is appended whose parent is not the chain tip. In debug
    /// builds, additionally rejects out-of-order or duplicate image ids:
    /// the catalog allocates ids monotonically, so a non-increasing id here
    /// means the caller is replaying or reordering dumps.
    pub fn push(&mut self, record: ImageRecord) {
        match record.kind {
            CheckpointKind::Full => {
                assert!(
                    self.images.is_empty(),
                    "full image onto non-empty chain; clear() the old chain first"
                );
            }
            CheckpointKind::Incremental { parent } => {
                let tip = self
                    .images
                    .last()
                    .expect("incremental image needs a parent chain");
                assert_eq!(tip.id, parent, "incremental parent must be the chain tip");
            }
        }
        if let Some(tip) = self.images.last() {
            debug_assert!(
                record.id > tip.id,
                "image ids must be strictly increasing along a chain \
                 (pushed {:?} onto tip {:?})",
                record.id,
                tip.id
            );
        }
        self.images.push(record);
    }

    /// The image records, oldest (full) first.
    pub fn images(&self) -> &[ImageRecord] {
        &self.images
    }

    /// The most recent image, if any.
    pub fn tip(&self) -> Option<&ImageRecord> {
        self.images.last()
    }

    /// True if the chain holds no images.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of images (1 full + N incrementals).
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Total bytes on storage — also the bytes a restore must read.
    pub fn total_size(&self) -> ByteSize {
        self.images.iter().map(|i| i.size).sum()
    }

    /// The most recent image, mutably (progress stamping, chunk repair).
    pub fn tip_mut(&mut self) -> Option<&mut ImageRecord> {
        self.images.last_mut()
    }

    /// The image at position `idx` (oldest first), mutably.
    pub fn image_mut(&mut self, idx: usize) -> Option<&mut ImageRecord> {
        self.images.get_mut(idx)
    }

    /// Removes and returns the most recent image (aborting an in-flight
    /// dump). Returns `None` if the chain is empty.
    pub fn pop_tip(&mut self) -> Option<ImageRecord> {
        self.images.pop()
    }

    /// Drops every image after the first `keep` (truncation to a valid
    /// prefix), returning the freed `(origin_node, bytes)` reservations for
    /// the caller to release. `truncate(0)` empties the chain; a `keep` at
    /// or beyond the current length is a no-op.
    pub fn truncate(&mut self, keep: usize) -> Vec<(u32, ByteSize)> {
        if keep >= self.images.len() {
            return Vec::new();
        }
        let freed = self.images[keep..]
            .iter()
            .map(|i| (i.origin_node, i.size))
            .collect();
        self.images.truncate(keep);
        freed
    }

    /// Drops all images, returning the freed bytes per origin node so the
    /// caller can release device reservations.
    pub fn clear(&mut self) -> Vec<(u32, ByteSize)> {
        let freed = self
            .images
            .iter()
            .map(|i| (i.origin_node, i.size))
            .collect();
        self.images.clear();
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, kind: CheckpointKind, mb: u64) -> ImageRecord {
        ImageRecord {
            id: ImageId(id),
            kind,
            size: ByteSize::from_mb(mb),
            created: SimTime::ZERO,
            origin_node: 0,
            manifest: ChunkManifest::build(
                ImageId(id),
                ByteSize::from_mb(mb),
                crate::integrity::DEFAULT_CHUNK_BYTES,
            ),
            progress: 0,
        }
    }

    #[test]
    fn chain_accumulates_sizes() {
        let mut c = ImageChain::new();
        assert!(c.is_empty());
        c.push(rec(1, CheckpointKind::Full, 5000));
        c.push(rec(
            2,
            CheckpointKind::Incremental { parent: ImageId(1) },
            500,
        ));
        c.push(rec(
            3,
            CheckpointKind::Incremental { parent: ImageId(2) },
            500,
        ));
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_size(), ByteSize::from_mb(6000));
        assert_eq!(c.tip().unwrap().id, ImageId(3));
    }

    #[test]
    fn clear_reports_freed_bytes() {
        let mut c = ImageChain::new();
        c.push(rec(1, CheckpointKind::Full, 100));
        let freed = c.clear();
        assert_eq!(freed, vec![(0, ByteSize::from_mb(100))]);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "chain tip")]
    fn incremental_must_chain_to_tip() {
        let mut c = ImageChain::new();
        c.push(rec(1, CheckpointKind::Full, 100));
        c.push(rec(
            2,
            CheckpointKind::Incremental {
                parent: ImageId(99),
            },
            10,
        ));
    }

    #[test]
    #[should_panic(expected = "clear()")]
    fn full_onto_nonempty_rejected() {
        let mut c = ImageChain::new();
        c.push(rec(1, CheckpointKind::Full, 100));
        c.push(rec(2, CheckpointKind::Full, 100));
    }

    #[test]
    #[should_panic(expected = "needs a parent")]
    fn incremental_needs_parent() {
        let mut c = ImageChain::new();
        c.push(rec(
            1,
            CheckpointKind::Incremental { parent: ImageId(0) },
            10,
        ));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly increasing")]
    fn duplicate_image_id_rejected() {
        let mut c = ImageChain::new();
        c.push(rec(5, CheckpointKind::Full, 100));
        c.push(rec(
            5,
            CheckpointKind::Incremental { parent: ImageId(5) },
            10,
        ));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_image_id_rejected() {
        let mut c = ImageChain::new();
        c.push(rec(9, CheckpointKind::Full, 100));
        c.push(rec(
            4,
            CheckpointKind::Incremental { parent: ImageId(9) },
            10,
        ));
    }

    #[test]
    fn truncate_keeps_prefix_and_reports_freed() {
        let mut c = ImageChain::new();
        c.push(rec(1, CheckpointKind::Full, 1000));
        c.push(rec(
            2,
            CheckpointKind::Incremental { parent: ImageId(1) },
            100,
        ));
        c.push(rec(
            3,
            CheckpointKind::Incremental { parent: ImageId(2) },
            50,
        ));
        assert!(c.truncate(3).is_empty(), "keep >= len is a no-op");
        let freed = c.truncate(1);
        assert_eq!(
            freed,
            vec![(0, ByteSize::from_mb(100)), (0, ByteSize::from_mb(50))]
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c.tip().unwrap().id, ImageId(1));
        assert_eq!(c.truncate(0), vec![(0, ByteSize::from_mb(1000))]);
        assert!(c.is_empty());
    }
}
