//! Checkpoint-image lifecycle management: the capacity-backpressure ladder.
//!
//! The paper's media (Table 3: 48 GB NVM, 120 GB SSD) fill quickly under
//! bursty preemption, and a naive engine treats a full device as just
//! another dump failure — retried and then killed. This module provides the
//! building blocks for degrading gracefully instead:
//!
//! 1. **Image ledger** ([`ImageLedger`]): per-device live-image byte counts
//!    maintained alongside the [`crate::Criu`] catalog, so the simulators
//!    can hard-assert the conservation invariant *device reserved bytes ==
//!    live catalog bytes (+ injected leaks)* after every event.
//! 2. **Admission control** ([`admit`]): before submitting a dump, the
//!    estimated image size is compared against the device headroom — which
//!    already includes queued-but-unfinished dump reservations, because
//!    reservations are taken at submission.
//! 3. **Degradation ladder** (driven by the simulators, planned here):
//!    when headroom is insufficient the caller first runs a **GC pass**
//!    (reclaiming dead/stale reservations), then **evicts** the
//!    cheapest-to-lose live chains ([`plan_evictions`]; the owning tasks
//!    fall back to scratch-restart), then **spills** the dump to a remote
//!    node's device via the DFS (paying pipeline cost; the restore becomes
//!    remote), and only then gives up with a `DumpFallback("no-space")`
//!    kill.
//!
//! The ladder itself lives in the simulators (they own task state and
//! tracing); everything here is pure bookkeeping so both engines share one
//! definition of "fits", "cheapest to lose", and "conserved".

use cbp_simkit::units::ByteSize;
use cbp_storage::Device;

/// Per-node live-image byte ledger.
///
/// Mirrors every reservation the catalog holds: bytes are added when a dump
/// reserves storage on a node and subtracted when images are discarded,
/// aborted, or replaced. Indexed by origin-node id, growing on demand, so
/// per-event conservation checks are O(nodes) with no hashing.
#[derive(Debug, Default, Clone)]
pub struct ImageLedger {
    live: Vec<u64>,
}

impl ImageLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` of new image data on `node`.
    pub fn add(&mut self, node: u32, bytes: ByteSize) {
        let idx = node as usize;
        if idx >= self.live.len() {
            self.live.resize(idx + 1, 0);
        }
        self.live[idx] += bytes.as_u64();
    }

    /// Removes `bytes` of image data from `node`.
    ///
    /// Saturates at zero; the catalog never discards more than it recorded,
    /// so an underflow here is a bookkeeping bug the conservation assert
    /// will surface as a device/ledger mismatch.
    pub fn sub(&mut self, node: u32, bytes: ByteSize) {
        let idx = node as usize;
        if idx < self.live.len() {
            debug_assert!(
                self.live[idx] >= bytes.as_u64(),
                "ledger underflow on node {node}"
            );
            self.live[idx] = self.live[idx].saturating_sub(bytes.as_u64());
        } else {
            debug_assert!(bytes.is_zero(), "ledger underflow on unseen node {node}");
        }
    }

    /// Live image bytes recorded on `node`.
    pub fn bytes_on(&self, node: u32) -> ByteSize {
        ByteSize::from_bytes(self.live.get(node as usize).copied().unwrap_or(0))
    }

    /// Live image bytes across all nodes.
    pub fn total(&self) -> ByteSize {
        ByteSize::from_bytes(self.live.iter().sum())
    }
}

/// The admission-control verdict for a dump of `estimated` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The device headroom (including queued reservations) covers the dump.
    Fits,
    /// The dump does not fit; `shortfall` bytes must be reclaimed (GC,
    /// eviction) or the dump relocated (spill) before it can proceed.
    NeedsReclaim {
        /// Bytes missing from the device headroom.
        shortfall: ByteSize,
    },
}

/// Admission control: does a dump of `estimated` bytes fit on `device`?
///
/// Headroom already reflects every queued-but-unfinished dump (reservations
/// are taken at submission), so admitting here cannot oversubscribe the
/// device no matter how deep its FIFO queue is.
pub fn admit(estimated: ByteSize, device: &Device) -> Admission {
    let headroom = device.headroom();
    if estimated <= headroom {
        Admission::Fits
    } else {
        Admission::NeedsReclaim {
            shortfall: estimated.saturating_sub(headroom),
        }
    }
}

/// A live chain that could be evicted to make room on its device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictionCandidate {
    /// Scheduler-level task id owning the chain.
    pub task: u64,
    /// What the cluster loses by evicting: the checkpointed progress that
    /// the task would have to recompute from scratch, in core-seconds.
    pub cost_core_secs: f64,
    /// Image bytes the eviction frees on the pressured device.
    pub bytes_on_node: ByteSize,
}

/// Picks which chains to evict to reclaim at least `shortfall` bytes.
///
/// Candidates are taken cheapest-first (by [`EvictionCandidate::cost_core_secs`],
/// tie-broken by task id for determinism) until the freed bytes cover the
/// shortfall. Returns the chosen victims in eviction order; if even evicting
/// everything cannot cover the shortfall, returns the empty plan — partial
/// eviction would destroy progress without letting the dump proceed, so the
/// caller should move to the next ladder rung (spill) instead.
pub fn plan_evictions(
    mut candidates: Vec<EvictionCandidate>,
    shortfall: ByteSize,
) -> Vec<EvictionCandidate> {
    let available: u64 = candidates.iter().map(|c| c.bytes_on_node.as_u64()).sum();
    if available < shortfall.as_u64() {
        return Vec::new();
    }
    candidates.sort_by(|a, b| {
        a.cost_core_secs
            .total_cmp(&b.cost_core_secs)
            .then(a.task.cmp(&b.task))
    });
    let mut freed = 0u64;
    let mut plan = Vec::new();
    for c in candidates {
        if freed >= shortfall.as_u64() {
            break;
        }
        freed += c.bytes_on_node.as_u64();
        plan.push(c);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbp_simkit::SimTime;
    use cbp_storage::{MediaSpec, OpKind};

    fn cand(task: u64, cost: f64, mb: u64) -> EvictionCandidate {
        EvictionCandidate {
            task,
            cost_core_secs: cost,
            bytes_on_node: ByteSize::from_mb(mb),
        }
    }

    #[test]
    fn ledger_tracks_per_node_bytes() {
        let mut l = ImageLedger::new();
        l.add(3, ByteSize::from_mb(100));
        l.add(0, ByteSize::from_mb(50));
        l.add(3, ByteSize::from_mb(25));
        assert_eq!(l.bytes_on(3), ByteSize::from_mb(125));
        assert_eq!(l.bytes_on(0), ByteSize::from_mb(50));
        assert_eq!(l.bytes_on(7), ByteSize::ZERO);
        assert_eq!(l.total(), ByteSize::from_mb(175));
        l.sub(3, ByteSize::from_mb(125));
        assert_eq!(l.bytes_on(3), ByteSize::ZERO);
        assert_eq!(l.total(), ByteSize::from_mb(50));
    }

    #[test]
    fn admission_accounts_for_queued_reservations() {
        let spec = MediaSpec::nvm().with_capacity(ByteSize::from_gb(10));
        let mut dev = Device::new(spec);
        assert_eq!(admit(ByteSize::from_gb(4), &dev), Admission::Fits);
        // Two queued dumps reserve 8 GB: a third 4 GB dump must not admit
        // even though neither earlier write has completed.
        for _ in 0..2 {
            dev.reserve(ByteSize::from_gb(4)).unwrap();
            dev.submit_custom(
                SimTime::ZERO,
                OpKind::Write,
                ByteSize::from_gb(4),
                cbp_simkit::SimDuration::from_secs(60),
            );
        }
        assert_eq!(
            admit(ByteSize::from_gb(4), &dev),
            Admission::NeedsReclaim {
                shortfall: ByteSize::from_gb(2)
            }
        );
        assert_eq!(admit(ByteSize::from_gb(2), &dev), Admission::Fits);
    }

    #[test]
    fn evictions_take_cheapest_first_until_covered() {
        let plan = plan_evictions(
            vec![cand(9, 30.0, 400), cand(2, 10.0, 100), cand(5, 20.0, 200)],
            ByteSize::from_mb(250),
        );
        assert_eq!(
            plan.iter().map(|c| c.task).collect::<Vec<_>>(),
            vec![2, 5],
            "cheapest two cover 300 MB >= 250 MB"
        );
    }

    #[test]
    fn evictions_tie_break_on_task_id() {
        let plan = plan_evictions(
            vec![cand(7, 5.0, 100), cand(3, 5.0, 100)],
            ByteSize::from_mb(150),
        );
        assert_eq!(plan.iter().map(|c| c.task).collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn hopeless_shortfall_yields_empty_plan() {
        let plan = plan_evictions(
            vec![cand(1, 1.0, 100), cand(2, 2.0, 100)],
            ByteSize::from_gb(1),
        );
        assert!(
            plan.is_empty(),
            "partial eviction must not destroy progress"
        );
    }
}
