//! Chunked checkpoint transfers: per-image chunk manifests.
//!
//! Every dumped image is logically split into fixed-size chunks (default
//! [`DEFAULT_CHUNK_BYTES`], ~64 MiB — the granularity `criu-image-streamer`
//! pipelines pages at). Each chunk carries a deterministic checksum in a
//! per-image [`ChunkManifest`] recorded on the [`crate::ImageRecord`]. The
//! manifest is what makes interrupted transfers *resumable* and corrupt
//! images *repairable* instead of total losses:
//!
//! - **Resumable dumps**: when a dump is interrupted (preemption race, node
//!   crash, device stall, breaker trip), the chunks written before the
//!   interruption are durable. The retry re-writes only the remaining
//!   suffix instead of starting from byte zero.
//! - **Targeted repair**: on restore the manifest is validated
//!   chunk-by-chunk. A corrupt chunk is first re-fetched from a DFS
//!   replica; only if that fails does the whole image become invalid, and
//!   even then the chain is truncated to its longest valid prefix (restore
//!   from an older image) before falling all the way back to a scratch
//!   restart.
//!
//! Checksums are a SplitMix64-style hash of `(image id, chunk index,
//! chunk length)` — deterministic per image so that replaying the same
//! `(seed, plan)` reproduces byte-identical manifests, and cheap enough to
//! recompute in the debug-build integrity audit after every event.

use cbp_simkit::units::ByteSize;
use serde::{Deserialize, Serialize};

use crate::image::ImageId;

/// Default chunk size for checkpoint transfers: 64 decimal MB (~64 MiB).
/// Decimal because [`ByteSize`] — like every size in this repo — is decimal.
pub const DEFAULT_CHUNK_BYTES: u64 = 64 * 1_000_000;

/// SplitMix64 finalizer — the same mixer the fault plan uses, so manifest
/// checksums share its statistical quality without sharing its stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic checksum of one chunk of one image.
pub fn chunk_checksum(image: ImageId, chunk: u64, len: u64) -> u64 {
    mix(mix(mix(image.0) ^ chunk) ^ len)
}

/// One chunk's manifest entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkEntry {
    /// Chunk length in bytes (equal to the manifest chunk size except for a
    /// shorter final chunk).
    pub len: u64,
    /// Deterministic content checksum recorded at dump time.
    pub checksum: u64,
    /// Whether validation has flagged this chunk as corrupt (set by the
    /// fault layer, cleared by a successful replica re-fetch).
    pub corrupt: bool,
}

/// The per-image chunk manifest: chunk size plus one entry per chunk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkManifest {
    /// Nominal chunk size the image was split at.
    pub chunk_bytes: u64,
    /// Entries, in on-image order.
    pub chunks: Vec<ChunkEntry>,
}

impl Default for ChunkManifest {
    fn default() -> Self {
        ChunkManifest {
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            chunks: Vec::new(),
        }
    }
}

impl ChunkManifest {
    /// Builds the manifest for an image of `size` bytes split into
    /// `chunk_bytes`-sized chunks (final chunk may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn build(image: ImageId, size: ByteSize, chunk_bytes: u64) -> Self {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        let total = size.as_u64();
        let count = total.div_ceil(chunk_bytes);
        let mut chunks = Vec::with_capacity(count as usize);
        for idx in 0..count {
            let len = (total - idx * chunk_bytes).min(chunk_bytes);
            chunks.push(ChunkEntry {
                len,
                checksum: chunk_checksum(image, idx, len),
                corrupt: false,
            });
        }
        ChunkManifest {
            chunk_bytes,
            chunks,
        }
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> u64 {
        self.chunks.len() as u64
    }

    /// Total bytes covered by the manifest (must equal the image size).
    pub fn total_len(&self) -> ByteSize {
        ByteSize::from_bytes(self.chunks.iter().map(|c| c.len).sum())
    }

    /// True if no chunk is currently flagged corrupt.
    pub fn is_clean(&self) -> bool {
        self.chunks.iter().all(|c| !c.corrupt)
    }

    /// Indices of the chunks currently flagged corrupt.
    pub fn corrupt_chunks(&self) -> Vec<u64> {
        self.chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.corrupt)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Flags `chunk` corrupt. Returns false (and does nothing) for an
    /// out-of-range index or a chunk already flagged.
    pub fn mark_corrupt(&mut self, chunk: u64) -> bool {
        match self.chunks.get_mut(chunk as usize) {
            Some(c) if !c.corrupt => {
                c.corrupt = true;
                true
            }
            _ => false,
        }
    }

    /// Clears the corrupt flag on `chunk` after a successful replica
    /// re-fetch. Returns false for an out-of-range or clean chunk.
    pub fn repair(&mut self, chunk: u64) -> bool {
        match self.chunks.get_mut(chunk as usize) {
            Some(c) if c.corrupt => {
                c.corrupt = false;
                true
            }
            _ => false,
        }
    }

    /// Number of whole chunks durable after `frac` of the transfer
    /// completed — the floor, because a partially written chunk fails its
    /// checksum and is re-written by the resumed transfer.
    pub fn durable_chunks(&self, frac: f64) -> u64 {
        (self.chunk_count() as f64 * frac.clamp(0.0, 1.0)).floor() as u64
    }

    /// Bytes durable after `frac` of the transfer completed, rounded *down*
    /// to a chunk boundary (see [`ChunkManifest::durable_chunks`]).
    pub fn durable_bytes(&self, frac: f64) -> ByteSize {
        let done = self.durable_chunks(frac) as usize;
        let bytes: u64 = self.chunks.iter().take(done).map(|c| c.len).sum();
        ByteSize::from_bytes(bytes)
    }

    /// Recomputes every checksum against `image` and verifies the manifest
    /// shape: non-final chunks exactly `chunk_bytes` long, final chunk no
    /// longer. The `corrupt` flags are ignored — they record *detected*
    /// content corruption, not manifest damage.
    pub fn verify(&self, image: ImageId) -> bool {
        let last = self.chunks.len().saturating_sub(1);
        self.chunks.iter().enumerate().all(|(idx, c)| {
            let shape_ok = if idx < last {
                c.len == self.chunk_bytes
            } else {
                c.len <= self.chunk_bytes && c.len > 0
            };
            shape_ok && c.checksum == chunk_checksum(image, idx as u64, c.len)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_splits_with_short_final_chunk() {
        let m = ChunkManifest::build(ImageId(7), ByteSize::from_mb(150), DEFAULT_CHUNK_BYTES);
        assert_eq!(m.chunk_count(), 3, "150 MB at 64 MB = 3 chunks");
        assert_eq!(m.chunks[0].len, DEFAULT_CHUNK_BYTES);
        assert_eq!(m.chunks[1].len, DEFAULT_CHUNK_BYTES);
        assert_eq!(m.chunks[2].len, ByteSize::from_mb(22).as_u64());
        assert_eq!(m.total_len(), ByteSize::from_mb(150));
        assert!(m.verify(ImageId(7)));
        assert!(!m.verify(ImageId(8)), "checksums are keyed by image id");
    }

    #[test]
    fn exact_multiple_has_no_short_chunk() {
        let m = ChunkManifest::build(ImageId(1), ByteSize::from_mb(128), DEFAULT_CHUNK_BYTES);
        assert_eq!(m.chunk_count(), 2);
        assert!(m.chunks.iter().all(|c| c.len == DEFAULT_CHUNK_BYTES));
        assert!(m.verify(ImageId(1)));
    }

    #[test]
    fn empty_image_has_empty_manifest() {
        let m = ChunkManifest::build(ImageId(1), ByteSize::ZERO, DEFAULT_CHUNK_BYTES);
        assert_eq!(m.chunk_count(), 0);
        assert!(m.is_clean());
        assert!(m.verify(ImageId(1)), "vacuously valid");
    }

    #[test]
    fn corrupt_flag_roundtrip() {
        let mut m = ChunkManifest::build(ImageId(3), ByteSize::from_mb(200), DEFAULT_CHUNK_BYTES);
        assert!(m.is_clean());
        assert!(m.mark_corrupt(1));
        assert!(!m.mark_corrupt(1), "double-mark is a no-op");
        assert!(!m.mark_corrupt(99), "out of range");
        assert_eq!(m.corrupt_chunks(), vec![1]);
        assert!(!m.is_clean());
        assert!(m.verify(ImageId(3)), "corrupt flags don't fail verify");
        assert!(m.repair(1));
        assert!(!m.repair(1), "double-repair is a no-op");
        assert!(m.is_clean());
    }

    #[test]
    fn durable_bytes_floor_to_chunk_boundary() {
        let m = ChunkManifest::build(ImageId(5), ByteSize::from_mb(256), DEFAULT_CHUNK_BYTES);
        assert_eq!(m.chunk_count(), 4);
        assert_eq!(m.durable_bytes(0.0), ByteSize::ZERO);
        // 0.6 of 4 chunks = 2.4 -> floor 2 chunks durable.
        assert_eq!(m.durable_bytes(0.6), ByteSize::from_mb(128));
        assert_eq!(m.durable_bytes(1.0), ByteSize::from_mb(256));
        assert_eq!(m.durable_bytes(2.0), ByteSize::from_mb(256), "clamped");
        assert_eq!(m.durable_bytes(-1.0), ByteSize::ZERO, "clamped");
    }

    #[test]
    fn checksum_is_deterministic_and_key_sensitive() {
        let a = chunk_checksum(ImageId(1), 0, 64);
        assert_eq!(a, chunk_checksum(ImageId(1), 0, 64));
        assert_ne!(a, chunk_checksum(ImageId(2), 0, 64));
        assert_ne!(a, chunk_checksum(ImageId(1), 1, 64));
        assert_ne!(a, chunk_checksum(ImageId(1), 0, 65));
    }
}
