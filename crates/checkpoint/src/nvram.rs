//! NVM as persistent *memory* (NVRAM) checkpointing — the paper's §3.2.3
//! alternative to file-system checkpoints, flagged as future work in §7.
//!
//! Instead of serializing the address space into image files, checkpoint
//! data is copied DRAM→NVM with plain memory operations, exploiting
//! byte-addressability:
//!
//! * **No serialization, no files, no chains** — the NVM region is a flat
//!   mirror of the address space, so a suspend copies only bytes the mirror
//!   does not already have, and a restore never replays a chain.
//! * **Shadow buffering** — while the task runs, dirty pages are trickled
//!   to NVM in the background (at a small execution-slowdown cost), so the
//!   stop-the-world copy at suspend time shrinks to whatever the trickle
//!   has not caught up with.
//! * **Lazy resumption** — on resume, pages can be mapped from NVM and
//!   copied back on first write, paying only a small upfront cost.
//!
//! [`NvramCheckpointer`] models all three against a [`TaskMemory`]'s real
//! dirty bitmap.

use std::collections::HashMap;

use cbp_simkit::units::{Bandwidth, ByteSize};
use cbp_simkit::SimDuration;
use serde::{Deserialize, Serialize};

use crate::memory::TaskMemory;

/// NVRAM device + mechanism parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvramSpec {
    /// DRAM→NVM copy bandwidth (store path; PCM-class NVM writes are slower
    /// than reads).
    pub copy_bw: Bandwidth,
    /// NVM→DRAM copy bandwidth (load path).
    pub restore_bw: Bandwidth,
    /// Enable background shadow buffering while the task runs.
    pub shadow_buffering: bool,
    /// Fraction of the task's dirty production the trickle can absorb while
    /// it runs (1.0 = the shadow always keeps up; 0.0 = pure stop-and-copy).
    pub shadow_coverage: f64,
    /// Execution slowdown imposed by write-through shadowing (e.g. `0.03`
    /// = 3% slower while shadowing is armed).
    pub shadow_slowdown: f64,
    /// Fraction of the footprint that must be copied back *before* resuming
    /// under lazy restore (page tables + hot set); the rest faults in
    /// on demand.
    pub lazy_restore_fraction: f64,
    /// Per-node NVRAM capacity available for checkpoint mirrors.
    pub capacity: ByteSize,
}

impl Default for NvramSpec {
    fn default() -> Self {
        NvramSpec {
            // Raw memcpy into NVM: well above the PMFS *file-system* path
            // (1.75 GB/s effective) because there is no FS or serialization.
            copy_bw: Bandwidth::from_gb_per_sec_f64(5.0),
            restore_bw: Bandwidth::from_gb_per_sec_f64(8.0),
            shadow_buffering: true,
            shadow_coverage: 0.8,
            shadow_slowdown: 0.03,
            lazy_restore_fraction: 0.05,
            capacity: ByteSize::from_gb(48),
        }
    }
}

/// The outcome of an NVRAM suspend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvramSuspend {
    /// Stop-the-world copy time.
    pub duration: SimDuration,
    /// Bytes copied at suspend time (after shadow credit).
    pub copied: ByteSize,
    /// Bytes the shadow trickle had already persisted.
    pub shadow_absorbed: ByteSize,
}

/// The outcome of an NVRAM resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvramResume {
    /// Time before the task runs again.
    pub duration: SimDuration,
    /// Bytes copied up front.
    pub copied_upfront: ByteSize,
    /// Bytes left to fault in lazily (charged to later execution, not to
    /// the resume latency).
    pub lazy_bytes: ByteSize,
}

#[derive(Debug, Clone, Copy)]
struct Mirror {
    footprint: ByteSize,
    valid: bool,
}

/// Errors from the NVRAM checkpointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvramError {
    /// The mirror would not fit in the node's NVRAM.
    CapacityExceeded {
        /// Bytes requested.
        requested: ByteSize,
        /// Bytes free.
        available: ByteSize,
    },
}

impl std::fmt::Display for NvramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvramError::CapacityExceeded {
                requested,
                available,
            } => write!(
                f,
                "NVRAM mirror of {requested} exceeds available {available}"
            ),
        }
    }
}

impl std::error::Error for NvramError {}

/// Per-node NVRAM checkpoint engine.
///
/// ```
/// use cbp_checkpoint::{NvramCheckpointer, NvramSpec, TaskMemory};
/// use cbp_simkit::units::ByteSize;
///
/// let mut nvram = NvramCheckpointer::new(NvramSpec::default());
/// let mut mem = TaskMemory::new(ByteSize::from_gb(5));
/// let s = nvram.suspend(1, &mut mem)?;      // first suspend mirrors 5 GB
/// assert_eq!(s.copied + s.shadow_absorbed, ByteSize::from_gb(5));
/// let r = nvram.resume(1, true);            // lazy resume
/// assert!(r.duration < s.duration);
/// # Ok::<(), cbp_checkpoint::NvramError>(())
/// ```
#[derive(Debug)]
pub struct NvramCheckpointer {
    spec: NvramSpec,
    mirrors: HashMap<u64, Mirror>,
    used: ByteSize,
    suspends: u64,
    resumes: u64,
    bytes_copied: ByteSize,
}

impl NvramCheckpointer {
    /// Creates an engine for one node's NVRAM.
    pub fn new(spec: NvramSpec) -> Self {
        NvramCheckpointer {
            spec,
            mirrors: HashMap::new(),
            used: ByteSize::ZERO,
            suspends: 0,
            resumes: 0,
            bytes_copied: ByteSize::ZERO,
        }
    }

    /// The engine's parameters.
    pub fn spec(&self) -> &NvramSpec {
        &self.spec
    }

    /// Bytes of NVRAM currently holding mirrors.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// True if `task` has a valid mirror to resume from.
    pub fn has_mirror(&self, task: u64) -> bool {
        self.mirrors.get(&task).is_some_and(|m| m.valid)
    }

    /// Execution-time multiplier while the task runs with shadowing armed
    /// (1.0 when shadow buffering is disabled).
    pub fn execution_slowdown(&self) -> f64 {
        if self.spec.shadow_buffering {
            1.0 + self.spec.shadow_slowdown
        } else {
            1.0
        }
    }

    /// Bytes a suspend would copy right now (for Algorithm 1 estimates).
    pub fn pending_copy_bytes(&self, task: u64, mem: &TaskMemory) -> ByteSize {
        let dirty = if self.has_mirror(task) {
            mem.dirty_bytes()
        } else {
            mem.size()
        };
        if self.spec.shadow_buffering && self.has_mirror(task) {
            dirty.mul_f64(1.0 - self.spec.shadow_coverage.clamp(0.0, 1.0))
        } else {
            dirty
        }
    }

    /// The suspend-time estimate (the Algorithm 1 `size/bw` term, NVRAM
    /// edition — symmetric restore assumed eager).
    pub fn estimate_total(&self, task: u64, mem: &TaskMemory) -> SimDuration {
        let copy = self
            .spec
            .copy_bw
            .transfer_time(self.pending_copy_bytes(task, mem));
        let restore = self
            .spec
            .restore_bw
            .transfer_time(self.mirror_size(task).max(mem.size()));
        copy + restore
    }

    fn mirror_size(&self, task: u64) -> ByteSize {
        self.mirrors
            .get(&task)
            .map(|m| m.footprint)
            .unwrap_or(ByteSize::ZERO)
    }

    /// Suspends `task`: copies whatever the mirror is missing and marks the
    /// mirror valid. Clears the task's dirty tracking.
    ///
    /// # Errors
    ///
    /// [`NvramError::CapacityExceeded`] if a new mirror would not fit; the
    /// state is unchanged.
    pub fn suspend(&mut self, task: u64, mem: &mut TaskMemory) -> Result<NvramSuspend, NvramError> {
        let had_mirror = self.has_mirror(task);
        if !self.mirrors.contains_key(&task) {
            let available = self.spec.capacity.saturating_sub(self.used);
            if mem.size() > available {
                return Err(NvramError::CapacityExceeded {
                    requested: mem.size(),
                    available,
                });
            }
            self.used += mem.size();
            self.mirrors.insert(
                task,
                Mirror {
                    footprint: mem.size(),
                    valid: false,
                },
            );
        }

        let dirty = if had_mirror {
            mem.dirty_bytes()
        } else {
            mem.size()
        };
        let shadow_absorbed = if self.spec.shadow_buffering && had_mirror {
            dirty.mul_f64(self.spec.shadow_coverage.clamp(0.0, 1.0))
        } else {
            ByteSize::ZERO
        };
        let copied = dirty.saturating_sub(shadow_absorbed);
        let duration = self.spec.copy_bw.transfer_time(copied);

        self.mirrors
            .get_mut(&task)
            .expect("mirror inserted above")
            .valid = true;
        mem.clear_dirty();
        self.suspends += 1;
        self.bytes_copied += copied;
        Ok(NvramSuspend {
            duration,
            copied,
            shadow_absorbed,
        })
    }

    /// Resumes `task` from its mirror. With `lazy`, only
    /// [`NvramSpec::lazy_restore_fraction`] of the footprint is copied
    /// before execution continues.
    ///
    /// # Panics
    ///
    /// Panics if the task has no valid mirror (check
    /// [`NvramCheckpointer::has_mirror`]).
    pub fn resume(&mut self, task: u64, lazy: bool) -> NvramResume {
        let mirror = self
            .mirrors
            .get(&task)
            .filter(|m| m.valid)
            .copied()
            .expect("resume requires a valid mirror");
        self.resumes += 1;
        let (upfront, lazy_bytes) = if lazy {
            let up = mirror
                .footprint
                .mul_f64(self.spec.lazy_restore_fraction.clamp(0.0, 1.0));
            (up, mirror.footprint.saturating_sub(up))
        } else {
            (mirror.footprint, ByteSize::ZERO)
        };
        NvramResume {
            duration: self.spec.restore_bw.transfer_time(upfront),
            copied_upfront: upfront,
            lazy_bytes,
        }
    }

    /// Drops `task`'s mirror, freeing its NVRAM.
    pub fn discard(&mut self, task: u64) -> ByteSize {
        match self.mirrors.remove(&task) {
            Some(m) => {
                self.used = self.used.saturating_sub(m.footprint);
                m.footprint
            }
            None => ByteSize::ZERO,
        }
    }

    /// Suspends performed.
    pub fn suspends(&self) -> u64 {
        self.suspends
    }

    /// Resumes performed.
    pub fn resumes(&self) -> u64 {
        self.resumes
    }

    /// Total bytes copied at suspend time (shadow-absorbed bytes excluded).
    pub fn bytes_copied(&self) -> ByteSize {
        self.bytes_copied
    }
}

/// A point-in-time comparison of the two NVM checkpoint paths for the same
/// task state: the PMFS file-system route vs the NVRAM memory route.
///
/// Used by the extension experiment; see `repro ablate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmPathComparison {
    /// PMFS file-system dump time.
    pub pmfs_dump: SimDuration,
    /// NVRAM suspend copy time.
    pub nvram_suspend: SimDuration,
    /// PMFS restore (read) time.
    pub pmfs_restore: SimDuration,
    /// NVRAM eager resume time.
    pub nvram_resume_eager: SimDuration,
    /// NVRAM lazy resume time.
    pub nvram_resume_lazy: SimDuration,
}

impl NvmPathComparison {
    /// Computes the comparison for a footprint with `dirty_fraction` of its
    /// pages modified since the last checkpoint.
    pub fn compute(
        footprint: ByteSize,
        dirty_fraction: f64,
        pmfs_write: Bandwidth,
        pmfs_read: Bandwidth,
        nvram: &NvramSpec,
    ) -> Self {
        let dirty = footprint.mul_f64(dirty_fraction.clamp(0.0, 1.0));
        let shadow_credit = if nvram.shadow_buffering {
            nvram.shadow_coverage.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let nvram_copy = dirty.mul_f64(1.0 - shadow_credit);
        NvmPathComparison {
            pmfs_dump: pmfs_write.transfer_time(dirty),
            nvram_suspend: nvram.copy_bw.transfer_time(nvram_copy),
            pmfs_restore: pmfs_read.transfer_time(footprint),
            nvram_resume_eager: nvram.restore_bw.transfer_time(footprint),
            nvram_resume_lazy: nvram
                .restore_bw
                .transfer_time(footprint.mul_f64(nvram.lazy_restore_fraction)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn five_gb() -> TaskMemory {
        TaskMemory::new(ByteSize::from_gb(5))
    }

    #[test]
    fn first_suspend_mirrors_whole_footprint() {
        let mut nvram = NvramCheckpointer::new(NvramSpec::default());
        let mut mem = five_gb();
        let s = nvram.suspend(1, &mut mem).unwrap();
        assert_eq!(s.copied, ByteSize::from_gb(5));
        assert_eq!(s.shadow_absorbed, ByteSize::ZERO);
        // 5 GB at 5 GB/s = 1 s — already far below the 2.92 s PMFS path.
        assert!((s.duration.as_secs_f64() - 1.0).abs() < 0.01);
        assert!(nvram.has_mirror(1));
        assert_eq!(nvram.used(), ByteSize::from_gb(5));
        assert_eq!(mem.dirty_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn shadow_buffering_shrinks_second_suspend() {
        let spec = NvramSpec {
            shadow_coverage: 0.8,
            ..NvramSpec::default()
        };
        let mut nvram = NvramCheckpointer::new(spec);
        let mut mem = five_gb();
        nvram.suspend(1, &mut mem).unwrap();
        mem.touch_fraction(0.10); // 500 MB dirty
        let s = nvram.suspend(1, &mut mem).unwrap();
        assert_eq!(s.shadow_absorbed, ByteSize::from_mb(400));
        assert_eq!(s.copied, ByteSize::from_mb(100));
        assert!(s.duration < SimDuration::from_millis(25));
    }

    #[test]
    fn no_shadow_means_full_dirty_copy() {
        let spec = NvramSpec {
            shadow_buffering: false,
            ..NvramSpec::default()
        };
        let mut nvram = NvramCheckpointer::new(spec);
        let mut mem = five_gb();
        nvram.suspend(1, &mut mem).unwrap();
        mem.touch_fraction(0.10);
        let s = nvram.suspend(1, &mut mem).unwrap();
        assert_eq!(s.copied, ByteSize::from_mb(500));
        assert_eq!(s.shadow_absorbed, ByteSize::ZERO);
        assert_eq!(nvram.execution_slowdown(), 1.0);
    }

    #[test]
    fn lazy_resume_is_much_faster_than_eager() {
        let mut nvram = NvramCheckpointer::new(NvramSpec::default());
        let mut mem = five_gb();
        nvram.suspend(1, &mut mem).unwrap();
        let eager = nvram.resume(1, false);
        let lazy = nvram.resume(1, true);
        assert_eq!(eager.copied_upfront, ByteSize::from_gb(5));
        assert_eq!(eager.lazy_bytes, ByteSize::ZERO);
        assert_eq!(lazy.copied_upfront, ByteSize::from_mb(250));
        assert_eq!(lazy.lazy_bytes, ByteSize::from_mb(4750));
        assert!(lazy.duration.as_secs_f64() < eager.duration.as_secs_f64() / 10.0);
        assert_eq!(nvram.resumes(), 2);
    }

    #[test]
    fn capacity_enforced_and_discard_frees() {
        let spec = NvramSpec {
            capacity: ByteSize::from_gb(6),
            ..NvramSpec::default()
        };
        let mut nvram = NvramCheckpointer::new(spec);
        let mut a = five_gb();
        nvram.suspend(1, &mut a).unwrap();
        let mut b = five_gb();
        let err = nvram.suspend(2, &mut b).unwrap_err();
        assert!(matches!(err, NvramError::CapacityExceeded { .. }));
        assert!(err.to_string().contains("exceeds"));
        assert_eq!(nvram.discard(1), ByteSize::from_gb(5));
        assert_eq!(nvram.used(), ByteSize::ZERO);
        nvram.suspend(2, &mut b).unwrap();
        assert!(nvram.has_mirror(2));
        assert_eq!(nvram.discard(99), ByteSize::ZERO);
    }

    #[test]
    fn estimate_matches_pending_bytes() {
        let mut nvram = NvramCheckpointer::new(NvramSpec::default());
        let mut mem = five_gb();
        assert_eq!(nvram.pending_copy_bytes(1, &mem), ByteSize::from_gb(5));
        nvram.suspend(1, &mut mem).unwrap();
        mem.touch_fraction(0.5);
        // 2.5 GB dirty, 80% shadow-absorbed -> 500 MB pending.
        assert_eq!(nvram.pending_copy_bytes(1, &mem), ByteSize::from_mb(500));
        assert!(nvram.estimate_total(1, &mem) > SimDuration::ZERO);
    }

    /// The headline of the NVRAM extension: both suspend and lazy resume
    /// beat the PMFS file-system path by an order of magnitude at 10% dirty.
    #[test]
    fn nvram_beats_pmfs_file_path() {
        let cmp = NvmPathComparison::compute(
            ByteSize::from_gb(5),
            0.10,
            Bandwidth::from_gb_per_sec_f64(1.75),
            Bandwidth::from_gb_per_sec_f64(3.5),
            &NvramSpec::default(),
        );
        assert!(cmp.nvram_suspend.as_secs_f64() * 10.0 < cmp.pmfs_dump.as_secs_f64());
        assert!(cmp.nvram_resume_lazy.as_secs_f64() * 10.0 < cmp.pmfs_restore.as_secs_f64());
        // Eager resume is the same order as PMFS reads (both move 5 GB).
        assert!(cmp.nvram_resume_eager < cmp.pmfs_restore);
    }

    #[test]
    #[should_panic(expected = "valid mirror")]
    fn resume_without_mirror_panics() {
        NvramCheckpointer::new(NvramSpec::default()).resume(1, false);
    }
}
