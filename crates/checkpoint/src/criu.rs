//! The checkpoint/restore engine and cost estimator.

use std::collections::HashMap;

use cbp_simkit::units::ByteSize;
use cbp_simkit::{SimDuration, SimTime};
use cbp_storage::{CapacityError, Device, OpCompletion};

use crate::image::{CheckpointKind, ImageChain, ImageId, ImageRecord};
use crate::integrity::{ChunkManifest, DEFAULT_CHUNK_BYTES};
use crate::lifecycle::ImageLedger;
use crate::memory::TaskMemory;

/// Stream compression applied to checkpoint images (as `criu-image-streamer`
/// deployments do with lz4/zstd): images shrink by `ratio`, but the
/// compressor itself is bandwidth-limited, so the *effective* dump rate is
/// `min(media_write_bw, compress_throughput)` applied to the compressed
/// bytes. Worth it on slow media; pure overhead on NVM.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompressionSpec {
    /// Compressed size as a fraction of the original, in `(0, 1]`.
    pub ratio: f64,
    /// Compressor throughput over *uncompressed* bytes.
    pub throughput: cbp_simkit::units::Bandwidth,
}

impl CompressionSpec {
    /// An lz4-class compressor: 2.2x reduction at ~700 MB/s per core.
    pub fn lz4() -> Self {
        CompressionSpec {
            ratio: 0.45,
            throughput: cbp_simkit::units::Bandwidth::from_mb_per_sec(700),
        }
    }

    /// A zstd-class compressor: 3x reduction at ~350 MB/s per core.
    pub fn zstd() -> Self {
        CompressionSpec {
            ratio: 0.33,
            throughput: cbp_simkit::units::Bandwidth::from_mb_per_sec(350),
        }
    }

    /// Bytes written to storage for `raw` input bytes.
    pub fn compressed_size(&self, raw: ByteSize) -> ByteSize {
        raw.mul_f64(self.ratio.clamp(f64::MIN_POSITIVE, 1.0))
    }
}

/// The outcome of submitting a checkpoint dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpResult {
    /// Device timing (the dump completes at `op.end`).
    pub op: OpCompletion,
    /// Bytes written.
    pub size: ByteSize,
    /// Whether this dump was full or incremental.
    pub kind: CheckpointKind,
    /// Reservations freed because a full dump replaced an older chain:
    /// `(origin_node, bytes)` pairs the caller must release on the owning
    /// devices.
    pub freed: Vec<(u32, ByteSize)>,
}

/// The outcome of submitting a restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreResult {
    /// Device timing (the process resumes at `op.end`).
    pub op: OpCompletion,
    /// Bytes read (the whole image chain).
    pub size: ByteSize,
}

/// The cost estimate of the paper's Algorithm 1:
///
/// ```text
/// overhead_chkpt = size/bw_write + size/bw_read + queue_time_dump
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadEstimate {
    /// `size / bw_write` (plus per-op setup).
    pub dump: SimDuration,
    /// `size / bw_read` (plus per-op setup).
    pub restore: SimDuration,
    /// Time the dump would wait behind other checkpoint operations.
    pub queue: SimDuration,
    /// Bytes the dump would write.
    pub size: ByteSize,
}

impl OverheadEstimate {
    /// The total overhead compared against task progress in Algorithm 1.
    pub fn total(&self) -> SimDuration {
        self.dump + self.restore + self.queue
    }
}

/// The CRIU engine: owns the per-task image catalog and performs dumps and
/// restores against [`Device`]s.
///
/// Task identity is an opaque `u64` supplied by the scheduler layer. See the
/// [crate-level example](crate) for typical usage.
#[derive(Debug, Default)]
pub struct Criu {
    chains: HashMap<u64, ImageChain>,
    ledger: ImageLedger,
    incremental: bool,
    compression: Option<CompressionSpec>,
    max_chain_len: usize,
    chunk_bytes: u64,
    next_image: u64,
    full_dumps: u64,
    incremental_dumps: u64,
    restores: u64,
}

/// Default bound on incremental-chain length before a consolidating full
/// dump (a restore must read the whole chain, so unbounded chains make
/// much-preempted tasks ever more expensive to resume).
pub const DEFAULT_MAX_CHAIN_LEN: usize = 8;

impl Criu {
    /// Creates an engine. `incremental` enables soft-dirty tracking
    /// (`--track-mem`); when disabled every dump is full — the ablation
    /// baseline.
    pub fn new(incremental: bool) -> Self {
        Criu {
            chains: HashMap::new(),
            ledger: ImageLedger::new(),
            incremental,
            compression: None,
            max_chain_len: DEFAULT_MAX_CHAIN_LEN,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            next_image: 1,
            full_dumps: 0,
            incremental_dumps: 0,
            restores: 0,
        }
    }

    /// Returns a copy-builder with a different transfer chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn with_chunk_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "chunk size must be positive");
        self.chunk_bytes = bytes;
        self
    }

    /// The transfer chunk size manifests are built at.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Returns a copy-builder with a different chain-length bound (at least
    /// 1). Once a task's chain reaches the bound, the next dump is a full
    /// consolidating dump that replaces the chain.
    pub fn with_max_chain_len(mut self, max: usize) -> Self {
        assert!(max >= 1, "chain bound must be at least 1");
        self.max_chain_len = max;
        self
    }

    /// Returns a copy-builder with stream compression enabled.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn with_compression(mut self, spec: CompressionSpec) -> Self {
        assert!(
            spec.ratio > 0.0 && spec.ratio <= 1.0,
            "compression ratio must be in (0, 1]"
        );
        self.compression = Some(spec);
        self
    }

    /// The configured compression, if any.
    pub fn compression(&self) -> Option<&CompressionSpec> {
        self.compression.as_ref()
    }

    /// Whether incremental dumps are enabled.
    pub fn incremental_enabled(&self) -> bool {
        self.incremental
    }

    /// True if `task` has a restorable image chain.
    pub fn has_image(&self, task: u64) -> bool {
        self.chains.get(&task).is_some_and(|c| !c.is_empty())
    }

    /// Total on-storage size of `task`'s image chain (what a restore reads).
    pub fn image_size(&self, task: u64) -> ByteSize {
        self.chains
            .get(&task)
            .map(ImageChain::total_size)
            .unwrap_or(ByteSize::ZERO)
    }

    /// The image chain for `task`, if any.
    pub fn chain(&self, task: u64) -> Option<&ImageChain> {
        self.chains.get(&task)
    }

    /// Bytes the next dump of `task` would write: the dirty bytes if an
    /// incremental dump is possible (image exists and the chain is below the
    /// consolidation bound), else the full footprint.
    pub fn next_dump_size(&self, task: u64, mem: &TaskMemory) -> (ByteSize, bool) {
        let chain_ok = self
            .chains
            .get(&task)
            .is_some_and(|c| !c.is_empty() && c.len() < self.max_chain_len);
        if self.incremental && chain_ok {
            (mem.dirty_bytes(), true)
        } else {
            (mem.size(), false)
        }
    }

    /// Estimates the Algorithm 1 preemption overhead of checkpointing `task`
    /// on `device` at time `now`, without side effects.
    pub fn estimate(
        &self,
        task: u64,
        mem: &TaskMemory,
        device: &Device,
        now: SimTime,
    ) -> OverheadEstimate {
        let (raw, _) = self.next_dump_size(task, mem);
        let spec = device.spec();
        let (size, dump) = match &self.compression {
            Some(c) => {
                let stored = c.compressed_size(raw);
                let t = spec.write_time(stored).max(c.throughput.transfer_time(raw));
                (stored, t)
            }
            None => (raw, spec.write_time(raw)),
        };
        OverheadEstimate {
            dump,
            // Algorithm 1 uses the dump size for the restore term too.
            restore: spec.read_time(size),
            queue: device.queue_wait(now),
            size,
        }
    }

    /// Dumps `task` to `device` at time `now`.
    ///
    /// If incremental tracking is enabled and a chain exists, only the dirty
    /// bytes are written; otherwise the full footprint is. On success the
    /// soft-dirty bits are cleared (the task is stopped during the dump, so
    /// no writes race with the scan).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the device cannot hold the image; the
    /// catalog and dirty state are unchanged.
    pub fn dump(
        &mut self,
        task: u64,
        mem: &mut TaskMemory,
        origin_node: u32,
        device: &mut Device,
        now: SimTime,
    ) -> Result<DumpResult, CapacityError> {
        self.dump_with(task, mem, origin_node, device, now, None)
    }

    /// Like [`Criu::dump`], but with an externally computed service time
    /// (e.g. an HDFS pipelined write that is slower than the raw device).
    /// The operation still queues FIFO on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the device cannot hold the image.
    pub fn dump_with(
        &mut self,
        task: u64,
        mem: &mut TaskMemory,
        origin_node: u32,
        device: &mut Device,
        now: SimTime,
        service: Option<SimDuration>,
    ) -> Result<DumpResult, CapacityError> {
        let _prof = cbp_prof::scope("criu_dump");
        let (raw_size, is_incremental) = self.next_dump_size(task, mem);
        // Compression shrinks what hits storage, but the dump cannot run
        // faster than the compressor consumes input.
        let (size, service) = match (&self.compression, service) {
            (Some(c), None) => {
                let stored = c.compressed_size(raw_size);
                let write = device.spec().write_time(stored);
                let compress = c.throughput.transfer_time(raw_size);
                (stored, Some(write.max(compress)))
            }
            (Some(c), Some(external)) => {
                let stored = c.compressed_size(raw_size);
                let compress = c.throughput.transfer_time(raw_size);
                (stored, Some(external.max(compress)))
            }
            (None, service) => (raw_size, service),
        };
        device.reserve(size)?;
        self.ledger.add(origin_node, size);
        // A full re-dump (incremental tracking off, or tracking lost)
        // replaces any older chain; the freed reservations are reported to
        // the caller.
        let freed = if !is_incremental {
            match self.chains.get_mut(&task) {
                Some(chain) => chain.clear(),
                None => Vec::new(),
            }
        } else {
            Vec::new()
        };
        for (node, bytes) in &freed {
            self.ledger.sub(*node, *bytes);
        }
        let op = match service {
            Some(service) => device.submit_custom(now, cbp_storage::OpKind::Write, size, service),
            None => device.submit_write(now, size),
        };
        let id = ImageId(self.next_image);
        self.next_image += 1;
        let kind = if is_incremental {
            self.incremental_dumps += 1;
            CheckpointKind::Incremental {
                parent: self
                    .chains
                    .get(&task)
                    .and_then(ImageChain::tip)
                    .expect("incremental dump requires an existing chain")
                    .id,
            }
        } else {
            self.full_dumps += 1;
            CheckpointKind::Full
        };
        self.chains.entry(task).or_default().push(ImageRecord {
            id,
            kind,
            size,
            created: op.end,
            origin_node,
            manifest: ChunkManifest::build(id, size, self.chunk_bytes),
            progress: 0,
        });
        mem.clear_dirty();
        Ok(DumpResult {
            op,
            size,
            kind,
            freed,
        })
    }

    /// Restores `task` by reading its whole image chain from `device` at
    /// time `now`. Returns `None` if the task has no image.
    ///
    /// The images are retained after restore (the task may be preempted
    /// again and dump incrementally on top); call [`Criu::discard`] when the
    /// task finishes.
    pub fn restore(
        &mut self,
        task: u64,
        device: &mut Device,
        now: SimTime,
    ) -> Option<RestoreResult> {
        let _prof = cbp_prof::scope("criu_restore");
        let size = self.image_size(task);
        if size.is_zero() {
            return None;
        }
        self.restores += 1;
        let op = device.submit_read(now, size);
        Some(RestoreResult { op, size })
    }

    /// Drops `task`'s images, returning `(origin_node, bytes)` reservations
    /// for the caller to release on the owning devices.
    ///
    /// Discard is idempotent: a second call for the same task finds no
    /// chain and returns the empty list, so fault paths that race (e.g. a
    /// node crash landing on a task already being torn down) cannot
    /// double-free device reservations.
    pub fn discard(&mut self, task: u64) -> Vec<(u32, ByteSize)> {
        let freed = match self.chains.remove(&task) {
            Some(mut chain) => chain.clear(),
            None => Vec::new(),
        };
        for (node, bytes) in &freed {
            self.ledger.sub(*node, *bytes);
        }
        freed
    }

    /// Aborts the most recent image of `task` (e.g. a dump that was in
    /// flight when its node failed), returning its reservation for release.
    /// If the aborted image was the chain's only one, the chain disappears.
    pub fn abort_tip(&mut self, task: u64) -> Option<(u32, ByteSize)> {
        let chain = self.chains.get_mut(&task)?;
        let popped = chain.pop_tip()?;
        if chain.is_empty() {
            self.chains.remove(&task);
        }
        self.ledger.sub(popped.origin_node, popped.size);
        Some((popped.origin_node, popped.size))
    }

    /// Stamps the chain tip of `task` with an opaque scheduler-defined
    /// progress value (see [`ImageRecord::progress`]). Called right after a
    /// successful dump so a later prefix-truncation knows how much work the
    /// surviving tip actually captured. No-op if the task has no chain.
    pub fn set_tip_progress(&mut self, task: u64, progress: u64) {
        if let Some(tip) = self.chains.get_mut(&task).and_then(ImageChain::tip_mut) {
            tip.progress = progress;
        }
    }

    /// Flags `chunk` of `task`'s chain tip as corrupt (a per-chunk fault
    /// draw landed on the freshly dumped image). Returns false if the task
    /// has no chain or the chunk was out of range / already flagged.
    pub fn mark_tip_chunk_corrupt(&mut self, task: u64, chunk: u64) -> bool {
        self.chains
            .get_mut(&task)
            .and_then(ImageChain::tip_mut)
            .is_some_and(|tip| tip.manifest.mark_corrupt(chunk))
    }

    /// Clears the corrupt flag on `chunk` of image `idx` (oldest-first) of
    /// `task`'s chain after a successful replica re-fetch. Returns false if
    /// nothing was flagged there.
    pub fn repair_chunk(&mut self, task: u64, idx: usize, chunk: u64) -> bool {
        self.chains
            .get_mut(&task)
            .and_then(|c| c.image_mut(idx))
            .is_some_and(|img| img.manifest.repair(chunk))
    }

    /// Truncates `task`'s chain to its first `keep` images (restore from an
    /// older image after the suffix failed validation), returning the freed
    /// `(origin_node, bytes)` reservations for the caller to release.
    /// `keep == 0` removes the chain entirely, like [`Criu::discard`].
    pub fn truncate_chain(&mut self, task: u64, keep: usize) -> Vec<(u32, ByteSize)> {
        let Some(chain) = self.chains.get_mut(&task) else {
            return Vec::new();
        };
        let freed = chain.truncate(keep);
        if chain.is_empty() {
            self.chains.remove(&task);
        }
        for (node, bytes) in &freed {
            self.ledger.sub(*node, *bytes);
        }
        freed
    }

    /// Debug-build integrity audit over the whole catalog: every image's
    /// manifest must cover exactly the image's bytes with verifying
    /// checksums, and the per-node ledger must equal the bytes recomputed
    /// from the chains. The simulators call this (together with their
    /// device-reservation conservation check) after every event.
    ///
    /// # Panics
    ///
    /// Panics on any manifest ↔ catalog ↔ ledger inconsistency.
    pub fn assert_manifest_consistency(&self) {
        let mut per_node: Vec<u64> = Vec::new();
        for (task, chain) in &self.chains {
            for img in chain.images() {
                assert!(
                    img.manifest.verify(img.id),
                    "task {task}: image {:?} manifest failed checksum verification",
                    img.id
                );
                assert_eq!(
                    img.manifest.total_len(),
                    img.size,
                    "task {task}: image {:?} manifest covers {} but image is {}",
                    img.id,
                    img.manifest.total_len(),
                    img.size
                );
                let idx = img.origin_node as usize;
                if idx >= per_node.len() {
                    per_node.resize(idx + 1, 0);
                }
                per_node[idx] += img.size.as_u64();
            }
        }
        for (node, &bytes) in per_node.iter().enumerate() {
            assert_eq!(
                self.ledger.bytes_on(node as u32),
                ByteSize::from_bytes(bytes),
                "node {node}: ledger disagrees with catalog recomputation"
            );
        }
        // The total also covers ledger bytes on nodes the catalog no longer
        // references at all (those would slip past the per-node loop).
        assert_eq!(
            self.ledger.total(),
            ByteSize::from_bytes(per_node.iter().sum()),
            "ledger total disagrees with catalog recomputation"
        );
    }

    /// Live catalog bytes whose images reside on `node` — the ledger side
    /// of the conservation invariant *device reserved bytes == live catalog
    /// bytes*, maintained incrementally so per-event asserts are O(1).
    pub fn live_bytes_on(&self, node: u32) -> ByteSize {
        self.ledger.bytes_on(node)
    }

    /// Live catalog bytes across all nodes.
    pub fn live_bytes_total(&self) -> ByteSize {
        self.ledger.total()
    }

    /// True if any of `task`'s images lives on `node` (a node failure
    /// destroys local-FS images stored there).
    pub fn has_image_on(&self, task: u64, node: u32) -> bool {
        self.chains
            .get(&task)
            .is_some_and(|c| c.images().iter().any(|i| i.origin_node == node))
    }

    /// Number of full dumps performed.
    pub fn full_dumps(&self) -> u64 {
        self.full_dumps
    }

    /// Number of incremental dumps performed.
    pub fn incremental_dumps(&self) -> u64 {
        self.incremental_dumps
    }

    /// Number of restores performed.
    pub fn restores(&self) -> u64 {
        self.restores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbp_storage::MediaSpec;

    fn five_gb_task() -> TaskMemory {
        TaskMemory::new(ByteSize::from_gb(5))
    }

    /// Reproduces Table 3 end-to-end through the Criu engine: first dump is
    /// full (5 GB), second is incremental (10% dirty) and roughly an order
    /// of magnitude faster, on all three media.
    #[test]
    fn table3_first_vs_second_checkpoint() {
        for (spec, first_s, second_s) in [
            (MediaSpec::hdd(), 169.18, 15.34),
            (MediaSpec::ssd(), 43.73, 4.08),
            (MediaSpec::nvm(), 2.92, 0.28),
        ] {
            let mut criu = Criu::new(true);
            let mut dev = Device::new(spec);
            let mut mem = five_gb_task();

            let d1 = criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap();
            assert_eq!(d1.kind, CheckpointKind::Full);
            let t1 = d1.op.end.since(d1.op.start).as_secs_f64();
            assert!(
                (t1 - first_s).abs() / first_s < 0.10,
                "{}: first dump {t1:.2}s vs paper {first_s}s",
                spec.kind()
            );

            mem.touch_fraction(0.10);
            let now = SimTime::from_secs(1000);
            dev.on_advance(now);
            let d2 = criu.dump(1, &mut mem, 0, &mut dev, now).unwrap();
            assert!(matches!(d2.kind, CheckpointKind::Incremental { .. }));
            let t2 = d2.op.end.since(d2.op.start).as_secs_f64();
            assert!(
                (t2 - second_s).abs() / second_s < 0.25,
                "{}: second dump {t2:.2}s vs paper {second_s}s",
                spec.kind()
            );
            assert!(t1 / t2 > 8.0, "incremental should be ~10x faster");
        }
    }

    #[test]
    fn dump_clears_dirty_tracking() {
        let mut criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap();
        assert_eq!(mem.dirty_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn non_incremental_engine_always_dumps_full() {
        let mut criu = Criu::new(false);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap();
        mem.touch_fraction(0.01);
        let d2 = criu
            .dump(1, &mut mem, 0, &mut dev, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(d2.kind, CheckpointKind::Full);
        assert_eq!(d2.size, ByteSize::from_gb(5));
        // The full re-dump replaced the old chain and reports its bytes as
        // freed for the caller to release.
        assert_eq!(d2.freed, vec![(0, ByteSize::from_gb(5))]);
        assert_eq!(criu.image_size(1), ByteSize::from_gb(5));
        assert_eq!(criu.full_dumps(), 2);
    }

    #[test]
    fn restore_reads_whole_chain() {
        let mut criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap();
        mem.touch_fraction(0.10);
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::from_secs(100))
            .unwrap();
        let r = criu
            .restore(1, &mut dev, SimTime::from_secs(200))
            .expect("image exists");
        assert_eq!(r.size, ByteSize::from_mb(5500));
        assert_eq!(criu.restores(), 1);
    }

    #[test]
    fn restore_without_image_is_none() {
        let mut criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::nvm());
        assert!(criu.restore(42, &mut dev, SimTime::ZERO).is_none());
    }

    #[test]
    fn discard_releases_reservations() {
        let mut criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        criu.dump(1, &mut mem, 3, &mut dev, SimTime::ZERO).unwrap();
        let freed = criu.discard(1);
        assert_eq!(freed, vec![(3, ByteSize::from_gb(5))]);
        for (_, bytes) in freed {
            dev.release(bytes);
        }
        assert_eq!(dev.used(), ByteSize::ZERO);
        assert!(!criu.has_image(1));
        assert!(criu.discard(1).is_empty());
    }

    #[test]
    fn capacity_error_leaves_state_clean() {
        let mut criu = Criu::new(true);
        let spec = MediaSpec::nvm().with_capacity(ByteSize::from_gb(1));
        let mut dev = Device::new(spec);
        let mut mem = five_gb_task();
        let err = criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO);
        assert!(err.is_err());
        assert!(!criu.has_image(1));
        assert_eq!(mem.dirty_bytes(), ByteSize::from_gb(5));
        assert_eq!(dev.used(), ByteSize::ZERO);
    }

    #[test]
    fn chain_consolidates_at_bound() {
        let mut criu = Criu::new(true).with_max_chain_len(3);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap(); // full
        for i in 0..2 {
            mem.touch_fraction(0.05);
            let d = criu
                .dump(1, &mut mem, 0, &mut dev, SimTime::from_secs(10 * (i + 1)))
                .unwrap();
            assert!(matches!(d.kind, CheckpointKind::Incremental { .. }));
        }
        assert_eq!(criu.chain(1).unwrap().len(), 3);
        // The chain hit the bound: the next dump consolidates (full) and
        // frees the old chain.
        mem.touch_fraction(0.05);
        let d = criu
            .dump(1, &mut mem, 0, &mut dev, SimTime::from_secs(100))
            .unwrap();
        assert_eq!(d.kind, CheckpointKind::Full);
        assert_eq!(d.size, ByteSize::from_gb(5));
        assert!(!d.freed.is_empty());
        assert_eq!(criu.chain(1).unwrap().len(), 1);
    }

    #[test]
    fn double_discard_is_idempotent() {
        // Regression: fault paths can race teardown (a node crash landing
        // on a task already being torn down). The second discard must find
        // nothing — returning freed bytes twice would double-free the
        // device reservation.
        let mut criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap();
        mem.touch_fraction(0.10);
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::from_secs(100))
            .unwrap();
        let first = criu.discard(1);
        assert_eq!(first.len(), 2, "both chain images freed once");
        assert!(criu.discard(1).is_empty(), "second discard must be empty");
        assert!(criu.discard(1).is_empty(), "and stay empty");
        // abort_tip after discard is likewise a no-op.
        assert!(criu.abort_tip(1).is_none());
    }

    #[test]
    fn ledger_matches_catalog_through_dump_discard_abort() {
        let mut criu = Criu::new(true);
        let mut dev_a = Device::new(MediaSpec::nvm());
        let mut dev_b = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        let mut mem2 = TaskMemory::new(ByteSize::from_gb(2));

        // Full dump of task 1 on node 0, incremental on node 1 (spilled).
        criu.dump(1, &mut mem, 0, &mut dev_a, SimTime::ZERO)
            .unwrap();
        mem.touch_fraction(0.10);
        criu.dump(1, &mut mem, 1, &mut dev_b, SimTime::from_secs(10))
            .unwrap();
        criu.dump(2, &mut mem2, 0, &mut dev_a, SimTime::from_secs(20))
            .unwrap();

        let recompute = |criu: &Criu, node: u32| {
            let mut total = 0u64;
            for task in [1u64, 2] {
                if let Some(chain) = criu.chain(task) {
                    total += chain
                        .images()
                        .iter()
                        .filter(|i| i.origin_node == node)
                        .map(|i| i.size.as_u64())
                        .sum::<u64>();
                }
            }
            ByteSize::from_bytes(total)
        };
        for node in [0, 1] {
            assert_eq!(criu.live_bytes_on(node), recompute(&criu, node));
        }
        assert_eq!(
            criu.live_bytes_total(),
            criu.live_bytes_on(0) + criu.live_bytes_on(1)
        );

        // Abort the incremental tip on node 1, then discard task 2.
        criu.abort_tip(1).unwrap();
        assert_eq!(criu.live_bytes_on(1), ByteSize::ZERO);
        criu.discard(2);
        for node in [0, 1] {
            assert_eq!(criu.live_bytes_on(node), recompute(&criu, node));
        }
        // A full re-dump replaces the chain: ledger follows the freed set.
        mem.touch_fraction(1.0);
        criu.discard(1);
        assert_eq!(criu.live_bytes_total(), ByteSize::ZERO);
    }

    #[test]
    fn abort_tip_and_discard_on_empty_chain() {
        // Satellite regression: fault paths frequently hit tasks that never
        // checkpointed (or were already torn down) — both teardown entry
        // points must be harmless no-ops there.
        let mut criu = Criu::new(true);
        assert!(criu.abort_tip(42).is_none(), "no chain at all");
        assert!(criu.discard(42).is_empty());
        assert_eq!(criu.live_bytes_total(), ByteSize::ZERO);
        criu.assert_manifest_consistency();
    }

    #[test]
    fn abort_tip_on_single_image_chain_removes_chain() {
        let mut criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        criu.dump(1, &mut mem, 2, &mut dev, SimTime::ZERO).unwrap();
        let (node, bytes) = criu.abort_tip(1).expect("tip exists");
        assert_eq!((node, bytes), (2, ByteSize::from_gb(5)));
        assert!(!criu.has_image(1), "single-image chain disappears");
        assert!(criu.chain(1).is_none(), "no empty chain left behind");
        assert_eq!(criu.live_bytes_total(), ByteSize::ZERO);
        assert!(criu.abort_tip(1).is_none(), "second abort finds nothing");
        criu.assert_manifest_consistency();
    }

    #[test]
    fn discard_single_image_chain() {
        let mut criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap();
        assert_eq!(criu.discard(1), vec![(0, ByteSize::from_gb(5))]);
        assert!(criu.chain(1).is_none());
        assert_eq!(criu.live_bytes_total(), ByteSize::ZERO);
        criu.assert_manifest_consistency();
    }

    #[test]
    fn dumps_carry_chunk_manifests() {
        let mut criu = Criu::new(true).with_chunk_bytes(ByteSize::from_mb(64).as_u64());
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap();
        let tip = criu.chain(1).unwrap().tip().unwrap();
        assert_eq!(tip.manifest.total_len(), tip.size);
        assert_eq!(tip.manifest.chunk_count(), 79, "ceil(5 GB / 64 MB)");
        assert!(tip.manifest.verify(tip.id));
        criu.assert_manifest_consistency();
    }

    #[test]
    fn truncate_chain_releases_suffix_and_keeps_prefix() {
        let mut criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap();
        criu.set_tip_progress(1, 111);
        for i in 0..2 {
            mem.touch_fraction(0.10);
            criu.dump(1, &mut mem, 0, &mut dev, SimTime::from_secs(10 * (i + 1)))
                .unwrap();
            criu.set_tip_progress(1, 222 + i);
        }
        assert_eq!(criu.chain(1).unwrap().len(), 3);
        let before = criu.live_bytes_on(0);
        let freed = criu.truncate_chain(1, 1);
        assert_eq!(freed.len(), 2, "both incrementals freed");
        let freed_bytes: u64 = freed.iter().map(|(_, b)| b.as_u64()).sum();
        assert_eq!(
            criu.live_bytes_on(0),
            before.saturating_sub(ByteSize::from_bytes(freed_bytes))
        );
        let tip = criu.chain(1).unwrap().tip().unwrap();
        assert_eq!(tip.progress, 111, "surviving tip keeps its progress stamp");
        criu.assert_manifest_consistency();
        // Truncating to zero removes the chain like discard.
        let freed = criu.truncate_chain(1, 0);
        assert_eq!(freed.len(), 1);
        assert!(criu.chain(1).is_none());
        assert_eq!(criu.live_bytes_total(), ByteSize::ZERO);
    }

    #[test]
    fn chunk_corruption_mark_and_repair() {
        let mut criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = five_gb_task();
        criu.dump(1, &mut mem, 0, &mut dev, SimTime::ZERO).unwrap();
        assert!(criu.mark_tip_chunk_corrupt(1, 3));
        assert!(!criu.mark_tip_chunk_corrupt(1, 3), "already flagged");
        assert!(!criu.mark_tip_chunk_corrupt(9, 0), "no such task");
        let tip = criu.chain(1).unwrap().tip().unwrap();
        assert_eq!(tip.manifest.corrupt_chunks(), vec![3]);
        assert!(criu.repair_chunk(1, 0, 3));
        assert!(!criu.repair_chunk(1, 0, 3), "already repaired");
        assert!(criu.chain(1).unwrap().tip().unwrap().manifest.is_clean());
        criu.assert_manifest_consistency();
    }

    #[test]
    fn estimate_is_algorithm1_formula() {
        let criu = Criu::new(true);
        let mut dev = Device::new(MediaSpec::hdd());
        let mem = five_gb_task();
        // Put an op in the queue so queue_time is non-zero.
        dev.submit_write(SimTime::ZERO, ByteSize::from_gb(1));
        let est = criu.estimate(1, &mem, &dev, SimTime::ZERO);
        assert_eq!(est.size, ByteSize::from_gb(5));
        assert_eq!(est.dump, dev.spec().write_time(ByteSize::from_gb(5)));
        assert_eq!(est.restore, dev.spec().read_time(ByteSize::from_gb(5)));
        assert_eq!(est.queue, dev.queue_wait(SimTime::ZERO));
        assert_eq!(est.total(), est.dump + est.restore + est.queue);
    }
}

#[cfg(test)]
mod compression_tests {
    use super::*;
    use crate::memory::TaskMemory;
    use cbp_simkit::units::ByteSize;
    use cbp_storage::MediaSpec;

    #[test]
    fn compression_shrinks_hdd_dumps() {
        let mut plain = Criu::new(true);
        let mut zipped = Criu::new(true).with_compression(CompressionSpec::lz4());
        let mut dev_a = Device::new(MediaSpec::hdd());
        let mut dev_b = Device::new(MediaSpec::hdd());
        let mut mem_a = TaskMemory::new(ByteSize::from_gb(5));
        let mut mem_b = TaskMemory::new(ByteSize::from_gb(5));

        let a = plain
            .dump(1, &mut mem_a, 0, &mut dev_a, SimTime::ZERO)
            .unwrap();
        let b = zipped
            .dump(1, &mut mem_b, 0, &mut dev_b, SimTime::ZERO)
            .unwrap();
        assert_eq!(b.size, ByteSize::from_gb_f64(5.0 * 0.45));
        // On HDD (30 MB/s) the compressor (700 MB/s) is never the
        // bottleneck: the dump speeds up by the full ratio.
        let ta = a.op.end.since(a.op.start).as_secs_f64();
        let tb = b.op.end.since(b.op.start).as_secs_f64();
        assert!(
            (tb / ta - 0.45).abs() < 0.05,
            "compressed dump {tb:.1}s vs plain {ta:.1}s"
        );
        assert_eq!(dev_b.used(), b.size);
    }

    #[test]
    fn compressor_throughput_binds_on_nvm() {
        let mut zipped = Criu::new(true).with_compression(CompressionSpec::zstd());
        let mut dev = Device::new(MediaSpec::nvm());
        let mut mem = TaskMemory::new(ByteSize::from_gb(5));
        let d = zipped
            .dump(1, &mut mem, 0, &mut dev, SimTime::ZERO)
            .unwrap();
        // NVM writes 1.65 GB in ~1s, but zstd consumes 5 GB at 350 MB/s:
        // ~14.3s — compression makes NVM dumps slower, as expected.
        let t = d.op.end.since(d.op.start).as_secs_f64();
        assert!(
            (t - 5_000.0 / 350.0).abs() < 0.5,
            "zstd-bound NVM dump took {t:.1}s"
        );
        let plain_t = MediaSpec::nvm()
            .write_time(ByteSize::from_gb(5))
            .as_secs_f64();
        assert!(t > plain_t, "compression must not help NVM");
    }

    #[test]
    fn estimate_reflects_compression() {
        let zipped = Criu::new(true).with_compression(CompressionSpec::lz4());
        let plain = Criu::new(true);
        let dev = Device::new(MediaSpec::hdd());
        let mem = TaskMemory::new(ByteSize::from_gb(2));
        let ez = zipped.estimate(1, &mem, &dev, SimTime::ZERO);
        let ep = plain.estimate(1, &mem, &dev, SimTime::ZERO);
        assert!(ez.total() < ep.total());
        assert_eq!(ez.size, CompressionSpec::lz4().compressed_size(mem.size()));
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn bad_ratio_rejected() {
        let _ = Criu::new(true).with_compression(CompressionSpec {
            ratio: 0.0,
            throughput: cbp_simkit::units::Bandwidth::from_mb_per_sec(100),
        });
    }
}
