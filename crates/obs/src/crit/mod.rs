//! Causal critical-path extraction and counterfactual ("what-if")
//! attribution over the segment timelines recorded by
//! [`SpanCollector`](crate::SpanCollector).
//!
//! Blame accounting (see [`crate::span`]) explains where each *task's*
//! time went; this module explains what bounds *end-to-end latency*. A
//! job finishes when its last task finishes, so the causal chain that
//! determines the job's completion time is the ordered segment timeline
//! of that completion-determining task: every microsecond of the job's
//! response is pinned to exactly one segment — scheduler queueing
//! (`ready_wait`, `suspended`), checkpoint device queueing
//! (`dump_queue`, `restore_queue`), device service (`dump`, `restore`),
//! fault recovery (`retry`), discarded work (`lost`) or productive run.
//!
//! * [`path`] — per-job critical-path extraction with a hard tiling
//!   invariant: the chain's segments partition the job's submit→finish
//!   interval exactly (no gaps, no overlaps, integer microseconds).
//! * [`whatif`] — counterfactual cost models (zero-cost dump, infinite
//!   device bandwidth, faults off) that re-walk every task's timeline
//!   with the targeted segments removed and predict per-band
//!   response-time deltas. First-order estimates: validated against
//!   actual re-runs in `cbp-bench` (see DESIGN.md §5.3 for the validity
//!   argument and its limits).
//! * [`report`] — [`CritReport`], the aggregate merged into
//!   [`ObsReport`](crate::ObsReport) JSON (byte-stable).
//! * [`folded`] — inferno-compatible folded-stack text (one stack per
//!   critical-path segment, weighted by microseconds) for flamegraph
//!   rendering.

pub mod folded;
pub mod path;
pub mod report;
pub mod whatif;

pub use folded::paths_to_folded;
pub use path::{extract_job_paths, JobPath, JobPaths};
pub use report::{CritBand, CritReport};
pub use whatif::{predicted_job_responses, WhatIf};
