//! Counterfactual ("what-if") cost models: re-walk recorded segment
//! timelines with selected cost classes removed and predict the
//! response times a cheaper checkpoint path would have produced.
//!
//! These are *first-order* estimates: each task's timeline is shortened
//! by the removed segments while every kept segment retains its
//! recorded length. Scheduling feedback (shorter device queues freeing
//! resources earlier, policies choosing different victims when dumps
//! are free) is deliberately not modelled — the bounded-error tests in
//! `cbp-bench` quantify how far that assumption drifts from an actual
//! re-run on the smoke configurations.

use std::collections::BTreeMap;

use crate::span::{SegKind, SpanCollector};

/// A counterfactual cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhatIf {
    /// Checkpoint dumps are free: dump service time and dump-side
    /// device queueing vanish.
    Dump0,
    /// Infinite checkpoint device bandwidth: dump *and* restore service
    /// and queueing vanish.
    IobwInf,
    /// No injected faults: retry/backoff overhead vanishes.
    FaultsOff,
}

impl WhatIf {
    /// All scenarios, in report order.
    pub const ALL: [WhatIf; 3] = [WhatIf::Dump0, WhatIf::IobwInf, WhatIf::FaultsOff];

    /// Stable snake_case name (JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            WhatIf::Dump0 => "dump0",
            WhatIf::IobwInf => "iobw_inf",
            WhatIf::FaultsOff => "faults_off",
        }
    }

    /// CLI spelling (`repro analyze --what-if <...>`).
    pub fn cli_name(self) -> &'static str {
        match self {
            WhatIf::Dump0 => "dump0",
            WhatIf::IobwInf => "iobw-inf",
            WhatIf::FaultsOff => "faults-off",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<WhatIf> {
        WhatIf::ALL.into_iter().find(|w| w.cli_name() == s)
    }

    /// Whether this counterfactual removes a segment kind's cost.
    pub fn removes(self, kind: SegKind) -> bool {
        match self {
            WhatIf::Dump0 => matches!(kind, SegKind::DumpQueue | SegKind::Dump),
            WhatIf::IobwInf => matches!(
                kind,
                SegKind::DumpQueue | SegKind::Dump | SegKind::RestoreQueue | SegKind::Restore
            ),
            WhatIf::FaultsOff => matches!(kind, SegKind::Retry),
        }
    }
}

/// Predicts each *complete* job's response time under the
/// counterfactual: every task's finish moves earlier by the removed
/// segment durations, and the job finishes with its slowest predicted
/// task. Keyed by job id; jobs with unfinished or malformed tasks are
/// omitted (same eligibility rule as critical-path extraction).
pub fn predicted_job_responses(collector: &SpanCollector, w: WhatIf) -> BTreeMap<u64, u64> {
    // (job) -> (earliest submit, latest predicted finish, complete?)
    let mut jobs: BTreeMap<u64, (u64, u64, bool)> = BTreeMap::new();
    for span in collector.tasks().values() {
        let entry = jobs.entry(span.job).or_insert((u64::MAX, 0, true));
        entry.0 = entry.0.min(span.submit_us);
        if !span.finished() || span.malformed > 0 {
            entry.2 = false;
            continue;
        }
        let kept: u64 = span
            .segments
            .iter()
            .filter(|s| !w.removes(s.kind))
            .map(|s| s.dur_us())
            .sum();
        entry.1 = entry.1.max(span.submit_us + kept);
    }
    jobs.into_iter()
        .filter(|(_, (_, _, complete))| *complete)
        .map(|(job, (submit, finish, _))| (job, finish.saturating_sub(submit)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanCollector;
    use cbp_telemetry::TraceRecord;

    /// One job, one task: ready_wait 10, run 40, dump_queue 10, dump 20,
    /// suspended 20, restore_queue 5, restore 15, run 30.
    fn collector() -> SpanCollector {
        let mut c = SpanCollector::new().with_segments();
        let stream = [
            (
                0,
                TraceRecord::TaskSubmit {
                    task: 1,
                    job: 1,
                    priority: 9,
                },
            ),
            (
                10,
                TraceRecord::TaskSchedule {
                    task: 1,
                    node: 0,
                    restore: false,
                },
            ),
            (
                50,
                TraceRecord::TaskEvict {
                    task: 1,
                    node: 0,
                    reason: "dump",
                },
            ),
            (
                80,
                TraceRecord::DumpDone {
                    task: 1,
                    node: 0,
                    start_us: 60,
                },
            ),
            (
                100,
                TraceRecord::TaskSchedule {
                    task: 1,
                    node: 0,
                    restore: true,
                },
            ),
            (
                120,
                TraceRecord::RestoreDone {
                    task: 1,
                    node: 0,
                    start_us: 105,
                },
            ),
            (150, TraceRecord::TaskFinish { task: 1, node: 0 }),
        ];
        for (t, rec) in stream {
            c.observe(t, &rec);
        }
        c
    }

    #[test]
    fn dump0_removes_dump_and_its_queue() {
        let pred = predicted_job_responses(&collector(), WhatIf::Dump0);
        // 150 actual − dump 20 − dump_queue 10 = 120.
        assert_eq!(pred[&1], 120);
    }

    #[test]
    fn iobw_inf_also_removes_restore_side() {
        let pred = predicted_job_responses(&collector(), WhatIf::IobwInf);
        // 120 − restore 15 − restore_queue 5 = 100.
        assert_eq!(pred[&1], 100);
    }

    #[test]
    fn faults_off_is_a_noop_without_retries() {
        let pred = predicted_job_responses(&collector(), WhatIf::FaultsOff);
        assert_eq!(pred[&1], 150);
    }

    #[test]
    fn parse_round_trips_cli_names() {
        for w in WhatIf::ALL {
            assert_eq!(WhatIf::parse(w.cli_name()), Some(w));
        }
        assert_eq!(WhatIf::parse("bogus"), None);
    }
}
