//! Inferno-compatible folded-stack export of critical paths.
//!
//! Each line is `frame;frame;frame weight` — the format consumed by
//! `inferno-flamegraph` and `flamegraph.pl`. Stacks are
//! `band;job<id>;<segment-kind>` weighted by microseconds of simulated
//! time on the job's critical path, so the rendered flamegraph shows at
//! a glance which bands and jobs are bounded by which costs. Renderers
//! sum duplicate stacks, so per-(band, job, kind) aggregation here only
//! shortens the file; lines are emitted in lexicographic order, making
//! the output byte-stable for a given set of paths.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::path::JobPath;

/// Serializes critical paths as folded-stack text.
pub fn paths_to_folded(paths: &[JobPath]) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for p in paths {
        for s in &p.segments {
            let mut stack = String::new();
            let _ = write!(stack, "{};job{};{}", p.band().name(), p.job, s.kind.name());
            *agg.entry(stack).or_insert(0) += s.dur_us();
        }
    }
    let mut out = String::new();
    for (stack, us) in agg {
        let _ = writeln!(out, "{stack} {us}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SegKind, Segment};

    fn path(job: u64, priority: u8, segs: &[(SegKind, u64, u64)]) -> JobPath {
        JobPath {
            job,
            task: job,
            priority,
            submit_us: segs.first().map_or(0, |s| s.1),
            job_submit_us: segs.first().map_or(0, |s| s.1),
            finish_us: segs.last().map_or(0, |s| s.2),
            segments: segs
                .iter()
                .map(|&(kind, start_us, end_us)| Segment {
                    kind,
                    start_us,
                    end_us,
                })
                .collect(),
        }
    }

    #[test]
    fn folds_merge_repeated_kinds_and_sort() {
        let paths = [
            path(
                2,
                9,
                &[
                    (SegKind::ReadyWait, 0, 10),
                    (SegKind::Run, 10, 60),
                    (SegKind::Dump, 60, 80),
                    (SegKind::Run, 80, 100),
                ],
            ),
            path(1, 0, &[(SegKind::Run, 0, 30)]),
        ];
        let folded = paths_to_folded(&paths);
        assert_eq!(
            folded,
            "free;job1;run 30\n\
             production;job2;dump 20\n\
             production;job2;ready_wait 10\n\
             production;job2;run 70\n"
        );
    }

    #[test]
    fn empty_paths_yield_empty_output() {
        assert_eq!(paths_to_folded(&[]), "");
    }
}
