//! Per-job critical paths: the ordered segment chain of the task that
//! determines each job's completion time.

use std::collections::BTreeMap;

use crate::span::{Band, Segment, SpanCollector, TaskSpan};

/// The causal chain bounding one job's completion time.
///
/// Both simulators submit every task of a job at the job's submission
/// instant, so the completion-determining task's own submit equals the
/// job submit and the chain spans the job's full response interval.
#[derive(Debug, Clone)]
pub struct JobPath {
    /// Job id.
    pub job: u64,
    /// The completion-determining task: latest finish in the job (ties
    /// broken toward the lowest task id).
    pub task: u64,
    /// That task's scheduler priority (decides the band).
    pub priority: u8,
    /// Start of the chain: the critical task's submit time (µs).
    pub submit_us: u64,
    /// Earliest submit across the job's tasks (µs); equals `submit_us`
    /// on traces from both in-repo simulators.
    pub job_submit_us: u64,
    /// Job completion time: the critical task's finish (µs).
    pub finish_us: u64,
    /// The critical task's ordered segment timeline.
    pub segments: Vec<Segment>,
}

impl JobPath {
    /// The band the critical task's priority falls in.
    pub fn band(&self) -> Band {
        Band::of_priority(self.priority)
    }

    /// Job response time (finish minus earliest submit, µs).
    pub fn response_us(&self) -> u64 {
        self.finish_us - self.job_submit_us
    }

    /// Verifies the tiling invariant: the segments partition
    /// `submit_us..finish_us` exactly — consecutive, gap-free, and
    /// covering the whole interval.
    pub fn check_tiling(&self) -> Result<(), String> {
        let mut cursor = self.submit_us;
        for s in &self.segments {
            if s.start_us != cursor {
                return Err(format!(
                    "job {}: critical path has a gap or overlap at {} µs \
                     (next segment {:?} starts at {})",
                    self.job, cursor, s.kind, s.start_us
                ));
            }
            if s.end_us <= s.start_us {
                return Err(format!(
                    "job {}: empty or inverted segment {:?} at {} µs",
                    self.job, s.kind, s.start_us
                ));
            }
            cursor = s.end_us;
        }
        if cursor != self.finish_us {
            return Err(format!(
                "job {}: critical path ends at {} µs but the job finishes at {} µs",
                self.job, cursor, self.finish_us
            ));
        }
        Ok(())
    }
}

/// Extraction result: one path per complete job, plus how many jobs
/// were excluded.
#[derive(Debug, Clone)]
pub struct JobPaths {
    /// Critical paths in ascending job-id order.
    pub paths: Vec<JobPath>,
    /// Jobs excluded because a task never finished within the trace or
    /// carried malformed records.
    pub skipped_jobs: u64,
}

/// Extracts the critical path of every complete job from a finished
/// collector. Every returned path has passed [`JobPath::check_tiling`];
/// a violation is returned as an error (callers treat it as fatal).
///
/// Requires segment timelines: build the collector with
/// `SpanCollector::with_segments` (or replay the trace through
/// `collect_jsonl_with(.., true)`).
pub fn extract_job_paths(collector: &SpanCollector) -> Result<JobPaths, String> {
    if !collector.segments_enabled() {
        return Err("critical-path extraction needs segment timelines; \
             build the collector with_segments"
            .to_string());
    }
    // Group tasks by job (BTreeMap: deterministic job order).
    let mut jobs: BTreeMap<u64, Vec<&TaskSpan>> = BTreeMap::new();
    for span in collector.tasks().values() {
        jobs.entry(span.job).or_default().push(span);
    }
    let mut paths = Vec::with_capacity(jobs.len());
    let mut skipped_jobs = 0u64;
    for (job, tasks) in jobs {
        let complete = tasks.iter().all(|t| t.finished() && t.malformed == 0);
        if !complete {
            skipped_jobs += 1;
            continue;
        }
        let job_submit_us = tasks.iter().map(|t| t.submit_us).min().expect("non-empty");
        // Latest finish wins; BTreeMap order makes the lowest task id
        // the tie-break.
        let crit = tasks
            .iter()
            .max_by_key(|t| (t.finish_us.expect("finished"), std::cmp::Reverse(t.task)))
            .expect("non-empty");
        let path = JobPath {
            job,
            task: crit.task,
            priority: crit.priority,
            submit_us: crit.submit_us,
            job_submit_us,
            finish_us: crit.finish_us.expect("finished"),
            segments: crit.segments.clone(),
        };
        path.check_tiling()?;
        paths.push(path);
    }
    Ok(JobPaths {
        paths,
        skipped_jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SegKind, SpanCollector};
    use cbp_telemetry::TraceRecord;

    fn two_job_collector() -> SpanCollector {
        let mut c = SpanCollector::new().with_segments();
        let stream = [
            // Job 1: tasks 1 and 2; task 2 finishes last.
            (
                0,
                TraceRecord::TaskSubmit {
                    task: 1,
                    job: 1,
                    priority: 0,
                },
            ),
            (
                0,
                TraceRecord::TaskSubmit {
                    task: 2,
                    job: 1,
                    priority: 0,
                },
            ),
            // Job 2: task 3, production band, still running at trace end.
            (
                5,
                TraceRecord::TaskSubmit {
                    task: 3,
                    job: 2,
                    priority: 9,
                },
            ),
            (
                10,
                TraceRecord::TaskSchedule {
                    task: 1,
                    node: 0,
                    restore: false,
                },
            ),
            (
                20,
                TraceRecord::TaskSchedule {
                    task: 2,
                    node: 1,
                    restore: false,
                },
            ),
            (
                30,
                TraceRecord::TaskSchedule {
                    task: 3,
                    node: 0,
                    restore: false,
                },
            ),
            (110, TraceRecord::TaskFinish { task: 1, node: 0 }),
            (220, TraceRecord::TaskFinish { task: 2, node: 1 }),
        ];
        for (t, rec) in stream {
            c.observe(t, &rec);
        }
        c
    }

    #[test]
    fn picks_latest_finisher_and_skips_incomplete_jobs() {
        let jp = extract_job_paths(&two_job_collector()).unwrap();
        assert_eq!(jp.skipped_jobs, 1, "job 2 never finished");
        assert_eq!(jp.paths.len(), 1);
        let p = &jp.paths[0];
        assert_eq!(p.job, 1);
        assert_eq!(p.task, 2);
        assert_eq!(p.response_us(), 220);
        assert_eq!(p.band(), Band::Free);
        assert_eq!(
            p.segments
                .iter()
                .map(|s| (s.kind, s.dur_us()))
                .collect::<Vec<_>>(),
            vec![(SegKind::ReadyWait, 20), (SegKind::Run, 200)],
        );
    }

    #[test]
    fn extraction_requires_segments() {
        let c = SpanCollector::new();
        assert!(extract_job_paths(&c).is_err());
    }

    #[test]
    fn check_tiling_rejects_gaps() {
        let jp = extract_job_paths(&two_job_collector()).unwrap();
        let mut p = jp.paths[0].clone();
        p.segments[1].start_us += 1;
        assert!(p.check_tiling().is_err());
        p.segments[1].start_us -= 1;
        p.finish_us += 7;
        assert!(p.check_tiling().is_err());
    }
}
