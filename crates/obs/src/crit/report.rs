//! [`CritReport`]: the cluster-wide critical-path attribution, merged
//! into `ObsReport` JSON as the `"crit"` section.

use std::fmt::Write as _;

use cbp_telemetry::json;

use super::path::{extract_job_paths, JobPath};
use super::whatif::{predicted_job_responses, WhatIf};
use crate::span::{Band, SegKind, SpanCollector};

/// Critical-path attribution for one priority band.
#[derive(Debug, Clone)]
pub struct CritBand {
    /// The band.
    pub band: Band,
    /// Complete jobs whose critical task fell in the band.
    pub jobs: u64,
    /// Total µs on the bands' critical paths, by segment kind (indexed
    /// by [`SegKind::index`]).
    pub path_us: [u64; 9],
    /// Exact median job response (µs; order statistic at rank
    /// `ceil(0.5·n)`). Exact — not the streaming P² estimate the blame
    /// report uses — so the counterfactual columns are elementwise
    /// comparable: a counterfactual that shortens every job can never
    /// show a *higher* percentile from estimator drift.
    pub response_p50_us: f64,
    /// Exact 95th-percentile job response (µs).
    pub response_p95_us: f64,
    /// Predicted 95th-percentile job response under each counterfactual
    /// in [`WhatIf::ALL`] order (µs).
    pub what_if_p95_us: [f64; 3],
}

/// Cluster-wide critical-path and what-if attribution.
#[derive(Debug, Clone)]
pub struct CritReport {
    /// Complete jobs with an extracted critical path.
    pub jobs: u64,
    /// Jobs excluded (unfinished or malformed tasks).
    pub skipped_jobs: u64,
    /// Cluster makespan over complete jobs: latest finish minus
    /// earliest job submit (µs; 0 when no complete jobs).
    pub makespan_us: u64,
    /// The job whose finish sets the makespan (its critical path bounds
    /// the cluster's completion), if any.
    pub makespan_job: Option<u64>,
    /// Non-empty bands in [`Band::ALL`] order.
    pub bands: Vec<CritBand>,
}

/// Exact order statistic at rank `ceil(p·n)` (1-clamped) — the same
/// convention as [`cbp_simkit::stats::P2Quantile`]'s small-sample
/// fallback, but over the full sample. Job counts are bounded (one
/// value per job), so storing them is cheap, and exactness buys a
/// dominance guarantee: when a counterfactual shortens every job, its
/// predicted percentile can never exceed the actual one.
fn percentile(xs: &mut [f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let idx = ((p * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1;
    xs[idx]
}

impl CritReport {
    /// Builds the attribution from a finished segment-recording
    /// collector. Fails if segments were not recorded or any job's
    /// critical path violates the tiling invariant.
    pub fn build(collector: &SpanCollector) -> Result<CritReport, String> {
        let jp = extract_job_paths(collector)?;
        let predictions: Vec<_> = WhatIf::ALL
            .iter()
            .map(|w| predicted_job_responses(collector, *w))
            .collect();

        #[derive(Default)]
        struct Acc {
            jobs: u64,
            path_us: [u64; 9],
            responses: Vec<f64>,
            what_if: [Vec<f64>; 3],
        }
        let mut accs: Vec<(Band, Acc)> = Band::ALL.iter().map(|b| (*b, Acc::default())).collect();

        let mut makespan_end = 0u64;
        let mut makespan_start = u64::MAX;
        let mut makespan_job = None;
        for p in &jp.paths {
            let acc = &mut accs
                .iter_mut()
                .find(|(b, _)| *b == p.band())
                .expect("all bands present")
                .1;
            acc.jobs += 1;
            for s in &p.segments {
                acc.path_us[s.kind.index()] += s.dur_us();
            }
            acc.responses.push(p.response_us() as f64);
            for (i, pred) in predictions.iter().enumerate() {
                let r = *pred.get(&p.job).expect("complete job predicted");
                acc.what_if[i].push(r as f64);
            }
            if p.finish_us > makespan_end || makespan_job.is_none() {
                makespan_end = p.finish_us;
                makespan_job = Some(p.job);
            }
            makespan_start = makespan_start.min(p.job_submit_us);
        }

        let bands = accs
            .into_iter()
            .filter(|(_, a)| a.jobs > 0)
            .map(|(band, mut a)| CritBand {
                band,
                jobs: a.jobs,
                path_us: a.path_us,
                response_p50_us: percentile(&mut a.responses, 0.5),
                response_p95_us: percentile(&mut a.responses, 0.95),
                what_if_p95_us: [
                    percentile(&mut a.what_if[0], 0.95),
                    percentile(&mut a.what_if[1], 0.95),
                    percentile(&mut a.what_if[2], 0.95),
                ],
            })
            .collect();

        Ok(CritReport {
            jobs: jp.paths.len() as u64,
            skipped_jobs: jp.skipped_jobs,
            makespan_us: if makespan_job.is_some() {
                makespan_end - makespan_start
            } else {
                0
            },
            makespan_job,
            bands,
        })
    }

    /// The extracted paths backing this report (re-derived; used by the
    /// CLI for folded-stack export so the collector is walked once).
    pub fn extract_paths(collector: &SpanCollector) -> Result<Vec<JobPath>, String> {
        Ok(extract_job_paths(collector)?.paths)
    }

    /// Appends the report as one JSON object (byte-stable; same
    /// conventions as `ObsReport::to_json`).
    pub fn push_json(&self, s: &mut String) {
        let kv_u64 = |s: &mut String, k: &str, v: u64| {
            json::push_key(s, k);
            json::push_u64(s, v);
            s.push(',');
        };
        let kv_f64 = |s: &mut String, k: &str, v: f64| {
            json::push_key(s, k);
            json::push_f64(s, v);
            s.push(',');
        };
        s.push('{');
        kv_u64(s, "jobs", self.jobs);
        kv_u64(s, "skipped_jobs", self.skipped_jobs);
        kv_u64(s, "makespan_us", self.makespan_us);
        if let Some(j) = self.makespan_job {
            kv_u64(s, "makespan_job", j);
        }
        json::push_key(s, "bands");
        s.push('{');
        for (i, b) in self.bands.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_key(s, b.band.name());
            s.push('{');
            kv_u64(s, "jobs", b.jobs);
            json::push_key(s, "path");
            s.push('{');
            for kind in SegKind::ALL {
                let mut key = String::from(kind.name());
                key.push_str("_us");
                kv_u64(s, &key, b.path_us[kind.index()]);
            }
            s.pop();
            s.push_str("},");
            kv_f64(s, "response_p50_us", b.response_p50_us);
            kv_f64(s, "response_p95_us", b.response_p95_us);
            json::push_key(s, "what_if");
            s.push('{');
            for (i, w) in WhatIf::ALL.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                json::push_key(s, w.name());
                s.push('{');
                kv_f64(s, "response_p95_us", b.what_if_p95_us[i]);
                s.pop();
                s.push('}');
            }
            s.push_str("}}");
        }
        s.push_str("}}");
    }

    /// Renders the attribution as a fixed-width terminal table.
    pub fn render_table(&self) -> String {
        let secs = |us: u64| us as f64 / 1e6;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical paths: {} jobs ({} skipped), makespan {:.1}s{}",
            self.jobs,
            self.skipped_jobs,
            secs(self.makespan_us),
            match self.makespan_job {
                Some(j) => format!(" (bounded by job {j})"),
                None => String::new(),
            },
        );
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "band", "jobs", "run s", "queue s", "ckpt s", "retry s", "lost s", "p95 s", "p95 dump0"
        );
        for b in &self.bands {
            let p = &b.path_us;
            let queue = p[SegKind::ReadyWait.index()] + p[SegKind::Suspended.index()];
            let ckpt = p[SegKind::DumpQueue.index()]
                + p[SegKind::Dump.index()]
                + p[SegKind::RestoreQueue.index()]
                + p[SegKind::Restore.index()];
            let _ = writeln!(
                out,
                "{:<12} {:>5} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                b.band.name(),
                b.jobs,
                secs(p[SegKind::Run.index()]),
                secs(queue),
                secs(ckpt),
                secs(p[SegKind::Retry.index()]),
                secs(p[SegKind::Lost.index()]),
                b.response_p95_us / 1e6,
                b.what_if_p95_us[0] / 1e6,
            );
        }
        out
    }

    /// Renders the predicted per-band deltas for one counterfactual.
    pub fn render_what_if(&self, w: WhatIf) -> String {
        let idx = WhatIf::ALL
            .iter()
            .position(|x| *x == w)
            .expect("scenario in ALL");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "what-if {}: predicted p95 response per band",
            w.cli_name()
        );
        for b in &self.bands {
            let actual = b.response_p95_us;
            let predicted = b.what_if_p95_us[idx];
            let _ = writeln!(
                out,
                "{:<12} actual {:>9.1}s -> predicted {:>9.1}s (saves {:>8.1}s)",
                b.band.name(),
                actual / 1e6,
                predicted / 1e6,
                (actual - predicted) / 1e6,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbp_telemetry::TraceRecord;

    fn collector() -> SpanCollector {
        let mut c = SpanCollector::new().with_segments();
        let stream = [
            (
                0,
                TraceRecord::TaskSubmit {
                    task: 1,
                    job: 1,
                    priority: 0,
                },
            ),
            (
                0,
                TraceRecord::TaskSubmit {
                    task: 2,
                    job: 2,
                    priority: 10,
                },
            ),
            (
                5,
                TraceRecord::TaskSchedule {
                    task: 2,
                    node: 0,
                    restore: false,
                },
            ),
            (
                10,
                TraceRecord::TaskSchedule {
                    task: 1,
                    node: 1,
                    restore: false,
                },
            ),
            (
                50,
                TraceRecord::TaskEvict {
                    task: 1,
                    node: 1,
                    reason: "dump",
                },
            ),
            (
                70,
                TraceRecord::DumpDone {
                    task: 1,
                    node: 1,
                    start_us: 55,
                },
            ),
            (
                80,
                TraceRecord::TaskSchedule {
                    task: 1,
                    node: 1,
                    restore: true,
                },
            ),
            (
                95,
                TraceRecord::RestoreDone {
                    task: 1,
                    node: 1,
                    start_us: 85,
                },
            ),
            (105, TraceRecord::TaskFinish { task: 2, node: 0 }),
            (140, TraceRecord::TaskFinish { task: 1, node: 1 }),
        ];
        for (t, rec) in stream {
            c.observe(t, &rec);
        }
        c
    }

    #[test]
    fn build_aggregates_bands_and_makespan() {
        let r = CritReport::build(&collector()).unwrap();
        assert_eq!(r.jobs, 2);
        assert_eq!(r.skipped_jobs, 0);
        assert_eq!(r.makespan_us, 140);
        assert_eq!(r.makespan_job, Some(1));
        assert_eq!(r.bands.len(), 2);
        let free = &r.bands[0];
        assert_eq!(free.band, Band::Free);
        assert_eq!(free.jobs, 1);
        assert_eq!(free.response_p95_us, 140.0);
        // dump0 removes dump 15 + dump_queue 5.
        assert_eq!(free.what_if_p95_us[0], 120.0);
        // iobw-inf additionally removes restore 10 + restore_queue 5.
        assert_eq!(free.what_if_p95_us[1], 105.0);
        let prod = &r.bands[1];
        assert_eq!(prod.band, Band::Production);
        assert_eq!(prod.response_p95_us, 105.0);
        assert_eq!(prod.what_if_p95_us[0], 105.0);
    }

    #[test]
    fn json_is_valid_and_stable() {
        let r = CritReport::build(&collector()).unwrap();
        let mut a = String::new();
        r.push_json(&mut a);
        let mut b = String::new();
        r.push_json(&mut b);
        assert_eq!(a, b);
        assert!(json::is_valid(&a), "invalid: {a}");
        assert!(a.contains("\"bands\":{\"free\":{"));
        assert!(a.contains("\"what_if\":{\"dump0\":{"));
    }

    #[test]
    fn tables_render_every_band() {
        let r = CritReport::build(&collector()).unwrap();
        let t = r.render_table();
        assert!(t.contains("free") && t.contains("production"), "{t}");
        let w = r.render_what_if(WhatIf::Dump0);
        assert!(w.contains("dump0") && w.contains("predicted"), "{w}");
    }
}
