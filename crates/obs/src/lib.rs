//! Trace analysis for the `cbp` simulators: spans, blame, aggregation
//! and regression diffing.
//!
//! `cbp-telemetry` records *what happened*; this crate answers *what it
//! cost*. It consumes the typed [`TraceRecord`] stream — either online,
//! attached to a running simulator as a [`Tracer`], or offline from a
//! JSONL trace file — and reconstructs per-task lifecycle spans in a
//! single streaming pass, then derives three analyses:
//!
//! * **Blame accounting** ([`span`]) — every finished task's response
//!   time is decomposed into eight segments (run, ready-queue wait,
//!   dump, checkpoint-queue wait, restore, retry/backoff, lost-work
//!   re-execution, suspended) that tile the submit→finish interval *exactly*, in
//!   integer microseconds. The conservation invariant is hard-asserted
//!   on every task and property-tested against randomized scenarios on
//!   both simulators.
//! * **Aggregation** ([`report`]) — per-priority-band penalty summaries
//!   (P² streaming quantiles via `cbp_simkit::stats`, exponential
//!   penalty histograms via `cbp_telemetry::Histogram`), per-node
//!   dump/restore/eviction tallies, the top-K worst-penalized jobs, and
//!   a robust-statistics anomaly pass flagging tasks whose eviction
//!   count or restore latency is an outlier within their band.
//! * **Critical paths & what-if** ([`crit`]) — per-job causal chains
//!   (the segment timeline of the completion-determining task, tiling
//!   the job's submit→finish exactly), cluster-wide makespan/response
//!   attribution per band, counterfactual cost models (zero-cost dump,
//!   infinite device bandwidth, faults off) and inferno-compatible
//!   folded-stack export for flamegraph rendering.
//! * **Regression diffing** ([`diff`]) — [`ObsReport::to_json`] is
//!   byte-stable per trace, so reports can be archived as baselines and
//!   compared under configurable tolerances, with lower-is-better /
//!   higher-is-better direction awareness and a verdict roll-up.
//!
//! The `repro` harness (in `cbp-bench`) wires this end to end:
//! `repro <exp> --analyze report.json` attaches a collector online, and
//! `repro analyze trace.jsonl` replays a `--trace-out` file offline —
//! both produce byte-identical reports for the same run.
//!
//! [`TraceRecord`]: cbp_telemetry::TraceRecord
//! [`Tracer`]: cbp_telemetry::Tracer

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crit;
pub mod diff;
pub mod report;
pub mod span;

pub use crit::{extract_job_paths, paths_to_folded, CritBand, CritReport, JobPath, WhatIf};
pub use diff::{diff_reports, flatten_report, DiffReport, DiffRow, Tolerances, Verdict};
pub use report::{
    Anomaly, BandSummary, JobSummary, NodeSummary, ObsReport, SourceSummary, TotalsSummary,
    ANOMALY_K, REPORT_SCHEMA, REPORT_VERSION,
};
pub use span::{
    collect_jsonl, collect_jsonl_with, Band, Blame, NodeStats, SegKind, Segment, SharedCollector,
    SpanCollector, TaskSpan,
};
