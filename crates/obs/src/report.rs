//! The analysis report: blame totals, per-band and per-node penalty
//! aggregation, top-K worst-penalized jobs, and anomaly flagging.
//!
//! [`ObsReport::build`] folds a finished [`SpanCollector`] into a report
//! in one deterministic pass (tasks are visited in `BTreeMap` key order,
//! so streaming estimators see the same feed order whether the collector
//! ran online against a simulator or offline over a JSONL trace), and
//! [`ObsReport::to_json`] emits byte-stable JSON: same trace, same bytes.

use std::collections::BTreeMap;

use cbp_simkit::stats::P2Quantile;
use cbp_telemetry::{json, Histogram};

use crate::span::{Band, Blame, SpanCollector};

/// Schema name stamped into report JSON.
pub const REPORT_SCHEMA: &str = "cbp-obs-report";
/// Schema version stamped into report JSON (version 2 added the
/// `retry_us` blame segment and the fault counters; version 3 added the
/// optional `crit` critical-path section).
pub const REPORT_VERSION: u32 = 3;

/// Oldest report schema version [`crate::flatten_report`] still accepts
/// as a diff baseline (version-2 reports differ only by lacking the
/// optional `crit` section).
pub const REPORT_MIN_VERSION: u32 = 2;

/// MAD multiplier for anomaly flagging (the Iglewicz–Hoaglin modified
/// z-score cutoff).
pub const ANOMALY_K: f64 = 3.5;

/// Penalty histogram buckets: 1 ms .. ~4200 s in ×4 steps.
fn penalty_histogram() -> Histogram {
    Histogram::exponential(1_000.0, 4.0, 12)
}

/// Provenance counters for the analyzed stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceSummary {
    /// Trace records consumed.
    pub records: u64,
    /// Records the collector could not apply (0 for strict collectors).
    pub malformed_records: u64,
    /// Distinct tasks seen.
    pub tasks_seen: u64,
    /// Tasks that ran to completion within the trace.
    pub tasks_finished: u64,
    /// Tasks still in flight when the trace ended.
    pub tasks_incomplete: u64,
    /// Tasks excluded from aggregation because of malformed records.
    pub tasks_malformed: u64,
}

/// Workload-wide totals over finished, well-formed tasks.
#[derive(Debug, Clone, Copy, Default)]
pub struct TotalsSummary {
    /// Aggregate blame decomposition.
    pub blame: Blame,
    /// Aggregate preemption penalty (`blame` total minus run).
    pub penalty_us: u64,
    /// Evictions (any reason) across all tasks.
    pub evictions: u64,
    /// Kill / node-fail evictions.
    pub kills: u64,
    /// Completed dumps.
    pub dumps: u64,
    /// Completed restores.
    pub restores: u64,
    /// Dump fallbacks.
    pub fallbacks: u64,
    /// Failed dump attempts (fault injection).
    pub dump_fails: u64,
    /// Failed restore attempts (fault injection).
    pub restore_fails: u64,
    /// RM escalations after unresponsive AMs.
    pub escalations: u64,
}

/// Penalty summary for one priority band.
#[derive(Debug, Clone)]
pub struct BandSummary {
    /// The band.
    pub band: Band,
    /// Tasks in the band (finished or not).
    pub tasks: u64,
    /// Finished, well-formed tasks (everything below covers only these).
    pub finished: u64,
    /// Aggregate blame decomposition.
    pub blame: Blame,
    /// Mean response time (µs; 0 if no finished tasks).
    pub mean_response_us: f64,
    /// Mean preemption penalty (µs).
    pub mean_penalty_us: f64,
    /// Aggregate penalty as a fraction of aggregate response.
    pub penalty_frac: f64,
    /// P² streaming estimate of the median per-task penalty (µs).
    pub penalty_p50_us: f64,
    /// P² streaming estimate of the 95th percentile penalty (µs).
    pub penalty_p95_us: f64,
    /// P² streaming estimate of the 99th percentile penalty (µs).
    pub penalty_p99_us: f64,
    /// Exponential-bucket histogram of per-task penalties (µs).
    pub penalty_hist: Histogram,
}

/// Activity summary for one node.
#[derive(Debug, Clone, Copy)]
pub struct NodeSummary {
    /// Node id.
    pub node: u32,
    /// Evictions observed on the node.
    pub evictions: u32,
    /// Kill / node-fail evictions.
    pub kills: u32,
    /// Completed dumps.
    pub dumps: u32,
    /// Dump service time (µs).
    pub dump_us: u64,
    /// Completed restores.
    pub restores: u32,
    /// Restore service time (µs).
    pub restore_us: u64,
    /// Work discarded by evictions on the node (µs).
    pub lost_us: u64,
    /// Recovery overhead on the node (failed dump/restore attempts, µs).
    pub retry_us: u64,
    /// Blocks re-replicated after the node's datanode failures.
    pub repairs: u32,
    /// Bytes re-replicated for those repairs.
    pub repair_bytes: u64,
    /// Tasks that finished on the node.
    pub finishes: u32,
}

/// Penalty summary for one job (for the top-K table).
#[derive(Debug, Clone, Copy)]
pub struct JobSummary {
    /// Job id.
    pub job: u64,
    /// Tasks in the job.
    pub tasks: u64,
    /// Finished, well-formed tasks.
    pub finished: u64,
    /// Aggregate penalty (µs) over finished tasks.
    pub penalty_us: u64,
    /// Aggregate response time (µs).
    pub response_us: u64,
    /// Aggregate lost work (µs).
    pub lost_us: u64,
}

/// One flagged outlier task.
#[derive(Debug, Clone, Copy)]
pub struct Anomaly {
    /// Task id.
    pub task: u64,
    /// Owning job id.
    pub job: u64,
    /// The task's band.
    pub band: Band,
    /// What was anomalous: `"evictions"` or `"restore_us"`.
    pub kind: &'static str,
    /// The task's value.
    pub value: f64,
    /// The band median for the metric.
    pub median: f64,
    /// Flagging threshold (`median + K · scale`, robust scale from the
    /// MAD with a mean-absolute-deviation fallback).
    pub threshold: f64,
}

/// The complete analysis of one trace.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Provenance counters.
    pub source: SourceSummary,
    /// Workload-wide totals.
    pub totals: TotalsSummary,
    /// Per-band summaries, in [`Band::ALL`] order (always all three).
    pub bands: Vec<BandSummary>,
    /// Per-node summaries, ascending node id.
    pub nodes: Vec<NodeSummary>,
    /// Worst-penalized jobs, descending aggregate penalty.
    pub top_jobs: Vec<JobSummary>,
    /// Flagged outlier tasks.
    pub anomalies: Vec<Anomaly>,
    /// Critical-path and what-if attribution; present only when the
    /// collector recorded segment timelines and critical-path analysis
    /// was requested (see [`ObsReport::with_crit`]).
    pub crit: Option<crate::crit::CritReport>,
}

/// Robust location/scale of a sample: `(median, scale)` where scale is
/// `MAD / 0.6745` (or the mean absolute deviation × 1.2533 when the MAD
/// degenerates to zero). Returns scale 0 when every deviation is zero.
fn robust_stats(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    };
    let mut v = xs.to_vec();
    let med = median(&mut v);
    let mut dev: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    let mad = median(&mut dev);
    if mad > 0.0 {
        return (med, mad / 0.6745);
    }
    let mean_ad = dev.iter().sum::<f64>() / dev.len() as f64;
    (med, mean_ad * 1.2533)
}

struct BandAcc {
    tasks: u64,
    finished: u64,
    blame: Blame,
    response_us: u64,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    hist: Histogram,
    evictions: Vec<f64>,
    restore_us: Vec<f64>,
    task_ids: Vec<(u64, u64)>, // (task, job), aligned with the vectors
}

impl BandAcc {
    fn new() -> Self {
        BandAcc {
            tasks: 0,
            finished: 0,
            blame: Blame::default(),
            response_us: 0,
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            hist: penalty_histogram(),
            evictions: Vec::new(),
            restore_us: Vec::new(),
            task_ids: Vec::new(),
        }
    }
}

impl ObsReport {
    /// Folds a finished collector into a report. `top_k` bounds the
    /// worst-penalized-jobs table.
    pub fn build(collector: &SpanCollector, top_k: usize) -> ObsReport {
        let mut source = SourceSummary {
            records: collector.records(),
            malformed_records: collector.malformed(),
            ..SourceSummary::default()
        };
        let mut totals = TotalsSummary::default();
        let mut bands: BTreeMap<Band, BandAcc> =
            Band::ALL.iter().map(|b| (*b, BandAcc::new())).collect();
        let mut jobs: BTreeMap<u64, JobSummary> = BTreeMap::new();

        // BTreeMap order = ascending task id: the P² estimators see a
        // deterministic feed order regardless of how the records arrived.
        for span in collector.tasks().values() {
            source.tasks_seen += 1;
            totals.evictions += span.evictions as u64;
            totals.kills += span.kills as u64;
            totals.dumps += span.dumps as u64;
            totals.restores += span.restores as u64;
            totals.fallbacks += span.fallbacks as u64;
            totals.dump_fails += span.dump_fails as u64;
            totals.restore_fails += span.restore_fails as u64;
            totals.escalations += span.escalations as u64;
            let acc = bands.get_mut(&span.band()).expect("all bands present");
            acc.tasks += 1;
            let job = jobs.entry(span.job).or_insert(JobSummary {
                job: span.job,
                tasks: 0,
                finished: 0,
                penalty_us: 0,
                response_us: 0,
                lost_us: 0,
            });
            job.tasks += 1;
            if span.malformed > 0 {
                source.tasks_malformed += 1;
                continue;
            }
            let Some(response) = span.response_us() else {
                source.tasks_incomplete += 1;
                continue;
            };
            source.tasks_finished += 1;
            totals.blame.accumulate(&span.blame);
            acc.finished += 1;
            acc.blame.accumulate(&span.blame);
            acc.response_us += response;
            let penalty = span.blame.penalty_us() as f64;
            acc.p50.observe(penalty);
            acc.p95.observe(penalty);
            acc.p99.observe(penalty);
            acc.hist.record(penalty);
            acc.evictions.push(span.evictions as f64);
            acc.restore_us.push(span.blame.restore_us as f64);
            acc.task_ids.push((span.task, span.job));
            job.finished += 1;
            job.penalty_us += span.blame.penalty_us();
            job.response_us += response;
            job.lost_us += span.blame.lost_us;
        }
        totals.penalty_us = totals.blame.penalty_us();

        // Anomalies: one-sided modified z-score per band and metric.
        let mut anomalies = Vec::new();
        for (band, acc) in &bands {
            for (kind, xs) in [
                ("evictions", &acc.evictions),
                ("restore_us", &acc.restore_us),
            ] {
                let (med, scale) = robust_stats(xs);
                if scale <= 0.0 {
                    continue;
                }
                let threshold = med + ANOMALY_K * scale;
                for (i, &x) in xs.iter().enumerate() {
                    if x > threshold {
                        let (task, job) = acc.task_ids[i];
                        anomalies.push(Anomaly {
                            task,
                            job,
                            band: *band,
                            kind,
                            value: x,
                            median: med,
                            threshold,
                        });
                    }
                }
            }
        }

        let bands = bands
            .into_iter()
            .map(|(band, acc)| {
                let est = |q: &P2Quantile| q.estimate().unwrap_or(0.0);
                let fin = acc.finished as f64;
                let total = acc.blame.total_us();
                BandSummary {
                    band,
                    tasks: acc.tasks,
                    finished: acc.finished,
                    blame: acc.blame,
                    mean_response_us: if acc.finished > 0 {
                        acc.response_us as f64 / fin
                    } else {
                        0.0
                    },
                    mean_penalty_us: if acc.finished > 0 {
                        acc.blame.penalty_us() as f64 / fin
                    } else {
                        0.0
                    },
                    penalty_frac: if total > 0 {
                        acc.blame.penalty_us() as f64 / total as f64
                    } else {
                        0.0
                    },
                    penalty_p50_us: est(&acc.p50),
                    penalty_p95_us: est(&acc.p95),
                    penalty_p99_us: est(&acc.p99),
                    penalty_hist: acc.hist,
                }
            })
            .collect();

        let nodes = collector
            .nodes()
            .iter()
            .map(|(node, s)| NodeSummary {
                node: *node,
                evictions: s.evictions,
                kills: s.kills,
                dumps: s.dumps,
                dump_us: s.dump_us,
                restores: s.restores,
                restore_us: s.restore_us,
                lost_us: s.lost_us,
                retry_us: s.retry_us,
                repairs: s.repairs,
                repair_bytes: s.repair_bytes,
                finishes: s.finishes,
            })
            .collect();

        let mut top_jobs: Vec<JobSummary> = jobs.into_values().collect();
        top_jobs.sort_by(|a, b| b.penalty_us.cmp(&a.penalty_us).then(a.job.cmp(&b.job)));
        top_jobs.truncate(top_k);

        ObsReport {
            source,
            totals,
            bands,
            nodes,
            top_jobs,
            anomalies,
            crit: None,
        }
    }

    /// Attaches the critical-path section, built from the same
    /// collector (which must have recorded segment timelines). Fails if
    /// segments are missing or a job's critical path violates the
    /// tiling invariant.
    pub fn with_crit(mut self, collector: &SpanCollector) -> Result<ObsReport, String> {
        self.crit = Some(crate::crit::CritReport::build(collector)?);
        Ok(self)
    }

    /// Serializes the report as one byte-stable JSON object: fixed field
    /// order everywhere, hand-rolled emission (see `cbp_telemetry::json`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        let kv_u64 = |s: &mut String, k: &str, v: u64| {
            json::push_key(s, k);
            json::push_u64(s, v);
            s.push(',');
        };
        let kv_f64 = |s: &mut String, k: &str, v: f64| {
            json::push_key(s, k);
            json::push_f64(s, v);
            s.push(',');
        };
        let push_blame = |s: &mut String, blame: &Blame| {
            s.push('{');
            for (name, v) in blame.components() {
                kv_u64(s, name, v);
            }
            s.pop();
            s.push('}');
        };

        s.push('{');
        json::push_key(&mut s, "schema");
        json::push_str_escaped(&mut s, REPORT_SCHEMA);
        s.push(',');
        kv_u64(&mut s, "version", REPORT_VERSION as u64);

        json::push_key(&mut s, "source");
        s.push('{');
        kv_u64(&mut s, "records", self.source.records);
        kv_u64(&mut s, "malformed_records", self.source.malformed_records);
        kv_u64(&mut s, "tasks_seen", self.source.tasks_seen);
        kv_u64(&mut s, "tasks_finished", self.source.tasks_finished);
        kv_u64(&mut s, "tasks_incomplete", self.source.tasks_incomplete);
        kv_u64(&mut s, "tasks_malformed", self.source.tasks_malformed);
        s.pop();
        s.push_str("},");

        json::push_key(&mut s, "totals");
        s.push('{');
        json::push_key(&mut s, "blame");
        push_blame(&mut s, &self.totals.blame);
        s.push(',');
        kv_u64(&mut s, "penalty_us", self.totals.penalty_us);
        kv_u64(&mut s, "evictions", self.totals.evictions);
        kv_u64(&mut s, "kills", self.totals.kills);
        kv_u64(&mut s, "dumps", self.totals.dumps);
        kv_u64(&mut s, "restores", self.totals.restores);
        kv_u64(&mut s, "fallbacks", self.totals.fallbacks);
        kv_u64(&mut s, "dump_fails", self.totals.dump_fails);
        kv_u64(&mut s, "restore_fails", self.totals.restore_fails);
        kv_u64(&mut s, "escalations", self.totals.escalations);
        s.pop();
        s.push_str("},");

        json::push_key(&mut s, "bands");
        s.push('[');
        for (i, b) in self.bands.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            json::push_key(&mut s, "band");
            json::push_str_escaped(&mut s, b.band.name());
            s.push(',');
            let (lo, hi) = b.band.priority_range();
            kv_u64(&mut s, "priority_min", lo as u64);
            kv_u64(&mut s, "priority_max", hi as u64);
            kv_u64(&mut s, "tasks", b.tasks);
            kv_u64(&mut s, "finished", b.finished);
            json::push_key(&mut s, "blame");
            push_blame(&mut s, &b.blame);
            s.push(',');
            kv_f64(&mut s, "mean_response_us", b.mean_response_us);
            kv_f64(&mut s, "mean_penalty_us", b.mean_penalty_us);
            kv_f64(&mut s, "penalty_frac", b.penalty_frac);
            kv_f64(&mut s, "penalty_p50_us", b.penalty_p50_us);
            kv_f64(&mut s, "penalty_p95_us", b.penalty_p95_us);
            kv_f64(&mut s, "penalty_p99_us", b.penalty_p99_us);
            json::push_key(&mut s, "penalty_hist");
            s.push('{');
            json::push_key(&mut s, "bounds_us");
            json::push_f64_array(&mut s, b.penalty_hist.bounds());
            s.push(',');
            json::push_key(&mut s, "counts");
            json::push_u64_array(&mut s, b.penalty_hist.counts());
            s.push('}');
            s.push('}');
        }
        s.push_str("],");

        json::push_key(&mut s, "nodes");
        s.push('[');
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            kv_u64(&mut s, "node", n.node as u64);
            kv_u64(&mut s, "evictions", n.evictions as u64);
            kv_u64(&mut s, "kills", n.kills as u64);
            kv_u64(&mut s, "dumps", n.dumps as u64);
            kv_u64(&mut s, "dump_us", n.dump_us);
            kv_u64(&mut s, "restores", n.restores as u64);
            kv_u64(&mut s, "restore_us", n.restore_us);
            kv_u64(&mut s, "lost_us", n.lost_us);
            kv_u64(&mut s, "retry_us", n.retry_us);
            kv_u64(&mut s, "repairs", n.repairs as u64);
            kv_u64(&mut s, "repair_bytes", n.repair_bytes);
            kv_u64(&mut s, "finishes", n.finishes as u64);
            s.pop();
            s.push('}');
        }
        s.push_str("],");

        json::push_key(&mut s, "top_jobs");
        s.push('[');
        for (i, j) in self.top_jobs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            kv_u64(&mut s, "job", j.job);
            kv_u64(&mut s, "tasks", j.tasks);
            kv_u64(&mut s, "finished", j.finished);
            kv_u64(&mut s, "penalty_us", j.penalty_us);
            kv_u64(&mut s, "response_us", j.response_us);
            kv_u64(&mut s, "lost_us", j.lost_us);
            s.pop();
            s.push('}');
        }
        s.push_str("],");

        json::push_key(&mut s, "anomalies");
        s.push('[');
        for (i, a) in self.anomalies.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            kv_u64(&mut s, "task", a.task);
            kv_u64(&mut s, "job", a.job);
            json::push_key(&mut s, "band");
            json::push_str_escaped(&mut s, a.band.name());
            s.push(',');
            json::push_key(&mut s, "kind");
            json::push_str_escaped(&mut s, a.kind);
            s.push(',');
            kv_f64(&mut s, "value", a.value);
            kv_f64(&mut s, "median", a.median);
            kv_f64(&mut s, "threshold", a.threshold);
            s.pop();
            s.push('}');
        }
        s.push(']');
        if let Some(crit) = &self.crit {
            s.push(',');
            json::push_key(&mut s, "crit");
            crit.push_json(&mut s);
        }
        s.push('}');
        debug_assert!(json::is_valid(&s), "report JSON must be valid");
        s
    }

    /// Renders the report as a fixed-width terminal table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let secs = |us: u64| us as f64 / 1e6;
        let mut out = String::new();
        let src = &self.source;
        let _ = writeln!(
            out,
            "trace: {} records, {} tasks ({} finished, {} in flight{})",
            src.records,
            src.tasks_seen,
            src.tasks_finished,
            src.tasks_incomplete,
            if src.tasks_malformed > 0 || src.malformed_records > 0 {
                format!(
                    ", {} malformed tasks / {} records",
                    src.tasks_malformed, src.malformed_records
                )
            } else {
                String::new()
            }
        );
        let t = &self.totals;
        let _ = writeln!(
            out,
            "events: {} evictions ({} kills, {} dumps, {} restores, {} fallbacks)",
            t.evictions, t.kills, t.dumps, t.restores, t.fallbacks
        );
        if t.dump_fails > 0 || t.restore_fails > 0 || t.escalations > 0 {
            let _ = writeln!(
                out,
                "faults: {} dump fails, {} restore fails, {} AM escalations",
                t.dump_fails, t.restore_fails, t.escalations
            );
        }
        let _ = writeln!(
            out,
            "\n{:<11} {:>7} {:>8} {:>11} {:>11} {:>9} {:>9} {:>9} {:>6}",
            "band",
            "tasks",
            "finished",
            "resp mean s",
            "pen mean s",
            "pen p50 s",
            "pen p95 s",
            "pen p99 s",
            "pen %"
        );
        for b in &self.bands {
            let _ = writeln!(
                out,
                "{:<11} {:>7} {:>8} {:>11.2} {:>11.2} {:>9.2} {:>9.2} {:>9.2} {:>6.2}",
                b.band.name(),
                b.tasks,
                b.finished,
                b.mean_response_us / 1e6,
                b.mean_penalty_us / 1e6,
                b.penalty_p50_us / 1e6,
                b.penalty_p95_us / 1e6,
                b.penalty_p99_us / 1e6,
                100.0 * b.penalty_frac,
            );
        }
        let _ = writeln!(
            out,
            "\nblame totals (s): run {:.1}  ready-wait {:.1}  dump {:.1}  ckpt-wait {:.1}  restore {:.1}  retry {:.1}  lost {:.1}  suspended {:.1}",
            secs(t.blame.run_us),
            secs(t.blame.ready_wait_us),
            secs(t.blame.dump_us),
            secs(t.blame.ckpt_wait_us),
            secs(t.blame.restore_us),
            secs(t.blame.retry_us),
            secs(t.blame.lost_us),
            secs(t.blame.suspended_us),
        );
        if !self.top_jobs.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<12} {:>7} {:>8} {:>12} {:>12} {:>12}",
                "worst jobs", "tasks", "finished", "penalty s", "response s", "lost s"
            );
            for j in &self.top_jobs {
                let _ = writeln!(
                    out,
                    "{:<12} {:>7} {:>8} {:>12.2} {:>12.2} {:>12.2}",
                    j.job,
                    j.tasks,
                    j.finished,
                    secs(j.penalty_us),
                    secs(j.response_us),
                    secs(j.lost_us),
                );
            }
        }
        if self.anomalies.is_empty() {
            let _ = writeln!(out, "\nanomalies: none");
        } else {
            let _ = writeln!(out, "\nanomalies ({}):", self.anomalies.len());
            for a in &self.anomalies {
                let _ = writeln!(
                    out,
                    "  task {} (job {}, {}): {} = {:.1} > threshold {:.1} (band median {:.1})",
                    a.task,
                    a.job,
                    a.band.name(),
                    a.kind,
                    a.value,
                    a.threshold,
                    a.median,
                );
            }
        }
        if let Some(crit) = &self.crit {
            let _ = writeln!(out);
            out.push_str(&crit.render_table());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbp_telemetry::TraceRecord;

    fn collector_with_tasks(n: u64) -> SpanCollector {
        let mut c = SpanCollector::new();
        for i in 0..n {
            let prio = (i % 12) as u8;
            c.observe(
                i,
                &TraceRecord::TaskSubmit {
                    task: i,
                    job: i / 4,
                    priority: prio,
                },
            );
            c.observe(
                i + 10,
                &TraceRecord::TaskSchedule {
                    task: i,
                    node: (i % 3) as u32,
                    restore: false,
                },
            );
            if i % 5 == 0 {
                c.observe(
                    i + 100,
                    &TraceRecord::TaskEvict {
                        task: i,
                        node: (i % 3) as u32,
                        reason: "kill",
                    },
                );
                c.observe(
                    i + 150,
                    &TraceRecord::TaskSchedule {
                        task: i,
                        node: (i % 3) as u32,
                        restore: false,
                    },
                );
                c.observe(
                    i + 1_150,
                    &TraceRecord::TaskFinish {
                        task: i,
                        node: (i % 3) as u32,
                    },
                );
            } else {
                c.observe(
                    i + 1_010,
                    &TraceRecord::TaskFinish {
                        task: i,
                        node: (i % 3) as u32,
                    },
                );
            }
        }
        c
    }

    #[test]
    fn report_json_is_valid_and_stable() {
        let a = ObsReport::build(&collector_with_tasks(60), 5).to_json();
        let b = ObsReport::build(&collector_with_tasks(60), 5).to_json();
        assert_eq!(a, b, "same spans must produce byte-identical JSON");
        assert!(json::is_valid(&a), "report must be valid JSON: {a}");
        assert!(a.starts_with("{\"schema\":\"cbp-obs-report\",\"version\":3,"));
        for key in [
            "\"source\"",
            "\"totals\"",
            "\"bands\"",
            "\"nodes\"",
            "\"top_jobs\"",
            "\"anomalies\"",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
        for band in ["\"free\"", "\"middle\"", "\"production\""] {
            assert!(a.contains(band), "missing band {band}");
        }
    }

    #[test]
    fn report_aggregates_are_consistent() {
        let c = collector_with_tasks(60);
        let r = ObsReport::build(&c, 3);
        assert_eq!(r.source.tasks_seen, 60);
        assert_eq!(r.source.tasks_finished, 60);
        assert_eq!(r.source.tasks_incomplete, 0);
        let band_total: u64 = r.bands.iter().map(|b| b.tasks).sum();
        assert_eq!(band_total, 60);
        let blame_sum: u64 = r.bands.iter().map(|b| b.blame.total_us()).sum();
        assert_eq!(blame_sum, r.totals.blame.total_us());
        assert_eq!(r.totals.kills, 12);
        assert_eq!(r.top_jobs.len(), 3);
        // Top jobs are sorted by descending penalty.
        for pair in r.top_jobs.windows(2) {
            assert!(pair[0].penalty_us >= pair[1].penalty_us);
        }
        assert_eq!(r.nodes.len(), 3);
        let finishes: u32 = r.nodes.iter().map(|n| n.finishes).sum();
        assert_eq!(finishes as u64, 60);
    }

    #[test]
    fn anomalies_flag_heavy_outliers() {
        let mut c = SpanCollector::new();
        // 40 clean tasks and one that is evicted 8 times.
        for i in 0..41u64 {
            c.observe(
                0,
                &TraceRecord::TaskSubmit {
                    task: i,
                    job: i,
                    priority: 0,
                },
            );
            c.observe(
                10,
                &TraceRecord::TaskSchedule {
                    task: i,
                    node: 0,
                    restore: false,
                },
            );
            let mut t = 10;
            let evictions = if i == 40 { 8 } else { i % 2 };
            for _ in 0..evictions {
                t += 50;
                c.observe(
                    t,
                    &TraceRecord::TaskEvict {
                        task: i,
                        node: 0,
                        reason: "kill",
                    },
                );
                t += 10;
                c.observe(
                    t,
                    &TraceRecord::TaskSchedule {
                        task: i,
                        node: 0,
                        restore: false,
                    },
                );
            }
            c.observe(t + 500, &TraceRecord::TaskFinish { task: i, node: 0 });
        }
        let r = ObsReport::build(&c, 10);
        assert!(
            r.anomalies
                .iter()
                .any(|a| a.task == 40 && a.kind == "evictions"),
            "task 40 must be flagged: {:?}",
            r.anomalies
        );
        assert!(
            r.anomalies.iter().all(|a| a.task == 40),
            "only the outlier is flagged: {:?}",
            r.anomalies
        );
    }

    #[test]
    fn table_renders_all_sections() {
        let r = ObsReport::build(&collector_with_tasks(60), 4);
        let table = r.render_table();
        for needle in [
            "band",
            "free",
            "middle",
            "production",
            "blame totals",
            "worst jobs",
        ] {
            assert!(table.contains(needle), "table missing {needle}:\n{table}");
        }
    }

    #[test]
    fn robust_stats_handles_degenerate_samples() {
        assert_eq!(robust_stats(&[]), (0.0, 0.0));
        let (med, scale) = robust_stats(&[5.0, 5.0, 5.0]);
        assert_eq!(med, 5.0);
        assert_eq!(scale, 0.0);
        // MAD of {0,0,0,0,9} is 0, but the mean-AD fallback still gives a
        // usable scale.
        let (med, scale) = robust_stats(&[0.0, 0.0, 0.0, 0.0, 9.0]);
        assert_eq!(med, 0.0);
        assert!(scale > 0.0);
    }
}
