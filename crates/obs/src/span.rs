//! Per-task lifecycle spans reconstructed from a [`TraceRecord`] stream.
//!
//! [`SpanCollector`] is a [`Tracer`]: it can be attached to a running
//! simulator (online) or fed from a JSONL trace via [`collect_jsonl`]
//! (offline). Either way it makes a single streaming pass over the
//! records, keeping O(1) state per task — a [`Phase`] and the running
//! [`Blame`] totals — and never buffering the record stream itself.
//!
//! # Blame accounting
//!
//! Every task's wall-clock (sim-time) span from `task_submit` to
//! `task_finish` is tiled — exactly, in integer microseconds — by eight
//! segments:
//!
//! * **run** — productive execution that counted toward completion;
//! * **ready_wait** — pending-queue time before a fresh (non-restore)
//!   placement;
//! * **dump** — checkpoint dump service time (device busy writing);
//! * **ckpt_wait** — checkpoint device *queue* time, on both the dump
//!   side (evict → device start) and the restore side (placement →
//!   device start);
//! * **restore** — checkpoint restore service time;
//! * **retry** — recovery overhead from injected faults: time burnt by
//!   failed dump attempts (plus their backoff) and failed restore
//!   attempts, up to the point where the operation either succeeds, is
//!   abandoned for a kill fallback, or degenerates into a
//!   restart-from-scratch (`dump_fail` / `restore_fail` records);
//! * **lost** — intervals whose progress was discarded and must be
//!   re-executed: execution since the last resume point when a task is
//!   killed, time burnt by an aborted dump or restore, and previously
//!   credited run that a fresh restart re-executes after its image is
//!   lost;
//! * **suspended** — pending-queue time while holding a checkpoint
//!   image, waiting to be rescheduled for a restore.
//!
//! The conservation invariant `run + ready_wait + dump + ckpt_wait +
//! restore + retry + lost + suspended == finish - submit` holds by construction
//! and is hard-asserted at every `task_finish`; the property tests in
//! `cbp-bench` exercise it across randomized scenarios on both
//! simulators.
//!
//! Two subtleties are worth calling out:
//!
//! * The interval between `task_evict(reason="dump")` and the matching
//!   `dump_done` is split at `start_us` (the device service start the
//!   `dump_done` record carries) into ckpt_wait and dump. If the dump is
//!   instead aborted (`task_evict` or a kill arrives first), the whole
//!   interval *and* the execution since the last resume point become
//!   lost — an aborted dump saves nothing.
//! * A `task_schedule` with `restore=false` after the task had
//!   checkpointed (i.e. its image was lost to a node failure, or a kill
//!   discarded uncheckpointed progress and no image existed) moves all
//!   previously credited run to lost: that work will be re-executed. At
//!   `task_finish`, run therefore equals the task's true service time.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::rc::Rc;

use cbp_telemetry::{JsonlReader, TraceReadError, TraceRecord, Tracer};

/// Priority band, mirroring `cbp_workload::Priority::band` (Google-trace
/// convention: 0–1 free, 2–8 middle, 9+ production). Redefined here so
/// the analyzer sits below the workload layer and can consume any trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Band {
    /// Priorities 0–1: scavenger work, first to be preempted.
    Free,
    /// Priorities 2–8.
    Middle,
    /// Priorities 9 and above: latency-sensitive production work.
    Production,
}

impl Band {
    /// All bands, in reporting order.
    pub const ALL: [Band; 3] = [Band::Free, Band::Middle, Band::Production];

    /// The band a scheduler priority falls in.
    pub fn of_priority(p: u8) -> Band {
        match p {
            0..=1 => Band::Free,
            2..=8 => Band::Middle,
            _ => Band::Production,
        }
    }

    /// Short stable name (used in report JSON and tables).
    pub fn name(self) -> &'static str {
        match self {
            Band::Free => "free",
            Band::Middle => "middle",
            Band::Production => "production",
        }
    }

    /// Inclusive priority range `(min, max)` covered by the band.
    pub fn priority_range(self) -> (u8, u8) {
        match self {
            Band::Free => (0, 1),
            Band::Middle => (2, 8),
            Band::Production => (9, 11),
        }
    }
}

/// Response-time decomposition of one task (or an aggregate of tasks);
/// all fields are integer microseconds of simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Blame {
    /// Productive execution that counted toward completion.
    pub run_us: u64,
    /// Pending-queue time before a fresh (non-restore) placement.
    pub ready_wait_us: u64,
    /// Checkpoint dump service time.
    pub dump_us: u64,
    /// Checkpoint device queue time (dump and restore sides).
    pub ckpt_wait_us: u64,
    /// Checkpoint restore service time.
    pub restore_us: u64,
    /// Recovery overhead: failed dump/restore attempts and their
    /// backoff, before the operation succeeded or was abandoned.
    pub retry_us: u64,
    /// Discarded work re-executed later (kills, aborted dumps/restores,
    /// lost images).
    pub lost_us: u64,
    /// Pending-queue time while holding a checkpoint image.
    pub suspended_us: u64,
}

impl Blame {
    /// Sum of all segments. For a finished task this equals
    /// `finish - submit` exactly (the conservation invariant).
    pub fn total_us(&self) -> u64 {
        self.run_us
            + self.ready_wait_us
            + self.dump_us
            + self.ckpt_wait_us
            + self.restore_us
            + self.retry_us
            + self.lost_us
            + self.suspended_us
    }

    /// Everything that is not productive run: the preemption penalty.
    pub fn penalty_us(&self) -> u64 {
        self.total_us() - self.run_us
    }

    /// Accumulates another decomposition (for aggregates).
    pub fn accumulate(&mut self, other: &Blame) {
        self.run_us += other.run_us;
        self.ready_wait_us += other.ready_wait_us;
        self.dump_us += other.dump_us;
        self.ckpt_wait_us += other.ckpt_wait_us;
        self.restore_us += other.restore_us;
        self.retry_us += other.retry_us;
        self.lost_us += other.lost_us;
        self.suspended_us += other.suspended_us;
    }

    /// `(name, value)` pairs in canonical report order.
    pub fn components(&self) -> [(&'static str, u64); 8] {
        [
            ("run_us", self.run_us),
            ("ready_wait_us", self.ready_wait_us),
            ("dump_us", self.dump_us),
            ("ckpt_wait_us", self.ckpt_wait_us),
            ("restore_us", self.restore_us),
            ("retry_us", self.retry_us),
            ("lost_us", self.lost_us),
            ("suspended_us", self.suspended_us),
        ]
    }
}

/// Kind of one ordered lifecycle segment. Finer-grained than [`Blame`]:
/// checkpoint-device *queue* time is split by side (dump vs restore), so
/// counterfactual cost models can zero them independently — `Blame`'s
/// `ckpt_wait_us` equals `DumpQueue + RestoreQueue`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegKind {
    /// Productive execution that counted toward completion.
    Run,
    /// Pending-queue time before a fresh (non-restore) placement.
    ReadyWait,
    /// Checkpoint device queue time on the dump side (evict → service).
    DumpQueue,
    /// Checkpoint dump service time.
    Dump,
    /// Pending-queue time while holding a checkpoint image.
    Suspended,
    /// Checkpoint device queue time on the restore side (placement →
    /// service).
    RestoreQueue,
    /// Checkpoint restore service time.
    Restore,
    /// Recovery overhead from failed dump/restore attempts and backoff.
    Retry,
    /// Discarded work: killed execution, aborted dumps/restores, and run
    /// that a later fresh start re-executed.
    Lost,
}

impl SegKind {
    /// All kinds, in canonical report order.
    pub const ALL: [SegKind; 9] = [
        SegKind::Run,
        SegKind::ReadyWait,
        SegKind::DumpQueue,
        SegKind::Dump,
        SegKind::Suspended,
        SegKind::RestoreQueue,
        SegKind::Restore,
        SegKind::Retry,
        SegKind::Lost,
    ];

    /// Short stable name (used in report JSON and folded stacks).
    pub fn name(self) -> &'static str {
        match self {
            SegKind::Run => "run",
            SegKind::ReadyWait => "ready_wait",
            SegKind::DumpQueue => "dump_queue",
            SegKind::Dump => "dump",
            SegKind::Suspended => "suspended",
            SegKind::RestoreQueue => "restore_queue",
            SegKind::Restore => "restore",
            SegKind::Retry => "retry",
            SegKind::Lost => "lost",
        }
    }

    /// Index into [`SegKind::ALL`] (for fixed-size accumulators).
    pub fn index(self) -> usize {
        match self {
            SegKind::Run => 0,
            SegKind::ReadyWait => 1,
            SegKind::DumpQueue => 2,
            SegKind::Dump => 3,
            SegKind::Suspended => 4,
            SegKind::RestoreQueue => 5,
            SegKind::Restore => 6,
            SegKind::Retry => 7,
            SegKind::Lost => 8,
        }
    }
}

/// One ordered interval of a task's lifetime (µs sim time; `end_us` is
/// exclusive). Zero-length intervals are never recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// What the task was doing (or waiting on) during the interval.
    pub kind: SegKind,
    /// Interval start (µs sim time).
    pub start_us: u64,
    /// Interval end (µs sim time, exclusive).
    pub end_us: u64,
}

impl Segment {
    /// Interval length in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// Appends a non-empty segment (zero-length intervals carry no blame and
/// would only clutter the timeline).
fn push_seg(span: &mut TaskSpan, kind: SegKind, start: u64, end: u64) {
    if end > start {
        span.segments.push(Segment {
            kind,
            start_us: start,
            end_us: end,
        });
    }
}

/// Where a task currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// In the pending queue since `since`. Whether the wait is
    /// classified ready_wait or suspended is decided retroactively by
    /// the `restore` flag of the next `task_schedule`.
    Queued { since: u64 },
    /// Executing on a node since `since`.
    Running { since: u64 },
    /// Evicted for a dump at `evict_at`; `run_len` holds the execution
    /// since the last resume point, credited as run only if the dump
    /// completes (an aborted dump loses it).
    DumpWait { evict_at: u64, run_len: u64 },
    /// Placed for a restore at `sched_at`, waiting for the image read.
    Restoring { sched_at: u64 },
    /// Finished.
    Done,
}

/// The reconstructed lifecycle of one task.
#[derive(Debug, Clone)]
pub struct TaskSpan {
    /// Task id (simulator-scoped; YARN packs `(app << 32) | task`).
    pub task: u64,
    /// Owning job id.
    pub job: u64,
    /// Scheduler priority.
    pub priority: u8,
    /// Submission time (µs sim time).
    pub submit_us: u64,
    /// Completion time, if the task finished within the trace.
    pub finish_us: Option<u64>,
    /// Response-time decomposition.
    pub blame: Blame,
    /// `task_evict` records seen (any reason).
    pub evictions: u32,
    /// Evictions with reason `"kill"` or `"node-fail"`.
    pub kills: u32,
    /// Completed checkpoint dumps.
    pub dumps: u32,
    /// Completed checkpoint restores.
    pub restores: u32,
    /// Dump fallbacks (capacity, grace-expired, node-fail, ...).
    pub fallbacks: u32,
    /// Failed dump attempts (`dump_fail` records).
    pub dump_fails: u32,
    /// Failed restore attempts (`restore_fail` records).
    pub restore_fails: u32,
    /// RM escalations after an unresponsive AM (`am_escalate` records).
    pub escalations: u32,
    /// Bytes dump retries did not rewrite thanks to chunked resume
    /// (`resume_dump` records). The time saved is already inside the
    /// shorter retry spans; this credits the avoided I/O volume.
    pub resumed_bytes: u64,
    /// Corrupt chunks repaired in place by a DFS replica re-fetch
    /// (`chunk_refetch` records with `ok`).
    pub chunk_refetches: u32,
    /// Chain truncations to a valid prefix (`chain_truncate` records).
    pub chain_truncations: u32,
    /// Records that arrived in a phase where they make no sense. Tasks
    /// with `malformed > 0` are excluded from aggregation.
    pub malformed: u32,
    /// Ordered lifecycle intervals; empty unless the collector was built
    /// with segment recording. Sorted by `start_us` — and guaranteed to
    /// tile `submit_us..finish_us` exactly — once the task finished.
    pub segments: Vec<Segment>,
    current: Phase,
    /// Execution interval held back while a dump is pending: credited as
    /// a `Run` segment if the dump completes, `Lost` if it is aborted.
    /// Only maintained when segments are recorded.
    pending_run: Option<(u64, u64)>,
}

impl TaskSpan {
    /// The band the task's priority falls in.
    pub fn band(&self) -> Band {
        Band::of_priority(self.priority)
    }

    /// Response time, if finished.
    pub fn response_us(&self) -> Option<u64> {
        self.finish_us.map(|f| f - self.submit_us)
    }

    /// Whether the task ran to completion within the trace.
    pub fn finished(&self) -> bool {
        self.finish_us.is_some()
    }
}

/// Per-node tallies (service times and eviction counts observed on the
/// node). Unlike [`Blame`], these do not tile anything: they attribute
/// activity to the node where it happened.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// `task_evict` records on this node (any reason).
    pub evictions: u32,
    /// Evictions with reason `"kill"` or `"node-fail"`.
    pub kills: u32,
    /// Completed dumps on this node.
    pub dumps: u32,
    /// Dump service time on this node (µs).
    pub dump_us: u64,
    /// Completed restores on this node.
    pub restores: u32,
    /// Restore service time on this node (µs).
    pub restore_us: u64,
    /// Work discarded by evictions on this node (µs).
    pub lost_us: u64,
    /// Recovery overhead on this node (failed dump/restore attempts, µs).
    pub retry_us: u64,
    /// Blocks re-replicated after this node's datanode failures.
    pub repairs: u32,
    /// Bytes re-replicated for those repairs.
    pub repair_bytes: u64,
    /// Bytes dump retries on this node did not rewrite (chunked resume).
    pub resumed_bytes: u64,
    /// Tasks that finished on this node.
    pub finishes: u32,
}

/// Streaming span reconstruction over a trace record stream.
///
/// Feed it records via the [`Tracer`] impl (online) or [`collect_jsonl`]
/// (offline), then hand it to [`crate::ObsReport::build`].
#[derive(Debug, Default)]
pub struct SpanCollector {
    tasks: BTreeMap<u64, TaskSpan>,
    nodes: BTreeMap<u32, NodeStats>,
    records: u64,
    malformed: u64,
    strict: bool,
    record_segments: bool,
}

impl SpanCollector {
    /// A strict collector: malformed transitions panic with context.
    /// Use for simulator-emitted streams, which must be well-formed.
    pub fn new() -> Self {
        SpanCollector {
            strict: true,
            ..SpanCollector::default()
        }
    }

    /// A lenient collector: malformed transitions are counted on the
    /// task (excluding it from aggregation) instead of panicking. Use
    /// for traces of unknown provenance.
    pub fn lenient() -> Self {
        SpanCollector::default()
    }

    /// Enables per-task segment timelines (the input to critical-path
    /// extraction). Costs O(transitions) extra memory per task; when a
    /// task finishes, its ordered segments are hard-asserted to tile
    /// `submit..finish` exactly, mirroring the blame conservation check.
    pub fn with_segments(mut self) -> Self {
        self.record_segments = true;
        self
    }

    /// Whether segment timelines are being recorded.
    pub fn segments_enabled(&self) -> bool {
        self.record_segments
    }

    /// Records consumed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Malformed records seen so far (always 0 in strict mode).
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// The reconstructed spans, keyed by task id.
    pub fn tasks(&self) -> &BTreeMap<u64, TaskSpan> {
        &self.tasks
    }

    /// Per-node tallies, keyed by node id.
    pub fn nodes(&self) -> &BTreeMap<u32, NodeStats> {
        &self.nodes
    }

    fn bad(&mut self, task: u64, what: &str, rec: &TraceRecord) {
        if self.strict {
            panic!("malformed trace: {what} for task {task}: {rec:?}");
        }
        self.malformed += 1;
        if let Some(span) = self.tasks.get_mut(&task) {
            span.malformed += 1;
        }
    }

    fn node(&mut self, node: u32) -> &mut NodeStats {
        self.nodes.entry(node).or_default()
    }

    /// Consumes one record at sim time `t` (µs). This is the whole state
    /// machine; [`Tracer::record`] forwards here.
    pub fn observe(&mut self, t: u64, rec: &TraceRecord) {
        self.records += 1;
        match *rec {
            TraceRecord::TaskSubmit {
                task,
                job,
                priority,
            } => {
                if self.tasks.contains_key(&task) {
                    self.bad(task, "duplicate task_submit", rec);
                    return;
                }
                self.tasks.insert(
                    task,
                    TaskSpan {
                        task,
                        job,
                        priority,
                        submit_us: t,
                        finish_us: None,
                        blame: Blame::default(),
                        evictions: 0,
                        kills: 0,
                        dumps: 0,
                        restores: 0,
                        fallbacks: 0,
                        dump_fails: 0,
                        restore_fails: 0,
                        escalations: 0,
                        resumed_bytes: 0,
                        chunk_refetches: 0,
                        chain_truncations: 0,
                        malformed: 0,
                        segments: Vec::new(),
                        current: Phase::Queued { since: t },
                        pending_run: None,
                    },
                );
            }
            TraceRecord::TaskSchedule { task, restore, .. } => {
                let segs = self.record_segments;
                let Some(span) = self.tasks.get_mut(&task) else {
                    self.bad(task, "task_schedule before task_submit", rec);
                    return;
                };
                match span.current {
                    Phase::Queued { since } => {
                        let wait = t - since;
                        if restore {
                            span.blame.suspended_us += wait;
                            if segs {
                                push_seg(span, SegKind::Suspended, since, t);
                            }
                            span.current = Phase::Restoring { sched_at: t };
                        } else {
                            span.blame.ready_wait_us += wait;
                            // A fresh start re-executes everything credited
                            // so far (the image, if any, was unusable).
                            span.blame.lost_us += span.blame.run_us;
                            span.blame.run_us = 0;
                            if segs {
                                push_seg(span, SegKind::ReadyWait, since, t);
                                for s in span.segments.iter_mut() {
                                    if s.kind == SegKind::Run {
                                        s.kind = SegKind::Lost;
                                    }
                                }
                            }
                            span.current = Phase::Running { since: t };
                        }
                    }
                    _ => self.bad(task, "task_schedule while not queued", rec),
                }
            }
            TraceRecord::TaskFinish { task, node } => {
                let segs = self.record_segments;
                let Some(span) = self.tasks.get_mut(&task) else {
                    self.bad(task, "task_finish before task_submit", rec);
                    return;
                };
                match span.current {
                    Phase::Running { since } => {
                        span.blame.run_us += t - since;
                        span.finish_us = Some(t);
                        span.current = Phase::Done;
                        assert_eq!(
                            span.blame.total_us(),
                            t - span.submit_us,
                            "blame conservation violated for task {task}: \
                             segments {:?} must tile submit {} .. finish {t}",
                            span.blame,
                            span.submit_us,
                        );
                        if segs {
                            push_seg(span, SegKind::Run, since, t);
                            // Held-back run segments (DumpDone credits) and
                            // abort-time Lost segments were appended out of
                            // chronological order; restore it. Non-empty
                            // intervals never overlap, so start order is
                            // total.
                            span.segments.sort_by_key(|s| s.start_us);
                            let mut cursor = span.submit_us;
                            for s in &span.segments {
                                assert_eq!(
                                    s.start_us, cursor,
                                    "segment timeline violated for task {task}: \
                                     gap or overlap at {cursor} before {s:?}",
                                );
                                cursor = s.end_us;
                            }
                            assert_eq!(
                                cursor, t,
                                "segment timeline violated for task {task}: \
                                 segments end at {cursor}, finish at {t}",
                            );
                        }
                        self.node(node).finishes += 1;
                    }
                    _ => self.bad(task, "task_finish while not running", rec),
                }
            }
            TraceRecord::TaskEvict { task, node, reason } => {
                let segs = self.record_segments;
                let Some(span) = self.tasks.get_mut(&task) else {
                    self.bad(task, "task_evict before task_submit", rec);
                    return;
                };
                span.evictions += 1;
                let hard = reason != "dump";
                if hard {
                    span.kills += 1;
                }
                let lost = match span.current {
                    Phase::Running { since } if hard => {
                        if segs {
                            push_seg(span, SegKind::Lost, since, t);
                        }
                        Some(t - since)
                    }
                    Phase::Running { since } => {
                        // reason == "dump": execution since the resume
                        // point is held back until the dump completes.
                        if segs {
                            span.pending_run = Some((since, t));
                        }
                        span.current = Phase::DumpWait {
                            evict_at: t,
                            run_len: t - since,
                        };
                        None
                    }
                    Phase::DumpWait { evict_at, run_len } => {
                        // The in-flight dump was aborted: the held-back
                        // run and the dump time bought nothing.
                        if segs {
                            if let Some((rs, re)) = span.pending_run.take() {
                                push_seg(span, SegKind::Lost, rs, re);
                            }
                            push_seg(span, SegKind::Lost, evict_at, t);
                        }
                        Some(run_len + (t - evict_at))
                    }
                    Phase::Restoring { sched_at } => {
                        if segs {
                            push_seg(span, SegKind::Lost, sched_at, t);
                        }
                        Some(t - sched_at)
                    }
                    Phase::Queued { .. } | Phase::Done => {
                        self.bad(task, "task_evict while not placed", rec);
                        return;
                    }
                };
                if let Some(lost) = lost {
                    let span = self.tasks.get_mut(&task).expect("present above");
                    span.blame.lost_us += lost;
                    span.current = Phase::Queued { since: t };
                    let ns = self.node(node);
                    ns.lost_us += lost;
                }
                let ns = self.node(node);
                ns.evictions += 1;
                if hard {
                    ns.kills += 1;
                }
            }
            TraceRecord::DumpDone {
                task,
                node,
                start_us,
            } => {
                let Some(span) = self.tasks.get_mut(&task) else {
                    self.bad(task, "dump_done before task_submit", rec);
                    return;
                };
                match span.current {
                    Phase::DumpWait { evict_at, run_len } => {
                        // Split evict..done at the device service start.
                        let boundary = start_us.clamp(evict_at, t);
                        span.blame.run_us += run_len;
                        span.blame.ckpt_wait_us += boundary - evict_at;
                        span.blame.dump_us += t - boundary;
                        span.dumps += 1;
                        if self.record_segments {
                            if let Some((rs, re)) = span.pending_run.take() {
                                push_seg(span, SegKind::Run, rs, re);
                            }
                            push_seg(span, SegKind::DumpQueue, evict_at, boundary);
                            push_seg(span, SegKind::Dump, boundary, t);
                        }
                        span.current = Phase::Queued { since: t };
                        let ns = self.node(node);
                        ns.dumps += 1;
                        ns.dump_us += t - boundary;
                    }
                    _ => self.bad(task, "dump_done without pending dump", rec),
                }
            }
            TraceRecord::RestoreDone {
                task,
                node,
                start_us,
            } => {
                let Some(span) = self.tasks.get_mut(&task) else {
                    self.bad(task, "restore_done before task_submit", rec);
                    return;
                };
                match span.current {
                    Phase::Restoring { sched_at } => {
                        let boundary = start_us.clamp(sched_at, t);
                        span.blame.ckpt_wait_us += boundary - sched_at;
                        span.blame.restore_us += t - boundary;
                        span.restores += 1;
                        if self.record_segments {
                            push_seg(span, SegKind::RestoreQueue, sched_at, boundary);
                            push_seg(span, SegKind::Restore, boundary, t);
                        }
                        span.current = Phase::Running { since: t };
                        let ns = self.node(node);
                        ns.restores += 1;
                        ns.restore_us += t - boundary;
                    }
                    _ => self.bad(task, "restore_done without pending restore", rec),
                }
            }
            TraceRecord::DumpFallback { task, .. } => {
                // Always followed by the kill's task_evict (or, on node
                // failure, preceded by it); only counted here.
                if let Some(span) = self.tasks.get_mut(&task) {
                    span.fallbacks += 1;
                }
            }
            TraceRecord::DumpFail { task, node, .. } => {
                let Some(span) = self.tasks.get_mut(&task) else {
                    self.bad(task, "dump_fail before task_submit", rec);
                    return;
                };
                match span.current {
                    Phase::DumpWait { evict_at, run_len } => {
                        // The failed attempt (and any backoff before it)
                        // is recovery overhead; the held-back run stays
                        // held back for the next attempt or the fallback
                        // kill.
                        let burnt = t - evict_at;
                        span.blame.retry_us += burnt;
                        span.dump_fails += 1;
                        if self.record_segments {
                            push_seg(span, SegKind::Retry, evict_at, t);
                        }
                        span.current = Phase::DumpWait {
                            evict_at: t,
                            run_len,
                        };
                        self.node(node).retry_us += burnt;
                    }
                    _ => self.bad(task, "dump_fail without pending dump", rec),
                }
            }
            TraceRecord::RestoreFail {
                task,
                node,
                will_retry,
                ..
            } => {
                let Some(span) = self.tasks.get_mut(&task) else {
                    self.bad(task, "restore_fail before task_submit", rec);
                    return;
                };
                match span.current {
                    Phase::Restoring { sched_at } => {
                        let burnt = t - sched_at;
                        span.blame.retry_us += burnt;
                        span.restore_fails += 1;
                        if self.record_segments {
                            push_seg(span, SegKind::Retry, sched_at, t);
                        }
                        span.current = if will_retry {
                            // Next attempt (e.g. from a surviving HDFS
                            // replica) begins now, on the same placement.
                            Phase::Restoring { sched_at: t }
                        } else {
                            // Restart from scratch: the task re-queues;
                            // the following task_schedule(restore=false)
                            // reclassifies the credited run as lost.
                            Phase::Queued { since: t }
                        };
                        self.node(node).retry_us += burnt;
                    }
                    _ => self.bad(task, "restore_fail without pending restore", rec),
                }
            }
            TraceRecord::AmEscalate { task, .. } => {
                // The victim keeps running until the forced kill's
                // task_evict arrives; only counted here.
                if let Some(span) = self.tasks.get_mut(&task) {
                    span.escalations += 1;
                }
            }
            TraceRecord::ReplicationRepair {
                node,
                blocks,
                bytes,
            } => {
                let ns = self.node(node);
                ns.repairs += blocks.min(u32::MAX as u64) as u32;
                ns.repair_bytes += bytes;
            }
            TraceRecord::ResumeDump {
                task,
                node,
                resumed_bytes,
                ..
            } => {
                // The time the resume saved is already reflected in the
                // shorter retry span (dump_fail → dump_done); credit the
                // avoided rewrite volume without touching the phase
                // machine, so the 8-way tiling stays exact.
                if let Some(span) = self.tasks.get_mut(&task) {
                    span.resumed_bytes += resumed_bytes;
                }
                self.node(node).resumed_bytes += resumed_bytes;
            }
            TraceRecord::ChunkRefetch { task, ok, .. } => {
                // A successful targeted repair; its transfer time is inside
                // the surrounding restore span. Failed refetches are
                // followed by a restore_fail/chain_truncate that carries
                // the timing, so this is counter-only either way.
                if ok {
                    if let Some(span) = self.tasks.get_mut(&task) {
                        span.chunk_refetches += 1;
                    }
                }
            }
            TraceRecord::ChainTruncate { task, .. } => {
                // Always paired with a restore_fail(will_retry=true) that
                // re-arms the restoring phase; only counted here.
                if let Some(span) = self.tasks.get_mut(&task) {
                    span.chain_truncations += 1;
                }
            }
            // Bookkeeping-only records: the span machine does not need
            // them (dump/restore spans close on the *_done records, and
            // node-failure/crash evictions arrive as task_evict — a
            // "node-crash" reason classifies as a hard kill like any
            // other non-dump eviction, so chaos and breaker events keep
            // the 8-way tiling exact without extra state here). The
            // image-lifecycle records (gc_pass/image_evict/image_spill/
            // no_space) are bookkeeping too: an evicted chain costs
            // nothing until the task is re-placed (its scratch restart
            // arrives as a plain schedule without restore), a spill's
            // cost is inside the dump span it annotates, and a no-space
            // kill's waste lands with the matching task_evict.
            TraceRecord::DumpStart { .. }
            | TraceRecord::RestoreStart { .. }
            | TraceRecord::PreemptDecision { .. }
            | TraceRecord::NodeFail { .. }
            | TraceRecord::NodeRecover { .. }
            | TraceRecord::NodeDown { .. }
            | TraceRecord::NodeUp { .. }
            | TraceRecord::PartitionStart { .. }
            | TraceRecord::PartitionEnd { .. }
            | TraceRecord::BreakerOpen { .. }
            | TraceRecord::BreakerClose { .. }
            | TraceRecord::GcPass { .. }
            | TraceRecord::ImageEvict { .. }
            | TraceRecord::ImageSpill { .. }
            | TraceRecord::NoSpace { .. }
            | TraceRecord::ChunkDone { .. }
            | TraceRecord::ChunkCorrupt { .. }
            | TraceRecord::QueueDepth { .. } => {}
        }
    }
}

impl Tracer for SpanCollector {
    fn record(&mut self, t_us: u64, rec: &TraceRecord) {
        self.observe(t_us, rec);
    }
}

/// A cloneable handle to a [`SpanCollector`], so the collector can be
/// handed to a simulator as a `Box<dyn Tracer>` (possibly inside a
/// `MultiTracer`) while the caller keeps access to the results.
#[derive(Debug, Clone, Default)]
pub struct SharedCollector(Rc<RefCell<SpanCollector>>);

impl SharedCollector {
    /// Wraps a fresh strict collector.
    pub fn new() -> Self {
        SharedCollector(Rc::new(RefCell::new(SpanCollector::new())))
    }

    /// Wraps a fresh strict collector with segment timelines enabled
    /// (needed for critical-path extraction).
    pub fn with_segments() -> Self {
        SharedCollector(Rc::new(RefCell::new(SpanCollector::new().with_segments())))
    }

    /// Takes the collector out, leaving an empty one behind. Call after
    /// the simulation finished.
    pub fn take(&self) -> SpanCollector {
        std::mem::take(&mut self.0.borrow_mut())
    }
}

impl Tracer for SharedCollector {
    fn record(&mut self, t_us: u64, rec: &TraceRecord) {
        self.0.borrow_mut().observe(t_us, rec);
    }
}

/// Replays a JSONL trace (as written by `cbp_telemetry::JsonlTracer`)
/// into a lenient [`SpanCollector`].
pub fn collect_jsonl<R: BufRead>(input: R) -> Result<SpanCollector, TraceReadError> {
    collect_jsonl_with(input, false)
}

/// [`collect_jsonl`] with optional segment timelines (the input to
/// critical-path extraction).
pub fn collect_jsonl_with<R: BufRead>(
    input: R,
    segments: bool,
) -> Result<SpanCollector, TraceReadError> {
    let mut collector = SpanCollector::lenient();
    if segments {
        collector = collector.with_segments();
    }
    for item in JsonlReader::new(input)? {
        let (t_us, rec) = item?;
        collector.observe(t_us, &rec);
    }
    Ok(collector)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(collector: &mut SpanCollector, stream: &[(u64, TraceRecord)]) {
        for (t, rec) in stream {
            collector.observe(*t, rec);
        }
    }

    fn submit(task: u64) -> TraceRecord {
        TraceRecord::TaskSubmit {
            task,
            job: 1,
            priority: 0,
        }
    }

    fn sched(task: u64, restore: bool) -> TraceRecord {
        TraceRecord::TaskSchedule {
            task,
            node: 0,
            restore,
        }
    }

    fn evict(task: u64, reason: &'static str) -> TraceRecord {
        TraceRecord::TaskEvict {
            task,
            node: 0,
            reason,
        }
    }

    #[test]
    fn uninterrupted_task_is_pure_run_and_wait() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (100, submit(1)),
                (150, sched(1, false)),
                (1_150, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let span = &c.tasks()[&1];
        assert!(span.finished());
        assert_eq!(span.blame.ready_wait_us, 50);
        assert_eq!(span.blame.run_us, 1_000);
        assert_eq!(span.blame.penalty_us(), 50);
        assert_eq!(span.response_us(), Some(1_050));
        assert_eq!(c.nodes()[&0].finishes, 1);
    }

    #[test]
    fn dump_restore_cycle_tiles_exactly() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (10, sched(1, false)),
                // Ran 90, evicted for a dump; device starts at 110,
                // finishes at 140: ckpt_wait 10, dump 30.
                (100, evict(1, "dump")),
                (
                    140,
                    TraceRecord::DumpDone {
                        task: 1,
                        node: 0,
                        start_us: 110,
                    },
                ),
                // Suspended 60, restore placed at 200; device starts at
                // 205, done at 230: ckpt_wait 5, restore 25.
                (200, sched(1, true)),
                (
                    230,
                    TraceRecord::RestoreDone {
                        task: 1,
                        node: 0,
                        start_us: 205,
                    },
                ),
                (300, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let b = c.tasks()[&1].blame;
        assert_eq!(b.ready_wait_us, 10);
        assert_eq!(b.run_us, 90 + 70);
        assert_eq!(b.ckpt_wait_us, 10 + 5);
        assert_eq!(b.dump_us, 30);
        assert_eq!(b.suspended_us, 60);
        assert_eq!(b.restore_us, 25);
        assert_eq!(b.lost_us, 0);
        assert_eq!(b.total_us(), 300);
        assert_eq!(c.tasks()[&1].dumps, 1);
        assert_eq!(c.tasks()[&1].restores, 1);
    }

    #[test]
    fn kill_loses_progress_since_resume_point() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (80, evict(1, "kill")),
                (100, sched(1, false)),
                (250, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let b = c.tasks()[&1].blame;
        assert_eq!(b.lost_us, 80);
        assert_eq!(b.ready_wait_us, 20);
        assert_eq!(b.run_us, 150);
        assert_eq!(b.total_us(), 250);
        assert_eq!(c.tasks()[&1].kills, 1);
        assert_eq!(c.nodes()[&0].lost_us, 80);
    }

    #[test]
    fn aborted_dump_loses_held_back_run() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (50, evict(1, "dump")),
                // Grace expires: the dump is abandoned and the task
                // killed. Run 50 and dump-wait 30 are both lost.
                (
                    80,
                    TraceRecord::DumpFallback {
                        task: 1,
                        node: 0,
                        reason: "grace-expired",
                    },
                ),
                (80, evict(1, "kill")),
                (90, sched(1, false)),
                (190, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let span = &c.tasks()[&1];
        assert_eq!(span.blame.lost_us, 80);
        assert_eq!(span.blame.dump_us, 0);
        assert_eq!(span.blame.run_us, 100);
        assert_eq!(span.blame.total_us(), 190);
        assert_eq!(span.fallbacks, 1);
        assert_eq!(span.evictions, 2);
        assert_eq!(span.dumps, 0);
    }

    #[test]
    fn lost_image_reclassifies_saved_run() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (60, evict(1, "dump")),
                (
                    70,
                    TraceRecord::DumpDone {
                        task: 1,
                        node: 0,
                        start_us: 60,
                    },
                ),
                // The image dies with its node: the next placement is a
                // fresh start, so the 60 µs credited at dump_done are
                // re-executed.
                (100, sched(1, false)),
                (260, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let b = c.tasks()[&1].blame;
        assert_eq!(b.lost_us, 60);
        assert_eq!(b.run_us, 160);
        assert_eq!(b.dump_us, 10);
        assert_eq!(b.ready_wait_us, 30);
        assert_eq!(b.total_us(), 260);
    }

    #[test]
    fn restore_interrupted_by_failure_is_lost() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (40, evict(1, "dump")),
                (
                    50,
                    TraceRecord::DumpDone {
                        task: 1,
                        node: 0,
                        start_us: 40,
                    },
                ),
                (60, sched(1, true)),
                // Node fails mid-restore.
                (75, evict(1, "node-fail")),
                // The image survived elsewhere; restore again.
                (90, sched(1, true)),
                (
                    100,
                    TraceRecord::RestoreDone {
                        task: 1,
                        node: 0,
                        start_us: 92,
                    },
                ),
                (200, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let b = c.tasks()[&1].blame;
        assert_eq!(b.run_us, 40 + 100);
        assert_eq!(b.lost_us, 15, "aborted restore time");
        assert_eq!(b.suspended_us, 10 + 15);
        assert_eq!(b.ckpt_wait_us, 2);
        assert_eq!(b.restore_us, 8);
        assert_eq!(b.dump_us, 10);
        assert_eq!(b.total_us(), 200);
        assert_eq!(c.tasks()[&1].kills, 1, "node-fail counts as a kill");
    }

    #[test]
    fn start_us_outside_window_is_clamped() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (10, evict(1, "dump")),
                (
                    30,
                    TraceRecord::DumpDone {
                        task: 1,
                        node: 0,
                        start_us: 5, // before the evict: clamp to 10
                    },
                ),
                (40, sched(1, true)),
                (
                    60,
                    TraceRecord::RestoreDone {
                        task: 1,
                        node: 0,
                        start_us: 99, // after the done: clamp to 60
                    },
                ),
                (100, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let b = c.tasks()[&1].blame;
        assert_eq!(b.dump_us, 20);
        // dump clamp contributes 0, restore clamp contributes 20.
        assert_eq!(b.ckpt_wait_us, 20);
        assert_eq!(b.restore_us, 0);
        assert_eq!(b.total_us(), 100);
    }

    #[test]
    fn dump_retry_burns_retry_not_lost() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                // Ran 50, evicted for a dump; attempt 0 fails at 70
                // (20 µs burnt), retry succeeds: device starts 75,
                // done 90.
                (50, evict(1, "dump")),
                (
                    70,
                    TraceRecord::DumpFail {
                        task: 1,
                        node: 0,
                        attempt: 0,
                        will_retry: true,
                    },
                ),
                (
                    90,
                    TraceRecord::DumpDone {
                        task: 1,
                        node: 0,
                        start_us: 75,
                    },
                ),
                (100, sched(1, true)),
                (
                    110,
                    TraceRecord::RestoreDone {
                        task: 1,
                        node: 0,
                        start_us: 102,
                    },
                ),
                (200, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let span = &c.tasks()[&1];
        let b = span.blame;
        assert_eq!(b.retry_us, 20, "failed attempt is retry, not lost");
        assert_eq!(b.run_us, 50 + 90);
        assert_eq!(b.ckpt_wait_us, 5 + 2);
        assert_eq!(b.dump_us, 15);
        assert_eq!(b.restore_us, 8);
        assert_eq!(b.suspended_us, 10);
        assert_eq!(b.lost_us, 0);
        assert_eq!(b.total_us(), 200);
        assert_eq!(span.dump_fails, 1);
        assert_eq!(span.dumps, 1);
        assert_eq!(c.nodes()[&0].retry_us, 20);
    }

    #[test]
    fn exhausted_dump_retries_fall_back_to_kill() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (40, evict(1, "dump")),
                (
                    60,
                    TraceRecord::DumpFail {
                        task: 1,
                        node: 0,
                        attempt: 0,
                        will_retry: true,
                    },
                ),
                (
                    90,
                    TraceRecord::DumpFail {
                        task: 1,
                        node: 0,
                        attempt: 1,
                        will_retry: false,
                    },
                ),
                (
                    90,
                    TraceRecord::DumpFallback {
                        task: 1,
                        node: 0,
                        reason: "dump-fail",
                    },
                ),
                (90, evict(1, "dump-fail")),
                (100, sched(1, false)),
                (200, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let span = &c.tasks()[&1];
        let b = span.blame;
        assert_eq!(b.retry_us, 20 + 30, "both failed attempts are retry");
        assert_eq!(b.lost_us, 40, "run since resume point dies with the kill");
        assert_eq!(b.run_us, 100);
        assert_eq!(b.ready_wait_us, 10);
        assert_eq!(b.total_us(), 200);
        assert_eq!(span.dump_fails, 2);
        assert_eq!(span.fallbacks, 1);
        assert_eq!(span.kills, 1, "dump-fail eviction is a hard kill");
    }

    #[test]
    fn restore_retry_then_scratch_restart() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (30, evict(1, "dump")),
                (
                    40,
                    TraceRecord::DumpDone {
                        task: 1,
                        node: 0,
                        start_us: 30,
                    },
                ),
                (50, sched(1, true)),
                // Attempt 0 fails transiently at 65, retry from another
                // replica fails for good at 80: restart from scratch.
                (
                    65,
                    TraceRecord::RestoreFail {
                        task: 1,
                        node: 0,
                        attempt: 0,
                        reason: "transient",
                        will_retry: true,
                    },
                ),
                (
                    80,
                    TraceRecord::RestoreFail {
                        task: 1,
                        node: 0,
                        attempt: 1,
                        reason: "corrupt-image",
                        will_retry: false,
                    },
                ),
                (100, sched(1, false)),
                (230, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let span = &c.tasks()[&1];
        let b = span.blame;
        assert_eq!(b.retry_us, 15 + 15);
        assert_eq!(
            b.lost_us, 30,
            "credited run is re-executed after the scratch restart"
        );
        assert_eq!(b.run_us, 130);
        assert_eq!(b.dump_us, 10);
        assert_eq!(b.suspended_us, 10);
        assert_eq!(b.ready_wait_us, 20, "re-queue wait before the fresh start");
        assert_eq!(b.restore_us, 0);
        assert_eq!(b.total_us(), 230);
        assert_eq!(span.restore_fails, 2);
        assert_eq!(span.restores, 0);
    }

    #[test]
    fn integrity_records_credit_without_breaking_tiling() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (30, evict(1, "dump")),
                // Attempt 0 fails at 45; the retry resumes past 64 MB of
                // durable chunks instead of rewriting all 128 MB.
                (
                    45,
                    TraceRecord::DumpFail {
                        task: 1,
                        node: 0,
                        attempt: 0,
                        will_retry: true,
                    },
                ),
                (
                    45,
                    TraceRecord::ChunkDone {
                        task: 1,
                        node: 0,
                        chunk: 1,
                        total: 2,
                    },
                ),
                (
                    45,
                    TraceRecord::ResumeDump {
                        task: 1,
                        node: 0,
                        resumed_bytes: 64_000_000,
                        total_bytes: 128_000_000,
                    },
                ),
                (
                    60,
                    TraceRecord::DumpDone {
                        task: 1,
                        node: 0,
                        start_us: 50,
                    },
                ),
                (70, sched(1, true)),
                // Validation: one chunk repaired from a replica, a second
                // stays corrupt — the chain is cut and re-read in place.
                (
                    80,
                    TraceRecord::ChunkCorrupt {
                        task: 1,
                        node: 0,
                        image: 7,
                        chunk: 0,
                    },
                ),
                (
                    80,
                    TraceRecord::ChunkRefetch {
                        task: 1,
                        node: 0,
                        chunk: 0,
                        ok: true,
                    },
                ),
                (
                    80,
                    TraceRecord::ChunkRefetch {
                        task: 1,
                        node: 0,
                        chunk: 1,
                        ok: false,
                    },
                ),
                (
                    80,
                    TraceRecord::ChainTruncate {
                        task: 1,
                        node: 0,
                        dropped: 1,
                        kept: 1,
                    },
                ),
                (
                    80,
                    TraceRecord::RestoreFail {
                        task: 1,
                        node: 0,
                        attempt: 0,
                        reason: "corrupt-image",
                        will_retry: true,
                    },
                ),
                (
                    95,
                    TraceRecord::RestoreDone {
                        task: 1,
                        node: 0,
                        start_us: 85,
                    },
                ),
                (195, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let span = &c.tasks()[&1];
        let b = span.blame;
        assert_eq!(b.retry_us, 15 + 10, "failed attempt + truncated read");
        assert_eq!(b.run_us, 130);
        assert_eq!(b.dump_us, 10);
        assert_eq!(b.restore_us, 10);
        assert_eq!(b.ckpt_wait_us, 5 + 5);
        assert_eq!(b.suspended_us, 10);
        assert_eq!(b.total_us(), 195, "integrity records never break tiling");
        assert_eq!(span.resumed_bytes, 64_000_000);
        assert_eq!(span.chunk_refetches, 1, "only the successful refetch");
        assert_eq!(span.chain_truncations, 1);
        assert_eq!(span.restore_fails, 1);
        assert_eq!(c.nodes()[&0].resumed_bytes, 64_000_000);
        assert_eq!(c.malformed(), 0);
    }

    #[test]
    fn escalation_and_repair_are_counted() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (
                    50,
                    TraceRecord::AmEscalate {
                        task: 1,
                        node: 0,
                        waited_us: 50,
                    },
                ),
                (50, evict(1, "kill")),
                (
                    55,
                    TraceRecord::ReplicationRepair {
                        node: 0,
                        blocks: 4,
                        bytes: 1 << 20,
                    },
                ),
                (60, sched(1, false)),
                (160, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        let span = &c.tasks()[&1];
        assert_eq!(span.escalations, 1);
        assert_eq!(span.blame.total_us(), 160);
        assert_eq!(c.nodes()[&0].repairs, 4);
        assert_eq!(c.nodes()[&0].repair_bytes, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "malformed trace")]
    fn strict_mode_panics_on_wrong_phase() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (5, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
    }

    #[test]
    fn lenient_mode_counts_malformed_and_excludes() {
        let mut c = SpanCollector::lenient();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (5, TraceRecord::TaskFinish { task: 1, node: 0 }),
                (7, evict(9, "kill")), // unknown task
            ],
        );
        assert_eq!(c.malformed(), 2);
        assert_eq!(c.tasks()[&1].malformed, 1);
        assert!(!c.tasks()[&1].finished());
    }

    #[test]
    fn shared_collector_round_trips() {
        let shared = SharedCollector::new();
        let mut tracer: Box<dyn Tracer> = Box::new(shared.clone());
        tracer.record(0, &submit(3));
        tracer.record(4, &sched(3, false));
        tracer.record(10, &TraceRecord::TaskFinish { task: 3, node: 2 });
        tracer.finish();
        let collector = shared.take();
        assert_eq!(collector.records(), 3);
        assert_eq!(collector.tasks()[&3].blame.run_us, 6);
    }

    fn kinds(c: &SpanCollector, task: u64) -> Vec<(SegKind, u64)> {
        c.tasks()[&task]
            .segments
            .iter()
            .map(|s| (s.kind, s.dur_us()))
            .collect()
    }

    #[test]
    fn segments_tile_dump_restore_cycle() {
        let mut c = SpanCollector::new().with_segments();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (10, sched(1, false)),
                (100, evict(1, "dump")),
                (
                    140,
                    TraceRecord::DumpDone {
                        task: 1,
                        node: 0,
                        start_us: 110,
                    },
                ),
                (200, sched(1, true)),
                (
                    230,
                    TraceRecord::RestoreDone {
                        task: 1,
                        node: 0,
                        start_us: 205,
                    },
                ),
                (300, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        assert_eq!(
            kinds(&c, 1),
            vec![
                (SegKind::ReadyWait, 10),
                (SegKind::Run, 90),
                (SegKind::DumpQueue, 10),
                (SegKind::Dump, 30),
                (SegKind::Suspended, 60),
                (SegKind::RestoreQueue, 5),
                (SegKind::Restore, 25),
                (SegKind::Run, 70),
            ],
        );
        // Segment sums refine the blame totals exactly.
        let span = &c.tasks()[&1];
        let mut per_kind = [0u64; 9];
        for s in &span.segments {
            per_kind[s.kind.index()] += s.dur_us();
        }
        assert_eq!(per_kind[SegKind::Run.index()], span.blame.run_us);
        assert_eq!(
            per_kind[SegKind::DumpQueue.index()] + per_kind[SegKind::RestoreQueue.index()],
            span.blame.ckpt_wait_us
        );
    }

    #[test]
    fn segments_mark_aborted_dump_lost() {
        let mut c = SpanCollector::new().with_segments();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (50, evict(1, "dump")),
                (80, evict(1, "kill")),
                (90, sched(1, false)),
                (190, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        assert_eq!(
            kinds(&c, 1),
            vec![
                (SegKind::Lost, 50),
                (SegKind::Lost, 30),
                (SegKind::ReadyWait, 10),
                (SegKind::Run, 100),
            ],
        );
    }

    #[test]
    fn segments_reclassify_run_after_lost_image() {
        let mut c = SpanCollector::new().with_segments();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (60, evict(1, "dump")),
                (
                    70,
                    TraceRecord::DumpDone {
                        task: 1,
                        node: 0,
                        start_us: 60,
                    },
                ),
                (100, sched(1, false)),
                (260, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        // The 60 µs credited as run at dump_done are re-executed after
        // the fresh start, so the segment is retroactively lost.
        assert_eq!(
            kinds(&c, 1),
            vec![
                (SegKind::Lost, 60),
                (SegKind::Dump, 10),
                (SegKind::ReadyWait, 30),
                (SegKind::Run, 160),
            ],
        );
    }

    #[test]
    fn segments_cover_dump_retries() {
        let mut c = SpanCollector::new().with_segments();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (0, sched(1, false)),
                (50, evict(1, "dump")),
                (
                    70,
                    TraceRecord::DumpFail {
                        task: 1,
                        node: 0,
                        attempt: 0,
                        will_retry: true,
                    },
                ),
                (
                    90,
                    TraceRecord::DumpDone {
                        task: 1,
                        node: 0,
                        start_us: 75,
                    },
                ),
                (100, sched(1, true)),
                (
                    110,
                    TraceRecord::RestoreDone {
                        task: 1,
                        node: 0,
                        start_us: 102,
                    },
                ),
                (200, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        assert_eq!(
            kinds(&c, 1),
            vec![
                (SegKind::Run, 50),
                (SegKind::Retry, 20),
                (SegKind::DumpQueue, 5),
                (SegKind::Dump, 15),
                (SegKind::Suspended, 10),
                (SegKind::RestoreQueue, 2),
                (SegKind::Restore, 8),
                (SegKind::Run, 90),
            ],
        );
    }

    #[test]
    fn disabled_segments_stay_empty() {
        let mut c = SpanCollector::new();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (5, sched(1, false)),
                (50, TraceRecord::TaskFinish { task: 1, node: 0 }),
            ],
        );
        assert!(!c.segments_enabled());
        assert!(c.tasks()[&1].segments.is_empty());
    }

    #[test]
    fn evicted_never_rescheduled_holds_partial_blame() {
        // A task killed and never placed again (e.g. the trace was cut
        // short): its blame must stay internally consistent — the run
        // since the resume point is lost, nothing is credited as run —
        // and it must report as unfinished so aggregation excludes it.
        let mut c = SpanCollector::new().with_segments();
        feed(
            &mut c,
            &[
                (0, submit(1)),
                (20, sched(1, false)),
                (90, evict(1, "kill")),
            ],
        );
        let span = &c.tasks()[&1];
        assert!(!span.finished());
        assert_eq!(span.response_us(), None);
        assert_eq!(span.blame.run_us, 0);
        assert_eq!(span.blame.ready_wait_us, 20);
        assert_eq!(span.blame.lost_us, 70);
        assert_eq!(span.blame.total_us(), 90, "blame covers submit..evict");
        assert_eq!(span.kills, 1);
        assert_eq!(
            kinds(&c, 1),
            vec![(SegKind::ReadyWait, 20), (SegKind::Lost, 70)],
        );
    }

    #[test]
    fn bands_cover_all_priorities() {
        for p in 0..=11u8 {
            let b = Band::of_priority(p);
            let (lo, hi) = b.priority_range();
            assert!(p >= lo && p <= hi, "priority {p} in {b:?}");
        }
        assert_eq!(Band::of_priority(200), Band::Production);
    }
}
