//! Regression diffing of analysis reports.
//!
//! Two [`crate::ObsReport`] JSON documents (baseline and candidate) are
//! flattened into `metric path → value` maps and compared under
//! configurable tolerances. Each metric gets a verdict — *same* within
//! tolerance, *improved* / *regressed* for metrics with a known good
//! direction (penalties, waits and lost work are lower-is-better;
//! finished counts are higher-is-better), or *changed* for neutral ones
//! — and the report rolls up into an overall verdict plus a rendered
//! table of the deltas.
//!
//! Identity-heavy sections (`top_jobs`, `anomalies`) and raw histogram
//! buckets are excluded from the flat view: they are diagnostic detail,
//! not regression metrics, and tiny scheduling changes legitimately
//! reorder them.

use std::collections::BTreeMap;
use std::fmt;

use cbp_telemetry::json::{self, Value};

use crate::report::{REPORT_MIN_VERSION, REPORT_SCHEMA, REPORT_VERSION};

/// Comparison tolerances.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Relative tolerance applied to every metric
    /// (`|Δ| ≤ rel · max(|a|, |b|)` counts as same).
    pub rel: f64,
    /// Absolute tolerance, in microseconds, applied only to `*_us`
    /// metrics (absorbs sub-millisecond jitter on large time sums).
    pub abs_us: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            rel: 0.05,
            abs_us: 1_000.0,
        }
    }
}

impl Tolerances {
    fn within(&self, key: &str, a: f64, b: f64) -> bool {
        let d = (a - b).abs();
        if d <= self.rel * a.abs().max(b.abs()) {
            return true;
        }
        key.ends_with("_us") && d <= self.abs_us
    }
}

/// Per-metric comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance.
    Same,
    /// Out of tolerance, in the good direction.
    Improved,
    /// Out of tolerance, in the bad direction.
    Regressed,
    /// Out of tolerance, no known good direction.
    Changed,
    /// Present only in the candidate.
    Added,
    /// Present only in the baseline.
    Removed,
}

impl Verdict {
    /// Short stable label.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Same => "same",
            Verdict::Improved => "improved",
            Verdict::Regressed => "regressed",
            Verdict::Changed => "changed",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Flattened metric path (e.g. `bands.production.mean_penalty_us`).
    pub key: String,
    /// Baseline value, if present.
    pub baseline: Option<f64>,
    /// Candidate value, if present.
    pub candidate: Option<f64>,
    /// Outcome.
    pub verdict: Verdict,
}

impl DiffRow {
    /// Candidate minus baseline (0 when either side is missing).
    pub fn delta(&self) -> f64 {
        match (self.baseline, self.candidate) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }
}

/// The full comparison: one row per metric path, in sorted key order.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// All compared metrics.
    pub rows: Vec<DiffRow>,
    /// The tolerances used.
    pub tolerances: Tolerances,
}

impl DiffReport {
    /// Rows with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.rows.iter().filter(|r| r.verdict == v).count()
    }

    /// Overall verdict: regressed if anything regressed, else improved
    /// if anything improved, else changed if anything changed (or the
    /// schemas gained/lost metrics), else same.
    pub fn verdict(&self) -> Verdict {
        if self.count(Verdict::Regressed) > 0 {
            Verdict::Regressed
        } else if self.count(Verdict::Improved) > 0 {
            Verdict::Improved
        } else if self.count(Verdict::Changed)
            + self.count(Verdict::Added)
            + self.count(Verdict::Removed)
            > 0
        {
            Verdict::Changed
        } else {
            Verdict::Same
        }
    }

    /// Renders a table of every out-of-tolerance metric plus a summary
    /// line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>14} {:>14} {:>12} {:>10}",
            "metric", "baseline", "candidate", "delta", "verdict"
        );
        for row in &self.rows {
            if row.verdict == Verdict::Same {
                continue;
            }
            let fmt_opt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.2}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<44} {:>14} {:>14} {:>12.2} {:>10}",
                row.key,
                fmt_opt(row.baseline),
                fmt_opt(row.candidate),
                row.delta(),
                row.verdict,
            );
        }
        let _ = writeln!(
            out,
            "{} metrics: {} same, {} improved, {} regressed, {} changed, {} added/removed => {}",
            self.rows.len(),
            self.count(Verdict::Same),
            self.count(Verdict::Improved),
            self.count(Verdict::Regressed),
            self.count(Verdict::Changed),
            self.count(Verdict::Added) + self.count(Verdict::Removed),
            self.verdict(),
        );
        out
    }
}

/// Subtrees excluded from the flat metric view.
const SKIP_SUBTREES: [&str; 3] = ["top_jobs", "anomalies", "penalty_hist"];

/// True if a lower value of the metric is better.
fn lower_is_better(key: &str) -> bool {
    const BAD: [&str; 12] = [
        "penalty",
        "lost",
        "ckpt_wait",
        "ready_wait",
        "suspended",
        "dump_us",
        "restore_us",
        "evictions",
        "kills",
        "fallbacks",
        "malformed",
        "response",
    ];
    BAD.iter().any(|b| key.contains(b))
}

/// True if a higher value of the metric is better.
fn higher_is_better(key: &str) -> bool {
    key.ends_with("finished") || key.ends_with(".finishes")
}

fn walk(prefix: &str, v: &Value, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Object(fields) => {
            for (k, child) in fields {
                if SKIP_SUBTREES.contains(&k.as_str()) {
                    continue;
                }
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                walk(&path, child, out);
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                // Identify array elements by their id field when present
                // (bands by name, nodes by id) so reordering does not
                // show up as wholesale adds/removes.
                let label = item
                    .get("band")
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .or_else(|| {
                        item.get("node")
                            .and_then(Value::as_u64)
                            .map(|n| n.to_string())
                    })
                    .unwrap_or_else(|| i.to_string());
                walk(&format!("{prefix}.{label}"), item, out);
            }
        }
        Value::U64(_) | Value::F64(_) => {
            if let Some(x) = v.as_f64() {
                out.insert(prefix.to_string(), x);
            }
        }
        Value::Bool(b) => {
            out.insert(prefix.to_string(), if *b { 1.0 } else { 0.0 });
        }
        Value::Str(_) | Value::Null => {}
    }
}

/// Flattens an `ObsReport` JSON document into `metric path → value`.
///
/// Fails if the document is not valid JSON or does not carry the
/// `cbp-obs-report` schema header.
pub fn flatten_report(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let v = json::parse(text).ok_or_else(|| "not valid JSON".to_string())?;
    let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != REPORT_SCHEMA {
        return Err(format!("expected schema {REPORT_SCHEMA:?}, got {schema:?}"));
    }
    let version = v.get("version").and_then(Value::as_u64).unwrap_or(0);
    if version < REPORT_MIN_VERSION as u64 || version > REPORT_VERSION as u64 {
        return Err(format!(
            "expected schema version {REPORT_MIN_VERSION}..={REPORT_VERSION}, got {version}"
        ));
    }
    let mut out = BTreeMap::new();
    if let Value::Object(fields) = &v {
        for (k, child) in fields {
            if k == "schema" || k == "version" || SKIP_SUBTREES.contains(&k.as_str()) {
                continue;
            }
            walk(k, child, &mut out);
        }
    }
    Ok(out)
}

/// Compares two `ObsReport` JSON documents.
pub fn diff_reports(
    baseline: &str,
    candidate: &str,
    tolerances: Tolerances,
) -> Result<DiffReport, String> {
    let base = flatten_report(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cand = flatten_report(candidate).map_err(|e| format!("candidate: {e}"))?;
    let mut keys: Vec<&String> = base.keys().collect();
    for k in cand.keys() {
        if !base.contains_key(k) {
            keys.push(k);
        }
    }
    keys.sort();
    let rows = keys
        .into_iter()
        .map(|key| {
            let a = base.get(key).copied();
            let b = cand.get(key).copied();
            let verdict = match (a, b) {
                (None, Some(_)) => Verdict::Added,
                (Some(_), None) => Verdict::Removed,
                (Some(a), Some(b)) if tolerances.within(key, a, b) => Verdict::Same,
                (Some(a), Some(b)) => {
                    let better =
                        (b < a && lower_is_better(key)) || (b > a && higher_is_better(key));
                    let worse = (b > a && lower_is_better(key)) || (b < a && higher_is_better(key));
                    if better {
                        Verdict::Improved
                    } else if worse {
                        Verdict::Regressed
                    } else {
                        Verdict::Changed
                    }
                }
                (None, None) => unreachable!("key came from one of the maps"),
            };
            DiffRow {
                key: key.clone(),
                baseline: a,
                candidate: b,
                verdict,
            }
        })
        .collect();
    Ok(DiffReport { rows, tolerances })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ObsReport;
    use crate::span::SpanCollector;
    use cbp_telemetry::TraceRecord;

    fn report_json(kill_at: u64) -> String {
        let mut c = SpanCollector::new();
        for i in 0..20u64 {
            c.observe(
                0,
                &TraceRecord::TaskSubmit {
                    task: i,
                    job: i / 2,
                    priority: (i % 12) as u8,
                },
            );
            c.observe(
                5,
                &TraceRecord::TaskSchedule {
                    task: i,
                    node: 0,
                    restore: false,
                },
            );
            let mut t = 5;
            if i == 3 {
                c.observe(
                    kill_at,
                    &TraceRecord::TaskEvict {
                        task: i,
                        node: 0,
                        reason: "kill",
                    },
                );
                c.observe(
                    kill_at + 10,
                    &TraceRecord::TaskSchedule {
                        task: i,
                        node: 0,
                        restore: false,
                    },
                );
                t = kill_at + 10;
            }
            c.observe(t + 1_000_000, &TraceRecord::TaskFinish { task: i, node: 0 });
        }
        ObsReport::build(&c, 5).to_json()
    }

    #[test]
    fn identical_reports_diff_as_same() {
        let a = report_json(500_000);
        let d = diff_reports(&a, &a, Tolerances::default()).unwrap();
        assert_eq!(d.verdict(), Verdict::Same);
        assert!(d.rows.iter().all(|r| r.verdict == Verdict::Same));
        assert!(!d.rows.is_empty());
        assert!(d.render().contains("=> same"));
    }

    #[test]
    fn more_lost_work_regresses() {
        // Baseline kills task 3 early (little lost work); candidate
        // kills it late (much more lost work and a longer response).
        let base = report_json(10_000);
        let cand = report_json(40_000_000);
        let d = diff_reports(&base, &cand, Tolerances::default()).unwrap();
        assert_eq!(d.verdict(), Verdict::Regressed);
        assert!(
            d.rows
                .iter()
                .any(|r| r.key.contains("lost_us") && r.verdict == Verdict::Regressed),
            "lost_us must regress:\n{}",
            d.render()
        );
        // The reverse comparison improves.
        let d = diff_reports(&cand, &base, Tolerances::default()).unwrap();
        assert_eq!(d.verdict(), Verdict::Improved);
    }

    #[test]
    fn tolerances_absorb_small_deltas() {
        let base = report_json(10_000);
        let cand = report_json(10_040);
        let strict = diff_reports(
            &base,
            &cand,
            Tolerances {
                rel: 0.0,
                abs_us: 0.0,
            },
        )
        .unwrap();
        assert_ne!(strict.verdict(), Verdict::Same);
        let loose = diff_reports(&base, &cand, Tolerances::default()).unwrap();
        assert_eq!(loose.verdict(), Verdict::Same);
    }

    #[test]
    fn flatten_identifies_bands_and_nodes_by_id() {
        let flat = flatten_report(&report_json(10_000)).unwrap();
        assert!(flat.contains_key("bands.production.mean_penalty_us"));
        assert!(flat.contains_key("bands.free.blame.run_us"));
        assert!(flat.contains_key("nodes.0.finishes"));
        assert!(flat.contains_key("totals.blame.lost_us"));
        assert!(!flat.keys().any(|k| k.contains("top_jobs")));
        assert!(!flat.keys().any(|k| k.contains("penalty_hist")));
        assert!(!flat.keys().any(|k| k.contains("schema")));
    }

    #[test]
    fn rejects_non_report_json() {
        assert!(flatten_report("{}").is_err());
        assert!(flatten_report("not json").is_err());
        assert!(flatten_report("{\"schema\":\"cbp-trace\",\"version\":1}").is_err());
        assert!(diff_reports("{}", "{}", Tolerances::default()).is_err());
    }
}
