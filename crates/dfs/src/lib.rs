//! An HDFS-lite distributed file system model.
//!
//! The paper extends CRIU to dump checkpoint images to HDFS (via `libhdfs`)
//! so a suspended task can be restored **on any node** — the enabler for the
//! adaptive local/remote resumption policy (Algorithm 2). The scheduler
//! needs three things from HDFS, all provided here mechanistically:
//!
//! 1. a **namespace** mapping checkpoint paths to block lists,
//! 2. **block placement with replication** (first replica on the writing
//!    node, the rest spread across the cluster), which determines whether a
//!    restore on node *n* finds its blocks locally or must fetch them, and
//! 3. **transfer timing**: pipelined writes are capped by
//!    `min(disk, network)` bandwidth plus a fixed software overhead per
//!    block — reproducing Fig. 2b, where HDFS dump/restore is uniformly
//!    slower than the local file system on the same medium.
//!
//! ```
//! use cbp_dfs::{DfsCluster, DfsConfig, DnId};
//! use cbp_simkit::units::ByteSize;
//! use cbp_storage::MediaSpec;
//!
//! let mut dfs = DfsCluster::homogeneous(DfsConfig::default(), MediaSpec::ssd(), 4, 7);
//! let receipt = dfs.create("/ckpt/task-1", ByteSize::from_gb(1), DnId(0))?;
//! assert!(receipt.duration.as_secs_f64() > 0.0);
//! // Reading back on the writer is all-local; on another node it is not.
//! assert_eq!(dfs.read_cost("/ckpt/task-1", DnId(0))?.remote_bytes, ByteSize::ZERO);
//! # Ok::<(), cbp_dfs::DfsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod namespace;

pub use cluster::{DfsCluster, DfsConfig, DnId, ReadCost, ReplicationRepair, WriteReceipt};
pub use namespace::{BlockId, BlockInfo, FileId, FileInfo, Namespace};

use std::fmt;

/// Errors returned by DFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// The path already exists.
    FileExists(String),
    /// The path does not exist.
    NotFound(String),
    /// Not enough aggregate datanode capacity for the requested replicas.
    NoSpace {
        /// Bytes that could not be placed.
        requested: u64,
    },
    /// The referenced datanode id is out of range.
    UnknownDataNode(DnId),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::FileExists(p) => write!(f, "file already exists: {p}"),
            DfsError::NotFound(p) => write!(f, "file not found: {p}"),
            DfsError::NoSpace { requested } => {
                write!(f, "insufficient datanode capacity for {requested} bytes")
            }
            DfsError::UnknownDataNode(id) => write!(f, "unknown datanode: {id:?}"),
        }
    }
}

impl std::error::Error for DfsError {}
