//! The DFS cluster: datanodes, placement, and transfer timing.

use cbp_simkit::units::{Bandwidth, ByteSize};
use cbp_simkit::{SimDuration, SimRng};
use cbp_storage::MediaSpec;
use serde::{Deserialize, Serialize};

use crate::namespace::{BlockInfo, FileId, Namespace};
use crate::DfsError;

/// Identifier of a datanode (index into the cluster's datanode table; the
/// scheduler layers use the same index for compute nodes, mirroring the
/// co-located NodeManager + DataNode deployment of the paper's testbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DnId(pub u32);

/// DFS-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DfsConfig {
    /// Block size (HDFS default is 128 MB).
    pub block_size: ByteSize,
    /// Replicas per block.
    pub replication: usize,
    /// Per-node network bandwidth (the pipeline cap for remote replicas).
    pub network_bw: Bandwidth,
    /// Fixed software overhead per block transfer (RPC, buffer copies); this
    /// is what keeps HDFS above the local file system in Fig. 2b even when
    /// bandwidth does not bind.
    pub per_block_overhead: SimDuration,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            block_size: ByteSize::from_mb(128),
            replication: 2,
            // 10 GbE as in a modern testbed: 1.25 GB/s.
            network_bw: Bandwidth::from_gb_per_sec_f64(1.25),
            per_block_overhead: SimDuration::from_millis(40),
        }
    }
}

/// A datanode's local state.
#[derive(Debug, Clone)]
struct DataNode {
    media: MediaSpec,
    used: ByteSize,
    alive: bool,
}

/// What the NameNode did after a datanode failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationRepair {
    /// Blocks that lost one replica and were re-replicated elsewhere.
    pub blocks_repaired: usize,
    /// Bytes the repair copies across the network.
    pub bytes_copied: ByteSize,
    /// Blocks whose last replica died — their data is gone.
    pub blocks_lost: usize,
}

/// Timing and identity of a completed DFS write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReceipt {
    /// The created file.
    pub file: FileId,
    /// End-to-end pipelined write duration.
    pub duration: SimDuration,
    /// Number of blocks written.
    pub blocks: usize,
}

/// The byte split of a prospective read from a given node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadCost {
    /// Bytes served from a replica on the reading node.
    pub local_bytes: ByteSize,
    /// Bytes that must cross the network from other datanodes.
    pub remote_bytes: ByteSize,
    /// End-to-end read duration.
    pub duration: SimDuration,
}

/// The distributed file system: a NameNode ([`Namespace`]) plus datanodes.
///
/// Placement follows HDFS: the first replica lands on the writing node, the
/// remaining replicas on distinct nodes chosen uniformly (capacity
/// permitting). Placement randomness comes from a seeded [`SimRng`], so runs
/// are reproducible.
#[derive(Debug)]
pub struct DfsCluster {
    config: DfsConfig,
    nodes: Vec<DataNode>,
    namespace: Namespace,
    rng: SimRng,
}

impl DfsCluster {
    /// Creates a cluster of `n` identical datanodes backed by `media`.
    pub fn homogeneous(config: DfsConfig, media: MediaSpec, n: usize, seed: u64) -> Self {
        assert!(n > 0, "a DFS needs at least one datanode");
        assert!(config.replication >= 1, "replication factor must be >= 1");
        DfsCluster {
            config,
            nodes: vec![
                DataNode {
                    media,
                    used: ByteSize::ZERO,
                    alive: true
                };
                n
            ],
            namespace: Namespace::new(),
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    /// Number of datanodes.
    pub fn datanode_count(&self) -> usize {
        self.nodes.len()
    }

    /// The namespace (read-only).
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Bytes stored on a datanode (all replicas).
    ///
    /// # Errors
    ///
    /// [`DfsError::UnknownDataNode`] if `dn` is out of range.
    pub fn used_on(&self, dn: DnId) -> Result<ByteSize, DfsError> {
        self.node(dn).map(|n| n.used)
    }

    fn node(&self, dn: DnId) -> Result<&DataNode, DfsError> {
        self.nodes
            .get(dn.0 as usize)
            .ok_or(DfsError::UnknownDataNode(dn))
    }

    /// The effective pipelined write bandwidth through `dn`: capped by both
    /// the local disk and (when replicating) the network.
    fn pipeline_write_bw(&self, writer: &DataNode) -> Bandwidth {
        let disk = writer.media.write_bw();
        if self.config.replication > 1 {
            disk.min(self.config.network_bw)
        } else {
            disk
        }
    }

    /// Creates `path` with `size` bytes written from datanode `writer`.
    ///
    /// Returns the pipelined write timing. Replicas: one on `writer`, the
    /// rest on distinct other nodes (fewer if the cluster is smaller than
    /// the replication factor, as in HDFS).
    ///
    /// # Errors
    ///
    /// * [`DfsError::FileExists`] if the path is taken.
    /// * [`DfsError::UnknownDataNode`] if `writer` is out of range.
    pub fn create(
        &mut self,
        path: &str,
        size: ByteSize,
        writer: DnId,
    ) -> Result<WriteReceipt, DfsError> {
        self.node(writer)?;
        if self.namespace.contains(path) {
            return Err(DfsError::FileExists(path.to_string()));
        }

        let mut blocks = Vec::new();
        let mut remaining = size;
        while !remaining.is_zero() {
            let bsize = remaining.min(self.config.block_size);
            remaining = remaining.saturating_sub(bsize);
            let replicas = self.place_replicas(writer);
            let id = self.namespace.new_block_id();
            for &dn in &replicas {
                self.nodes[dn.0 as usize].used += bsize;
            }
            blocks.push(BlockInfo {
                id,
                size: bsize,
                replicas,
            });
        }
        // Zero-byte files still occupy a namespace entry.
        let nblocks = blocks.len();
        let file = self.namespace.insert(path, size, blocks)?;

        let writer_node = &self.nodes[writer.0 as usize];
        let bw = self.pipeline_write_bw(writer_node);
        let duration = writer_node.media.setup()
            + bw.transfer_time(size)
            + self.config.per_block_overhead * nblocks as u64;
        Ok(WriteReceipt {
            file,
            duration,
            blocks: nblocks,
        })
    }

    fn place_replicas(&mut self, writer: DnId) -> Vec<DnId> {
        let mut replicas = vec![writer];
        let alive = self.nodes.iter().filter(|n| n.alive).count();
        let want = self.config.replication.min(alive.max(1));
        // Rejection-sample distinct live remote nodes; bounded because
        // want <= live node count.
        while replicas.len() < want {
            let cand = DnId(self.rng.index(self.nodes.len()) as u32);
            if !replicas.contains(&cand) && self.nodes[cand.0 as usize].alive {
                replicas.push(cand);
            }
        }
        replicas
    }

    /// Marks `dn` dead and re-replicates every block that lost a replica
    /// onto other live datanodes, as the HDFS NameNode does. Blocks whose
    /// only replica lived on `dn` are lost.
    ///
    /// # Errors
    ///
    /// [`DfsError::UnknownDataNode`] if `dn` is out of range.
    pub fn fail_datanode(&mut self, dn: DnId) -> Result<ReplicationRepair, DfsError> {
        self.node(dn)?;
        if !self.nodes[dn.0 as usize].alive {
            // Already dead (overlapping failure reports for the same
            // datanode): every replica it held was re-replicated or
            // declared lost by the first report. Re-scanning would not
            // find anything but would advance the repair RNG, making the
            // outcome depend on how many times the failure was reported.
            return Ok(ReplicationRepair {
                blocks_repaired: 0,
                bytes_copied: ByteSize::ZERO,
                blocks_lost: 0,
            });
        }
        self.nodes[dn.0 as usize].alive = false;
        self.nodes[dn.0 as usize].used = ByteSize::ZERO;

        let live: Vec<u32> = (0..self.nodes.len() as u32)
            .filter(|&i| self.nodes[i as usize].alive)
            .collect();
        let mut repair = ReplicationRepair {
            blocks_repaired: 0,
            bytes_copied: ByteSize::ZERO,
            blocks_lost: 0,
        };
        // Collect the replica moves first (namespace borrows), then apply
        // usage accounting.
        let mut additions: Vec<(DnId, ByteSize)> = Vec::new();
        let rng = &mut self.rng;
        for file in self.namespace.files_mut() {
            for block in &mut file.blocks {
                let before = block.replicas.len();
                block.replicas.retain(|&r| r != dn);
                if block.replicas.len() == before {
                    continue; // this block had no replica on dn
                }
                if block.replicas.is_empty() {
                    repair.blocks_lost += 1;
                    continue;
                }
                // Pick a live node not already holding the block.
                let candidates: Vec<u32> = live
                    .iter()
                    .copied()
                    .filter(|&i| !block.replicas.contains(&DnId(i)))
                    .collect();
                if !candidates.is_empty() {
                    let target = candidates[rng.index(candidates.len())];
                    block.replicas.push(DnId(target));
                    additions.push((DnId(target), block.size));
                    repair.blocks_repaired += 1;
                    repair.bytes_copied += block.size;
                }
            }
        }
        for (target, size) in additions {
            self.nodes[target.0 as usize].used += size;
        }
        Ok(repair)
    }

    /// Brings `dn` back into service, empty (its old data was already
    /// re-replicated or lost).
    ///
    /// # Errors
    ///
    /// [`DfsError::UnknownDataNode`] if `dn` is out of range.
    pub fn recover_datanode(&mut self, dn: DnId) -> Result<(), DfsError> {
        self.node(dn)?;
        self.nodes[dn.0 as usize].alive = true;
        debug_assert!(self.nodes[dn.0 as usize].used.is_zero());
        Ok(())
    }

    /// True if `dn` is in service.
    pub fn is_alive(&self, dn: DnId) -> bool {
        self.nodes.get(dn.0 as usize).is_some_and(|n| n.alive)
    }

    /// True if every block of `path` still has at least one replica.
    /// Files that lost blocks to datanode failures are unreadable until
    /// rewritten.
    ///
    /// # Errors
    ///
    /// [`DfsError::NotFound`] if the path is absent.
    pub fn is_readable(&self, path: &str) -> Result<bool, DfsError> {
        Ok(self
            .namespace
            .file(path)?
            .blocks
            .iter()
            .all(|b| !b.replicas.is_empty()))
    }

    /// The cost of reading `path` in full from datanode `reader`, splitting
    /// block bytes into local and remote and timing the transfer
    /// (remote bytes are capped by `min(network, source disk read)`).
    ///
    /// # Errors
    ///
    /// * [`DfsError::NotFound`] if the path is absent.
    /// * [`DfsError::UnknownDataNode`] if `reader` is out of range.
    pub fn read_cost(&self, path: &str, reader: DnId) -> Result<ReadCost, DfsError> {
        let reader_node = self.node(reader)?;
        let file = self.namespace.file(path)?;
        let mut local = ByteSize::ZERO;
        let mut remote = ByteSize::ZERO;
        let mut remote_bw = self.config.network_bw;
        for b in &file.blocks {
            if b.is_local_to(reader) {
                local += b.size;
            } else if b.replicas.is_empty() {
                // Block lost to datanode failures: nothing to read. Callers
                // should gate on [`DfsCluster::is_readable`]; costing the
                // remnant keeps this estimator total.
                continue;
            } else {
                remote += b.size;
                // The slowest source disk in the replica set bounds us; use
                // the first replica's media (homogeneous in practice).
                if let Ok(src) = self.node(b.replicas[0]) {
                    remote_bw = remote_bw.min(src.media.read_bw());
                }
            }
        }
        let duration = reader_node.media.setup()
            + reader_node.media.read_bw().transfer_time(local)
            + remote_bw.transfer_time(remote)
            + self.config.per_block_overhead * file.blocks.len() as u64;
        Ok(ReadCost {
            local_bytes: local,
            remote_bytes: remote,
            duration,
        })
    }

    /// Deletes `path`, releasing replica space on every datanode.
    ///
    /// # Errors
    ///
    /// [`DfsError::NotFound`] if the path is absent.
    pub fn delete(&mut self, path: &str) -> Result<ByteSize, DfsError> {
        let file = self.namespace.remove(path)?;
        for b in &file.blocks {
            for &dn in &b.replicas {
                let node = &mut self.nodes[dn.0 as usize];
                node.used = node.used.saturating_sub(b.size);
            }
        }
        Ok(file.size)
    }

    /// Total bytes stored across all datanodes (replication included).
    pub fn total_used(&self) -> ByteSize {
        self.nodes.iter().map(|n| n.used).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, replication: usize) -> DfsCluster {
        let config = DfsConfig {
            replication,
            ..DfsConfig::default()
        };
        DfsCluster::homogeneous(config, MediaSpec::ssd(), n, 42)
    }

    #[test]
    fn create_places_first_replica_on_writer() {
        let mut dfs = cluster(5, 3);
        dfs.create("/f", ByteSize::from_mb(300), DnId(2)).unwrap();
        let file = dfs.namespace().file("/f").unwrap();
        assert_eq!(file.blocks.len(), 3); // 128 + 128 + 44 MB
        for b in &file.blocks {
            assert_eq!(b.replicas[0], DnId(2));
            assert_eq!(b.replicas.len(), 3);
            let mut sorted = b.replicas.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn replication_capped_by_cluster_size() {
        let mut dfs = cluster(2, 3);
        dfs.create("/f", ByteSize::from_mb(10), DnId(0)).unwrap();
        let file = dfs.namespace().file("/f").unwrap();
        assert_eq!(file.blocks[0].replicas.len(), 2);
    }

    #[test]
    fn usage_accounting_with_replication() {
        let mut dfs = cluster(4, 2);
        dfs.create("/f", ByteSize::from_mb(100), DnId(0)).unwrap();
        assert_eq!(dfs.total_used(), ByteSize::from_mb(200));
        assert_eq!(dfs.used_on(DnId(0)).unwrap(), ByteSize::from_mb(100));
        dfs.delete("/f").unwrap();
        assert_eq!(dfs.total_used(), ByteSize::ZERO);
    }

    #[test]
    fn read_local_vs_remote_split() {
        let mut dfs = cluster(8, 1); // replication 1: only the writer holds data
        dfs.create("/f", ByteSize::from_mb(256), DnId(3)).unwrap();
        let local = dfs.read_cost("/f", DnId(3)).unwrap();
        assert_eq!(local.local_bytes, ByteSize::from_mb(256));
        assert_eq!(local.remote_bytes, ByteSize::ZERO);
        let remote = dfs.read_cost("/f", DnId(4)).unwrap();
        assert_eq!(remote.local_bytes, ByteSize::ZERO);
        assert_eq!(remote.remote_bytes, ByteSize::from_mb(256));
        assert!(remote.duration >= local.duration);
    }

    /// Fig. 2b property: on the same medium, dumping through HDFS is slower
    /// than the raw device write.
    #[test]
    fn hdfs_write_slower_than_local_fs() {
        for media in [MediaSpec::hdd(), MediaSpec::ssd(), MediaSpec::nvm()] {
            let config = DfsConfig::default();
            let mut dfs = DfsCluster::homogeneous(config, media, 4, 1);
            let size = ByteSize::from_gb(5);
            let r = dfs.create("/f", size, DnId(0)).unwrap();
            let local = media.write_time(size);
            assert!(
                r.duration > local,
                "{}: HDFS {:?} <= local {:?}",
                media.kind(),
                r.duration,
                local
            );
        }
    }

    /// And the media ordering is preserved through HDFS.
    #[test]
    fn hdfs_preserves_media_ordering() {
        let size = ByteSize::from_gb(5);
        let mut times = Vec::new();
        for media in [MediaSpec::hdd(), MediaSpec::ssd(), MediaSpec::nvm()] {
            let mut dfs = DfsCluster::homogeneous(DfsConfig::default(), media, 4, 1);
            times.push(dfs.create("/f", size, DnId(0)).unwrap().duration);
        }
        assert!(times[0] > times[1], "HDD slower than SSD");
        assert!(times[1] > times[2], "SSD slower than NVM");
    }

    #[test]
    fn errors() {
        let mut dfs = cluster(2, 1);
        dfs.create("/f", ByteSize::from_mb(1), DnId(0)).unwrap();
        assert!(matches!(
            dfs.create("/f", ByteSize::from_mb(1), DnId(0)),
            Err(DfsError::FileExists(_))
        ));
        assert!(matches!(
            dfs.create("/g", ByteSize::from_mb(1), DnId(9)),
            Err(DfsError::UnknownDataNode(_))
        ));
        assert!(matches!(
            dfs.read_cost("/nope", DnId(0)),
            Err(DfsError::NotFound(_))
        ));
        assert!(matches!(dfs.delete("/nope"), Err(DfsError::NotFound(_))));
        // Display formatting is meaningful.
        let msg = DfsError::NoSpace { requested: 10 }.to_string();
        assert!(msg.contains("insufficient"), "{msg}");
    }

    #[test]
    fn empty_file_allowed() {
        let mut dfs = cluster(2, 2);
        let r = dfs.create("/empty", ByteSize::ZERO, DnId(0)).unwrap();
        assert_eq!(r.blocks, 0);
        let cost = dfs.read_cost("/empty", DnId(1)).unwrap();
        assert_eq!(cost.local_bytes + cost.remote_bytes, ByteSize::ZERO);
    }

    #[test]
    fn datanode_failure_rereplicates() {
        let mut dfs = cluster(4, 2);
        dfs.create("/f", ByteSize::from_mb(256), DnId(0)).unwrap();
        let before = dfs.total_used();
        let repair = dfs.fail_datanode(DnId(0)).unwrap();
        assert!(!dfs.is_alive(DnId(0)));
        // Every block had a replica on node 0 (the writer): all repaired.
        assert_eq!(repair.blocks_repaired, 2);
        assert_eq!(repair.blocks_lost, 0);
        assert_eq!(repair.bytes_copied, ByteSize::from_mb(256));
        // Replication factor restored: total bytes unchanged.
        assert_eq!(dfs.total_used(), before);
        assert_eq!(dfs.used_on(DnId(0)).unwrap(), ByteSize::ZERO);
        // Every block readable from a live node, with no dead replicas.
        let file = dfs.namespace().file("/f").unwrap();
        for b in &file.blocks {
            assert_eq!(b.replicas.len(), 2);
            for &r in &b.replicas {
                assert!(dfs.is_alive(r), "dead replica {r:?} survives in map");
            }
        }
        // Recovery brings the node back empty; new writes may use it.
        dfs.recover_datanode(DnId(0)).unwrap();
        assert!(dfs.is_alive(DnId(0)));
        dfs.create("/g", ByteSize::from_mb(10), DnId(0)).unwrap();
    }

    #[test]
    fn unreplicated_block_is_lost_on_failure() {
        let mut dfs = cluster(3, 1);
        dfs.create("/f", ByteSize::from_mb(100), DnId(1)).unwrap();
        let repair = dfs.fail_datanode(DnId(1)).unwrap();
        assert_eq!(repair.blocks_repaired, 0);
        assert_eq!(repair.blocks_lost, 1);
        let file = dfs.namespace().file("/f").unwrap();
        assert!(file.blocks[0].replicas.is_empty());
    }

    /// Regression: overlapping failure reports for the same block chain
    /// must not double-count repairs, perturb the repair RNG, or leave a
    /// block unreplicated while a healthy node could hold it.
    #[test]
    fn overlapping_failures_never_double_repair() {
        let mut dfs = cluster(4, 2);
        dfs.create("/f", ByteSize::from_mb(256), DnId(0)).unwrap();
        let first = dfs.fail_datanode(DnId(0)).unwrap();
        assert_eq!(first.blocks_repaired, 2);
        // A duplicate report for the dead node is a no-op.
        let dup = dfs.fail_datanode(DnId(0)).unwrap();
        assert_eq!(dup.blocks_repaired, 0);
        assert_eq!(dup.blocks_lost, 0);
        assert_eq!(dup.bytes_copied, ByteSize::ZERO);
        // A second, overlapping failure hits the same chain: with two
        // healthy nodes left, every block must still end up replicated.
        let second = dfs.fail_datanode(DnId(1)).unwrap();
        assert_eq!(second.blocks_lost, 0);
        assert!(dfs.is_readable("/f").unwrap());
        let file = dfs.namespace().file("/f").unwrap();
        for b in &file.blocks {
            assert!(
                !b.replicas.is_empty(),
                "block lost replicas while healthy nodes exist"
            );
            for &r in &b.replicas {
                assert!(dfs.is_alive(r), "dead replica {r:?} survives in map");
            }
        }
        // Total repair work across the two reports covers each block at
        // most once per failure, never twice for the duplicate.
        assert_eq!(first.blocks_repaired + dup.blocks_repaired, 2);
    }

    /// The duplicate report must also leave the repair RNG untouched so
    /// later placements do not depend on how often a failure was seen.
    #[test]
    fn duplicate_failure_report_is_rng_neutral() {
        let mut a = cluster(6, 2);
        let mut b = cluster(6, 2);
        a.create("/f", ByteSize::from_mb(128), DnId(0)).unwrap();
        b.create("/f", ByteSize::from_mb(128), DnId(0)).unwrap();
        a.fail_datanode(DnId(0)).unwrap();
        b.fail_datanode(DnId(0)).unwrap();
        // Only `b` sees the duplicate report.
        b.fail_datanode(DnId(0)).unwrap();
        a.create("/g", ByteSize::from_mb(128), DnId(1)).unwrap();
        b.create("/g", ByteSize::from_mb(128), DnId(1)).unwrap();
        assert_eq!(
            a.namespace().file("/g").unwrap().blocks,
            b.namespace().file("/g").unwrap().blocks
        );
    }

    #[test]
    fn placement_avoids_dead_nodes() {
        let mut dfs = cluster(3, 3);
        dfs.fail_datanode(DnId(2)).unwrap();
        dfs.create("/f", ByteSize::from_mb(10), DnId(0)).unwrap();
        let file = dfs.namespace().file("/f").unwrap();
        // Only 2 live nodes: replication clamps to 2, none on the dead node.
        assert_eq!(file.blocks[0].replicas.len(), 2);
        assert!(!file.blocks[0].replicas.contains(&DnId(2)));
    }

    #[test]
    fn deterministic_placement_with_same_seed() {
        let mut a = cluster(10, 3);
        let mut b = cluster(10, 3);
        for i in 0..20 {
            let path = format!("/f{i}");
            a.create(&path, ByteSize::from_mb(64), DnId(0)).unwrap();
            b.create(&path, ByteSize::from_mb(64), DnId(0)).unwrap();
        }
        for i in 0..20 {
            let path = format!("/f{i}");
            assert_eq!(
                a.namespace().file(&path).unwrap().blocks,
                b.namespace().file(&path).unwrap().blocks
            );
        }
    }
}
