//! The NameNode's view: files, blocks and replica locations.

use std::collections::BTreeMap;

use cbp_simkit::units::ByteSize;
use serde::{Deserialize, Serialize};

use crate::cluster::DnId;
use crate::DfsError;

/// Identifier of a file in the namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// Identifier of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u64);

/// One replicated block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInfo {
    /// Block identity.
    pub id: BlockId,
    /// Bytes in this block (the final block of a file may be short).
    pub size: ByteSize,
    /// Datanodes holding a replica, pipeline order (first is the writer).
    pub replicas: Vec<DnId>,
}

impl BlockInfo {
    /// True if `dn` holds a replica.
    pub fn is_local_to(&self, dn: DnId) -> bool {
        self.replicas.contains(&dn)
    }
}

/// A file: an ordered list of blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileInfo {
    /// File identity.
    pub id: FileId,
    /// Path in the namespace.
    pub path: String,
    /// Logical size.
    pub size: ByteSize,
    /// Blocks, in file order.
    pub blocks: Vec<BlockInfo>,
}

/// The flat path → file catalog (HDFS directories add nothing the model
/// needs; paths are plain keys). Ordered so that NameNode maintenance
/// sweeps (re-replication after datanode failures) visit files — and
/// consume placement randomness — in a deterministic order.
#[derive(Debug, Default, Clone)]
pub struct Namespace {
    files: BTreeMap<String, FileInfo>,
    next_file: u64,
    next_block: u64,
}

impl Namespace {
    /// An empty namespace.
    pub fn new() -> Self {
        Namespace::default()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Looks up a file.
    ///
    /// # Errors
    ///
    /// [`DfsError::NotFound`] if the path is absent.
    pub fn file(&self, path: &str) -> Result<&FileInfo, DfsError> {
        self.files
            .get(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// True if `path` exists.
    pub fn contains(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Registers a new file from already-placed blocks.
    ///
    /// # Errors
    ///
    /// [`DfsError::FileExists`] if the path is taken (the caller must roll
    /// back its placements).
    pub fn insert(
        &mut self,
        path: &str,
        size: ByteSize,
        blocks: Vec<BlockInfo>,
    ) -> Result<FileId, DfsError> {
        if self.files.contains_key(path) {
            return Err(DfsError::FileExists(path.to_string()));
        }
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(
            path.to_string(),
            FileInfo {
                id,
                path: path.to_string(),
                size,
                blocks,
            },
        );
        Ok(id)
    }

    /// Removes a file, returning it for replica cleanup.
    ///
    /// # Errors
    ///
    /// [`DfsError::NotFound`] if the path is absent.
    pub fn remove(&mut self, path: &str) -> Result<FileInfo, DfsError> {
        self.files
            .remove(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// Allocates a fresh block id.
    pub fn new_block_id(&mut self) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        id
    }

    /// Iterates over all files.
    pub fn iter(&self) -> impl Iterator<Item = &FileInfo> {
        self.files.values()
    }

    /// Mutable iteration for NameNode maintenance (re-replication after a
    /// datanode failure).
    pub(crate) fn files_mut(&mut self) -> impl Iterator<Item = &mut FileInfo> {
        self.files.values_mut()
    }

    /// Total logical bytes stored (not counting replication).
    pub fn total_logical_bytes(&self) -> ByteSize {
        self.files.values().map(|f| f.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ns: &mut Namespace, mb: u64, replicas: Vec<u32>) -> BlockInfo {
        BlockInfo {
            id: ns.new_block_id(),
            size: ByteSize::from_mb(mb),
            replicas: replicas.into_iter().map(DnId).collect(),
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut ns = Namespace::new();
        let b = block(&mut ns, 64, vec![0, 1]);
        ns.insert("/a", ByteSize::from_mb(64), vec![b]).unwrap();
        assert!(ns.contains("/a"));
        assert_eq!(ns.file_count(), 1);
        let f = ns.file("/a").unwrap();
        assert_eq!(f.size, ByteSize::from_mb(64));
        assert!(f.blocks[0].is_local_to(DnId(1)));
        assert!(!f.blocks[0].is_local_to(DnId(2)));
        let removed = ns.remove("/a").unwrap();
        assert_eq!(removed.blocks.len(), 1);
        assert!(!ns.contains("/a"));
    }

    #[test]
    fn duplicate_path_rejected() {
        let mut ns = Namespace::new();
        ns.insert("/a", ByteSize::ZERO, vec![]).unwrap();
        let err = ns.insert("/a", ByteSize::ZERO, vec![]).unwrap_err();
        assert_eq!(err, DfsError::FileExists("/a".into()));
    }

    #[test]
    fn missing_path_errors() {
        let mut ns = Namespace::new();
        assert!(matches!(ns.file("/x"), Err(DfsError::NotFound(_))));
        assert!(matches!(ns.remove("/x"), Err(DfsError::NotFound(_))));
    }

    #[test]
    fn block_ids_unique() {
        let mut ns = Namespace::new();
        let a = ns.new_block_id();
        let b = ns.new_block_id();
        assert_ne!(a, b);
    }

    #[test]
    fn totals() {
        let mut ns = Namespace::new();
        ns.insert("/a", ByteSize::from_mb(10), vec![]).unwrap();
        ns.insert("/b", ByteSize::from_mb(20), vec![]).unwrap();
        assert_eq!(ns.total_logical_bytes(), ByteSize::from_mb(30));
        assert_eq!(ns.iter().count(), 2);
    }
}
