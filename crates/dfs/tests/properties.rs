//! Property-based tests for the DFS: accounting conservation under random
//! create/read/delete sequences.

use cbp_dfs::{DfsCluster, DfsConfig, DnId};
use cbp_simkit::units::ByteSize;
use cbp_storage::MediaSpec;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create { id: u16, mb: u32, writer: u8 },
    Read { id: u16, reader: u8 },
    Delete { id: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..40, 1u32..2_000, 0u8..8).prop_map(|(id, mb, writer)| Op::Create { id, mb, writer }),
        (0u16..40, 0u8..8).prop_map(|(id, reader)| Op::Read { id, reader }),
        (0u16..40).prop_map(|id| Op::Delete { id }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Total replica bytes always equal the sum over live files of
    /// size × replica-count, and every read splits exactly into
    /// local + remote bytes.
    #[test]
    fn accounting_conserved(
        ops in proptest::collection::vec(arb_op(), 1..60),
        replication in 1usize..4,
        seed in 0u64..1000,
    ) {
        let config = DfsConfig { replication, ..DfsConfig::default() };
        let mut dfs = DfsCluster::homogeneous(config, MediaSpec::ssd(), 8, seed);
        let mut live: std::collections::HashMap<u16, u64> = Default::default();

        for op in ops {
            match op {
                Op::Create { id, mb, writer } => {
                    let path = format!("/f{id}");
                    let size = ByteSize::from_mb(mb as u64);
                    match dfs.create(&path, size, DnId(writer as u32)) {
                        Ok(receipt) => {
                            prop_assert!(!live.contains_key(&id), "create must fail on dup");
                            prop_assert!(receipt.duration.as_secs_f64() > 0.0);
                            live.insert(id, size.as_u64());
                        }
                        Err(_) => prop_assert!(live.contains_key(&id)),
                    }
                }
                Op::Read { id, reader } => {
                    let path = format!("/f{id}");
                    match dfs.read_cost(&path, DnId(reader as u32)) {
                        Ok(cost) => {
                            prop_assert!(live.contains_key(&id));
                            prop_assert_eq!(
                                (cost.local_bytes + cost.remote_bytes).as_u64(),
                                live[&id]
                            );
                        }
                        Err(_) => prop_assert!(!live.contains_key(&id)),
                    }
                }
                Op::Delete { id } => {
                    let path = format!("/f{id}");
                    match dfs.delete(&path) {
                        Ok(size) => {
                            prop_assert_eq!(size.as_u64(), live.remove(&id).unwrap_or(u64::MAX));
                        }
                        Err(_) => prop_assert!(!live.contains_key(&id)),
                    }
                }
            }
            // Invariant: total replica bytes == sum(live sizes) * replication
            // (replication capped by cluster size 8, which it never is here).
            let expected: u64 = live.values().sum::<u64>() * replication as u64;
            prop_assert_eq!(dfs.total_used().as_u64(), expected);
            prop_assert_eq!(dfs.namespace().file_count(), live.len());
        }
    }

    /// A writer always reads its own file fully locally.
    #[test]
    fn writer_reads_locally(mb in 1u64..4_000, writer in 0u32..6, seed in 0u64..100) {
        let mut dfs = DfsCluster::homogeneous(DfsConfig::default(), MediaSpec::nvm(), 6, seed);
        dfs.create("/self", ByteSize::from_mb(mb), DnId(writer)).unwrap();
        let cost = dfs.read_cost("/self", DnId(writer)).unwrap();
        prop_assert_eq!(cost.remote_bytes, ByteSize::ZERO);
        prop_assert_eq!(cost.local_bytes, ByteSize::from_mb(mb));
    }
}
