//! The immutable profiling report: a deterministic tree plus optional raw
//! spans, rendered as text, byte-stable JSON, or a Chrome trace.

use cbp_telemetry::json;
use std::fmt::Write as _;

/// Schema tag stamped into every report JSON document.
pub const PROF_SCHEMA: &str = "cbp-prof";
/// Schema version stamped into every report JSON document.
pub const PROF_VERSION: u32 = 1;

/// One node in the report tree: a distinct *path* of scope names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfNode {
    /// Scope name (the last component of the path).
    pub name: String,
    /// Times this exact path was entered and exited.
    pub calls: u64,
    /// Wall time spent inside this path, children included.
    pub total_ns: u64,
    /// Wall time spent inside this path, children excluded
    /// (`total_ns − Σ children.total_ns`, saturating).
    pub self_ns: u64,
    /// Allocations attributed to this path, children included (always 0
    /// without the `count-alloc` feature).
    pub allocs: u64,
    /// Allocations excluding children (saturating).
    pub self_allocs: u64,
    /// Child paths, sorted by name.
    pub children: Vec<ProfNode>,
}

/// One raw closed scope, captured when `ProfOptions::capture_spans` is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Scope name.
    pub name: &'static str,
    /// Open time in nanoseconds since the profiler started.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at open time (0 = root scope).
    pub depth: u32,
}

/// A flattened scope path, ranked by [`ProfReport::top_self`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatScope {
    /// Slash-joined path of scope names from the root (`run/event/io`).
    pub path: String,
    /// Times the path was entered.
    pub calls: u64,
    /// Wall time excluding children.
    pub self_ns: u64,
    /// Wall time including children.
    pub total_ns: u64,
}

/// What [`crate::stop`] returns: everything the profiler measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfReport {
    /// Top-level scope paths, sorted by name.
    pub roots: Vec<ProfNode>,
    /// Raw spans in `(start_ns, depth)` order; empty unless span capture
    /// was requested.
    pub spans: Vec<SpanEvent>,
    /// Spans discarded after the capture buffer filled.
    pub spans_dropped: u64,
}

impl ProfReport {
    /// Serializes the tree as compact, byte-stable JSON. Field order is
    /// fixed (`schema`, `version`, `spans_dropped`, `roots`; within a node
    /// `name`, `calls`, `total_ns`, `self_ns`, `allocs`, `self_allocs`,
    /// `children`) so identical measurements yield identical bytes.
    pub fn to_json(&self) -> String {
        fn push_node(out: &mut String, n: &ProfNode) {
            out.push('{');
            json::push_key(out, "name");
            json::push_str_escaped(out, &n.name);
            out.push(',');
            json::push_key(out, "calls");
            json::push_u64(out, n.calls);
            out.push(',');
            json::push_key(out, "total_ns");
            json::push_u64(out, n.total_ns);
            out.push(',');
            json::push_key(out, "self_ns");
            json::push_u64(out, n.self_ns);
            out.push(',');
            json::push_key(out, "allocs");
            json::push_u64(out, n.allocs);
            out.push(',');
            json::push_key(out, "self_allocs");
            json::push_u64(out, n.self_allocs);
            out.push(',');
            json::push_key(out, "children");
            out.push('[');
            for (i, c) in n.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_node(out, c);
            }
            out.push_str("]}");
        }

        let mut out = String::new();
        out.push('{');
        json::push_key(&mut out, "schema");
        json::push_str_escaped(&mut out, PROF_SCHEMA);
        out.push(',');
        json::push_key(&mut out, "version");
        json::push_u64(&mut out, PROF_VERSION as u64);
        out.push(',');
        json::push_key(&mut out, "spans_dropped");
        json::push_u64(&mut out, self.spans_dropped);
        out.push(',');
        json::push_key(&mut out, "roots");
        out.push('[');
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_node(&mut out, r);
        }
        out.push_str("]}");
        out
    }

    /// Renders the tree as an indented plain-text table (one line per
    /// path; durations in milliseconds).
    pub fn render(&self) -> String {
        fn line(out: &mut String, n: &ProfNode, depth: usize) {
            let _ = writeln!(
                out,
                "{:indent$}{:<32} calls {:>8}  total {:>10.3} ms  self {:>10.3} ms",
                "",
                n.name,
                n.calls,
                n.total_ns as f64 / 1e6,
                n.self_ns as f64 / 1e6,
                indent = depth * 2,
            );
            for c in &n.children {
                line(out, c, depth + 1);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            line(&mut out, r, 0);
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(
                out,
                "({} spans dropped past capture cap)",
                self.spans_dropped
            );
        }
        out
    }

    /// The `k` hottest paths by self time, descending (path as tie-break,
    /// so the ranking is deterministic).
    pub fn top_self(&self, k: usize) -> Vec<FlatScope> {
        fn walk(nodes: &[ProfNode], prefix: &str, out: &mut Vec<FlatScope>) {
            for n in nodes {
                let path = if prefix.is_empty() {
                    n.name.clone()
                } else {
                    format!("{prefix}/{}", n.name)
                };
                out.push(FlatScope {
                    path: path.clone(),
                    calls: n.calls,
                    self_ns: n.self_ns,
                    total_ns: n.total_ns,
                });
                walk(&n.children, &path, out);
            }
        }
        let mut flat = Vec::new();
        walk(&self.roots, "", &mut flat);
        flat.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
        flat.truncate(k);
        flat
    }

    /// Serializes captured spans as a Chrome trace (`traceEvents` with
    /// complete `"ph":"X"` events, microsecond timestamps) loadable in
    /// Perfetto / `chrome://tracing`. Complements the *sim-time* trace from
    /// `cbp-telemetry`: this one is wall-clock, showing where the engine
    /// itself spends host time.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::new();
        out.push('{');
        json::push_key(&mut out, "displayTimeUnit");
        json::push_str_escaped(&mut out, "ms");
        out.push(',');
        json::push_key(&mut out, "traceEvents");
        out.push('[');
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json::push_key(&mut out, "name");
            json::push_str_escaped(&mut out, s.name);
            out.push(',');
            json::push_key(&mut out, "ph");
            json::push_str_escaped(&mut out, "X");
            out.push(',');
            json::push_key(&mut out, "ts");
            json::push_f64(&mut out, s.start_ns as f64 / 1e3);
            out.push(',');
            json::push_key(&mut out, "dur");
            json::push_f64(&mut out, s.dur_ns as f64 / 1e3);
            out.push(',');
            json::push_key(&mut out, "pid");
            json::push_u64(&mut out, 0);
            out.push(',');
            json::push_key(&mut out, "tid");
            json::push_u64(&mut out, s.depth as u64);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Serializes the scope tree as inferno-compatible folded-stack text:
    /// one `frame;frame;frame weight` line per path, weighted by *self*
    /// nanoseconds (flamegraph renderers reconstruct inclusive time by
    /// summing descendants). Paths with zero self time are skipped —
    /// they would render as invisible zero-width frames. Lines are
    /// emitted in depth-first tree order, which is already sorted by
    /// name at every level, so the output is byte-stable for a given
    /// tree shape.
    pub fn to_folded(&self) -> String {
        fn walk(nodes: &[ProfNode], prefix: &str, out: &mut String) {
            use std::fmt::Write as _;
            for n in nodes {
                let path = if prefix.is_empty() {
                    n.name.clone()
                } else {
                    format!("{prefix};{}", n.name)
                };
                if n.self_ns > 0 {
                    let _ = writeln!(out, "{path} {}", n.self_ns);
                }
                walk(&n.children, &path, out);
            }
        }
        let mut out = String::new();
        walk(&self.roots, "", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str, calls: u64, total: u64) -> ProfNode {
        ProfNode {
            name: name.to_string(),
            calls,
            total_ns: total,
            self_ns: total,
            allocs: 0,
            self_allocs: 0,
            children: Vec::new(),
        }
    }

    fn sample() -> ProfReport {
        let mut run = leaf("run", 1, 10_000);
        run.children = vec![leaf("event", 7, 6_000), leaf("io", 2, 1_000)];
        run.self_ns = 3_000;
        ProfReport {
            roots: vec![run],
            spans: vec![SpanEvent {
                name: "run",
                start_ns: 0,
                dur_ns: 10_000,
                depth: 0,
            }],
            spans_dropped: 0,
        }
    }

    #[test]
    fn json_shape_and_stability() {
        let r = sample();
        let j = r.to_json();
        assert!(cbp_telemetry::json::is_valid(&j));
        assert!(j.starts_with("{\"schema\":\"cbp-prof\",\"version\":1,"));
        assert_eq!(j, r.to_json());
    }

    #[test]
    fn top_self_ranks_and_tiebreaks() {
        let top = sample().top_self(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].path, "run/event");
        assert_eq!(top[0].self_ns, 6_000);
        assert_eq!(top[1].path, "run");
    }

    #[test]
    fn render_mentions_every_path() {
        let text = sample().render();
        for name in ["run", "event", "io"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn folded_stacks_weight_by_self_time() {
        let mut r = sample();
        assert_eq!(r.to_folded(), "run 3000\nrun;event 6000\nrun;io 1000\n");
        // Zero-self frames disappear but their children keep full paths.
        r.roots[0].self_ns = 0;
        assert_eq!(r.to_folded(), "run;event 6000\nrun;io 1000\n");
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let t = sample().to_chrome_trace();
        assert!(cbp_telemetry::json::is_valid(&t));
        assert!(t.contains("\"ph\":\"X\""));
        assert!(t.contains("\"name\":\"run\""));
    }
}
