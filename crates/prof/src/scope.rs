//! The thread-local scope profiler: RAII guards over a span stack.

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;
use std::time::Instant;

use crate::report::{ProfNode, ProfReport, SpanEvent};

/// Maximum number of raw span events captured for the Chrome-trace sink.
/// Beyond the cap spans are counted (`ProfReport::spans_dropped`) but not
/// stored, bounding profiler memory on long runs.
pub const SPAN_CAP: usize = 1 << 20;

/// Configuration for [`start`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfOptions {
    /// Clock override returning monotonic nanoseconds. `None` uses the
    /// process-monotonic default; tests inject a deterministic counter so
    /// report JSON is byte-stable.
    pub clock: Option<fn() -> u64>,
    /// Capture raw span events (start, duration, depth) for
    /// [`ProfReport::to_chrome_trace`]. Costs one `Vec` push per scope
    /// exit, capped at [`SPAN_CAP`].
    pub capture_spans: bool,
}

/// One tree node while profiling is live (indices into `State::nodes`).
struct NodeData {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
    allocs: u64,
}

/// One live stack frame (an open scope).
struct Frame {
    node: usize,
    start_ns: u64,
    start_allocs: u64,
}

struct State {
    clock: fn() -> u64,
    /// `nodes[0]` is the virtual root (empty name, never reported itself).
    nodes: Vec<NodeData>,
    stack: Vec<Frame>,
    spans: Option<Vec<SpanEvent>>,
    spans_dropped: u64,
    t0: u64,
}

thread_local! {
    /// Mirrors `STATE.is_some()`: the one-branch fast path for [`scope`].
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<Option<State>> = const { RefCell::new(None) };
}

/// Monotonic nanoseconds since the first call in this process.
fn mono_ns() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(feature = "count-alloc")]
fn alloc_count() -> u64 {
    crate::alloc::allocations()
}

#[cfg(not(feature = "count-alloc"))]
fn alloc_count() -> u64 {
    0
}

/// True if the current thread is profiling. The engine hoists this out of
/// its event loop; instrumented leaf code just calls [`scope`], which
/// performs the same check internally.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Starts (or restarts, discarding any live state) profiling on this
/// thread.
pub fn start(opts: ProfOptions) {
    let clock = opts.clock.unwrap_or(mono_ns);
    let t0 = clock();
    STATE.with(|s| {
        *s.borrow_mut() = Some(State {
            clock,
            nodes: vec![NodeData {
                name: "",
                children: Vec::new(),
                calls: 0,
                total_ns: 0,
                allocs: 0,
            }],
            stack: Vec::new(),
            spans: opts.capture_spans.then(Vec::new),
            spans_dropped: 0,
            t0,
        });
    });
    ENABLED.with(|e| e.set(true));
}

/// Stops profiling on this thread and returns the report (`None` if the
/// profiler was not running). Scopes still open when `stop` is called are
/// ignored: their time was never accumulated, so drop every guard before
/// stopping.
pub fn stop() -> Option<ProfReport> {
    ENABLED.with(|e| e.set(false));
    let state = STATE.with(|s| s.borrow_mut().take())?;
    Some(build_report(state))
}

/// Opens a profiling scope. The returned RAII guard closes it on drop,
/// attributing the elapsed wall time (and allocation delta, with the
/// `count-alloc` feature) to the tree node addressed by the current stack
/// of scope names. When profiling is off this is a single branch and the
/// guard is inert.
#[inline]
pub fn scope(name: &'static str) -> ScopeGuard {
    if !enabled() {
        return ScopeGuard { active: false };
    }
    enter(name);
    ScopeGuard { active: true }
}

fn enter(name: &'static str) {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let st = match st.as_mut() {
            Some(st) => st,
            None => return,
        };
        let parent = st.stack.last().map_or(0, |f| f.node);
        // Linear scan: real trees have a handful of children per node, and
        // `&'static str` pointer equality short-circuits most probes.
        let node = st.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| std::ptr::eq(st.nodes[c].name, name) || st.nodes[c].name == name);
        let node = match node {
            Some(n) => n,
            None => {
                let n = st.nodes.len();
                st.nodes.push(NodeData {
                    name,
                    children: Vec::new(),
                    calls: 0,
                    total_ns: 0,
                    allocs: 0,
                });
                st.nodes[parent].children.push(n);
                n
            }
        };
        let start_ns = (st.clock)();
        st.stack.push(Frame {
            node,
            start_ns,
            start_allocs: alloc_count(),
        });
    });
}

fn exit() {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let st = match st.as_mut() {
            Some(st) => st,
            None => return, // stopped while the guard was live
        };
        let frame = match st.stack.pop() {
            Some(f) => f,
            None => return,
        };
        let end_ns = (st.clock)();
        let dur = end_ns.saturating_sub(frame.start_ns);
        let depth = st.stack.len() as u32;
        let node = &mut st.nodes[frame.node];
        node.calls += 1;
        node.total_ns += dur;
        node.allocs += alloc_count().saturating_sub(frame.start_allocs);
        let name = node.name;
        let t0 = st.t0;
        if let Some(spans) = st.spans.as_mut() {
            if spans.len() < SPAN_CAP {
                spans.push(SpanEvent {
                    name,
                    start_ns: frame.start_ns.saturating_sub(t0),
                    dur_ns: dur,
                    depth,
                });
            } else {
                st.spans_dropped += 1;
            }
        }
    });
}

/// RAII handle returned by [`scope`]; closes the scope on drop.
#[must_use = "dropping the guard immediately closes the scope"]
pub struct ScopeGuard {
    active: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.active {
            exit();
        }
    }
}

/// Converts live state into the immutable, deterministically-ordered
/// report tree (children sorted by name; self = total − Σ children).
fn build_report(state: State) -> ProfReport {
    fn convert(nodes: &[NodeData], idx: usize) -> ProfNode {
        let n = &nodes[idx];
        let mut children: Vec<ProfNode> = n.children.iter().map(|&c| convert(nodes, c)).collect();
        children.sort_by(|a, b| a.name.cmp(&b.name));
        let child_total: u64 = children.iter().map(|c| c.total_ns).sum();
        let child_allocs: u64 = children.iter().map(|c| c.allocs).sum();
        ProfNode {
            name: n.name.to_string(),
            calls: n.calls,
            total_ns: n.total_ns,
            self_ns: n.total_ns.saturating_sub(child_total),
            allocs: n.allocs,
            self_allocs: n.allocs.saturating_sub(child_allocs),
            children,
        }
    }
    let root = convert(&state.nodes, 0);
    let mut spans = state.spans.unwrap_or_default();
    // Sort by start time (then deeper-first so Perfetto sees parents
    // opened before children at identical timestamps).
    spans.sort_by_key(|a| (a.start_ns, a.depth));
    ProfReport {
        roots: root.children,
        spans,
        spans_dropped: state.spans_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Deterministic clock: each read advances 1000 ns.
    static TICKS: AtomicU64 = AtomicU64::new(0);
    fn tick() -> u64 {
        TICKS.fetch_add(1, Ordering::Relaxed) * 1000
    }

    fn fresh() -> ProfOptions {
        TICKS.store(0, Ordering::Relaxed);
        ProfOptions {
            clock: Some(tick),
            capture_spans: true,
        }
    }

    #[test]
    fn disabled_scope_is_inert() {
        assert!(!enabled());
        let g = scope("anything");
        drop(g);
        assert!(stop().is_none());
    }

    #[test]
    fn nesting_builds_paths() {
        start(fresh());
        {
            let _a = scope("a");
            {
                let _b = scope("b");
            }
            {
                let _b = scope("b");
            }
            let _c = scope("c");
        }
        let report = stop().unwrap();
        assert_eq!(report.roots.len(), 1);
        let a = &report.roots[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.calls, 1);
        let names: Vec<&str> = a.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["b", "c"], "children sorted by name");
        assert_eq!(a.children[0].calls, 2, "same path accumulates");
    }

    #[test]
    fn reentrancy_nests_instead_of_merging() {
        fn recurse(depth: u32) {
            let _g = scope("rec");
            if depth > 0 {
                recurse(depth - 1);
            }
        }
        start(fresh());
        recurse(2);
        let report = stop().unwrap();
        // rec → rec → rec: three distinct path nodes, one call each.
        let mut node = &report.roots[0];
        for _ in 0..2 {
            assert_eq!(node.name, "rec");
            assert_eq!(node.calls, 1);
            node = &node.children[0];
        }
        assert_eq!(node.calls, 1);
        assert!(node.children.is_empty());
    }

    #[test]
    fn self_plus_children_equals_total_exactly() {
        start(fresh());
        {
            let _a = scope("a");
            {
                let _b = scope("b");
                let _c = scope("c");
            }
            {
                let _d = scope("d");
            }
        }
        let report = stop().unwrap();
        fn check(n: &ProfNode) {
            let child_total: u64 = n.children.iter().map(|c| c.total_ns).sum();
            assert_eq!(
                n.self_ns + child_total,
                n.total_ns,
                "self + Σchildren must tile total for {}",
                n.name
            );
            n.children.iter().for_each(check);
        }
        report.roots.iter().for_each(check);
        // With the ticking clock, every quantity is exact and non-zero.
        assert!(report.roots[0].total_ns > 0);
        assert!(report.roots[0].self_ns > 0);
    }

    #[test]
    fn report_json_is_byte_stable() {
        let run = || {
            start(fresh());
            {
                let _a = scope("a");
                let _b = scope("b");
            }
            stop().unwrap().to_json()
        };
        let (x, y) = (run(), run());
        assert_eq!(x, y, "same scopes + deterministic clock → same bytes");
        assert!(cbp_telemetry::json::is_valid(&x));
        assert!(x.starts_with("{\"schema\":\"cbp-prof\",\"version\":1,"));
    }

    #[test]
    fn spans_capture_and_chrome_trace() {
        start(fresh());
        {
            let _a = scope("a");
            let _b = scope("b");
        }
        let report = stop().unwrap();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans_dropped, 0);
        // Parent "a" sorts before child "b": same logical open order.
        assert_eq!(report.spans[0].name, "a");
        assert_eq!(report.spans[0].depth, 0);
        assert_eq!(report.spans[1].name, "b");
        assert_eq!(report.spans[1].depth, 1);
        let chrome = report.to_chrome_trace();
        assert!(cbp_telemetry::json::is_valid(&chrome));
        assert!(chrome.contains("\"ph\":\"X\""));
    }

    #[test]
    fn restart_discards_previous_state() {
        start(fresh());
        {
            let _a = scope("first");
        }
        start(fresh());
        {
            let _b = scope("second");
        }
        let report = stop().unwrap();
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.roots[0].name, "second");
        assert!(stop().is_none(), "stop is one-shot");
    }
}
