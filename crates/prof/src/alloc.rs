//! A counting global allocator (feature `count-alloc`).
//!
//! Wraps the system allocator with three relaxed atomic counters:
//! cumulative allocation count, live bytes, and the high-water mark of
//! live bytes. The scope profiler reads [`allocations`] on scope
//! entry/exit to attribute allocation counts to paths; the benchmark
//! harness reads [`peak_bytes`] as an RSS proxy.
//!
//! The allocator must be installed by the *binary* crate:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cbp_prof::alloc::CountingAllocator = cbp_prof::alloc::CountingAllocator;
//! ```
//!
//! Without the feature this module is empty and the profiler records 0
//! allocations everywhere.

#[cfg(feature = "count-alloc")]
pub use imp::*;

#[cfg(feature = "count-alloc")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
    static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

    /// Cumulative number of allocations since process start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Bytes currently allocated and not yet freed.
    pub fn live_bytes() -> u64 {
        LIVE_BYTES.load(Ordering::Relaxed)
    }

    /// High-water mark of [`live_bytes`] since the last [`reset_peak`].
    pub fn peak_bytes() -> u64 {
        PEAK_BYTES.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live size (call between benchmark
    /// phases to measure each phase's own high-water mark).
    pub fn reset_peak() {
        PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn on_alloc(size: usize) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        // Racy max is fine: the peak is a diagnostic, not an invariant.
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(size: usize) {
        LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
    }

    /// The counting allocator; a unit struct delegating to [`System`].
    pub struct CountingAllocator;

    // The only unsafe in the workspace: forwarding the global-allocator
    // contract verbatim to `System`.
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size());
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                // Count a realloc as one allocation event plus a size delta.
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                if new_size >= layout.size() {
                    let grow = (new_size - layout.size()) as u64;
                    let live = LIVE_BYTES.fetch_add(grow, Ordering::Relaxed) + grow;
                    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
                } else {
                    LIVE_BYTES.fetch_sub((layout.size() - new_size) as u64, Ordering::Relaxed);
                }
            }
            p
        }
    }
}
