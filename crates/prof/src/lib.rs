//! Wall-clock self-profiling for the `cbp` engine.
//!
//! PR 1/2 gave the simulators *sim-time* observability: what the simulated
//! cluster did, and when. This crate answers the orthogonal question the
//! ROADMAP's "as fast as the hardware allows" goal needs: where does the
//! *engine itself* spend host time? It provides:
//!
//! * [`scope`] — a hierarchical RAII scope profiler. Scopes nest on a
//!   thread-local span stack; each distinct *path* of scope names becomes a
//!   node accumulating call count, total wall time and (with the
//!   `count-alloc` feature) allocation count. `cbp_simkit::run_until_observed`
//!   opens one scope per processed event, named by the simulation's
//!   [`event_kind`](https://docs.rs/) classification, so a profiled run
//!   yields a per-event-type timing + count breakdown for free.
//! * [`ProfReport`] — the deterministic tree report extracted by [`stop`]:
//!   children sorted by name, self time = total − Σ(children), rendered as
//!   an indented table or as byte-stable JSON (`{"schema":"cbp-prof",...}`).
//! * [`report::SpanEvent`] capture + [`ProfReport::to_chrome_trace`] — a
//!   **wall-clock** Chrome-trace sink, so profiler spans open in Perfetto
//!   alongside the existing *sim-time* trace from `cbp-telemetry`.
//! * [`alloc`] (feature `count-alloc`) — a counting global allocator
//!   (allocations + live/peak bytes) binaries can install to get an
//!   RSS-proxy per benchmark phase.
//!
//! # The null profiler, and overhead
//!
//! Profiling is **off by default** (the "null profiler" state): [`scope`]
//! then costs a single thread-local boolean load and branch, allocates
//! nothing, and records nothing — instrumented hot paths behave
//! byte-identically to un-instrumented ones. [`start`] flips the
//! thread-local on; [`stop`] flips it off and returns the report. The
//! engine additionally hoists the flag out of its event loop, so a
//! non-profiled run pays one branch per loop, not per trace point.
//!
//! # Example
//!
//! ```
//! cbp_prof::start(cbp_prof::ProfOptions::default());
//! {
//!     let _outer = cbp_prof::scope("run");
//!     let _inner = cbp_prof::scope("event");
//! }
//! let report = cbp_prof::stop().expect("profiler was running");
//! assert_eq!(report.roots[0].name, "run");
//! assert_eq!(report.roots[0].children[0].name, "event");
//! assert!(!cbp_prof::enabled());
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod report;
mod scope;

pub use report::{ProfNode, ProfReport, SpanEvent, PROF_SCHEMA, PROF_VERSION};
pub use scope::{enabled, scope, start, stop, ProfOptions, ScopeGuard, SPAN_CAP};
