//! Multi-dimensional resource vectors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use cbp_simkit::units::ByteSize;
use serde::{Deserialize, Serialize};

/// A CPU + memory demand or capacity.
///
/// CPU is in **millicores** (1000 = one core) because the Google trace
/// expresses demand as core fractions. Comparison is component-wise:
/// use [`Resources::fits_in`] rather than `<=` (resource vectors are only
/// partially ordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Resources {
    cpu_milli: u64,
    mem: ByteSize,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources {
        cpu_milli: 0,
        mem: ByteSize::ZERO,
    };

    /// Creates a vector from millicores and memory.
    pub const fn new(cpu_milli: u64, mem: ByteSize) -> Self {
        Resources { cpu_milli, mem }
    }

    /// Creates a vector from whole cores and memory.
    pub const fn new_cores(cores: u64, mem: ByteSize) -> Self {
        Resources {
            cpu_milli: cores * 1000,
            mem,
        }
    }

    /// CPU demand in millicores.
    pub const fn cpu_milli(&self) -> u64 {
        self.cpu_milli
    }

    /// CPU demand in fractional cores.
    pub fn cores_f64(&self) -> f64 {
        self.cpu_milli as f64 / 1000.0
    }

    /// Memory demand.
    pub const fn mem(&self) -> ByteSize {
        self.mem
    }

    /// True if both components are zero.
    pub const fn is_zero(&self) -> bool {
        self.cpu_milli == 0 && self.mem.is_zero()
    }

    /// Component-wise `self <= other`: this demand fits in that capacity.
    pub fn fits_in(&self, other: &Resources) -> bool {
        self.cpu_milli <= other.cpu_milli && self.mem <= other.mem
    }

    /// Component-wise subtraction clamped at zero.
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            cpu_milli: self.cpu_milli.saturating_sub(other.cpu_milli),
            mem: self.mem.saturating_sub(other.mem),
        }
    }

    /// The fraction of `capacity` this vector uses on its most-constrained
    /// dimension, in `[0, 1]` (0 if capacity is zero).
    pub fn dominant_share(&self, capacity: &Resources) -> f64 {
        let cpu = if capacity.cpu_milli == 0 {
            0.0
        } else {
            self.cpu_milli as f64 / capacity.cpu_milli as f64
        };
        let mem = if capacity.mem.is_zero() {
            0.0
        } else {
            self.mem.as_u64() as f64 / capacity.mem.as_u64() as f64
        };
        cpu.max(mem).min(1.0)
    }

    /// CPU-only utilization fraction against `capacity`, in `[0, 1]` — the
    /// paper's energy model is driven by CPU utilization.
    pub fn cpu_fraction_of(&self, capacity: &Resources) -> f64 {
        if capacity.cpu_milli == 0 {
            return 0.0;
        }
        (self.cpu_milli as f64 / capacity.cpu_milli as f64).min(1.0)
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu_milli: self.cpu_milli.saturating_add(rhs.cpu_milli),
            mem: self.mem + rhs.mem,
        }
    }
}
impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}
impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        debug_assert!(
            rhs.fits_in(&self),
            "Resources subtraction underflow: {self} - {rhs}"
        );
        self.saturating_sub(&rhs)
    }
}
impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}
impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} cores / {}", self.cores_f64(), self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_getters() {
        let r = Resources::new_cores(2, ByteSize::from_gb(4));
        assert_eq!(r.cpu_milli(), 2000);
        assert_eq!(r.cores_f64(), 2.0);
        assert_eq!(r.mem(), ByteSize::from_gb(4));
        assert!(!r.is_zero());
        assert!(Resources::ZERO.is_zero());
    }

    #[test]
    fn fits_in_is_component_wise() {
        let cap = Resources::new_cores(4, ByteSize::from_gb(8));
        assert!(Resources::new_cores(4, ByteSize::from_gb(8)).fits_in(&cap));
        assert!(Resources::new_cores(2, ByteSize::from_gb(2)).fits_in(&cap));
        // CPU fits but memory does not:
        assert!(!Resources::new_cores(1, ByteSize::from_gb(9)).fits_in(&cap));
        // Memory fits but CPU does not:
        assert!(!Resources::new_cores(5, ByteSize::from_gb(1)).fits_in(&cap));
    }

    #[test]
    fn arithmetic() {
        let a = Resources::new_cores(2, ByteSize::from_gb(4));
        let b = Resources::new_cores(1, ByteSize::from_gb(1));
        assert_eq!(a + b, Resources::new_cores(3, ByteSize::from_gb(5)));
        assert_eq!(a - b, Resources::new_cores(1, ByteSize::from_gb(3)));
        assert_eq!(b.saturating_sub(&a), Resources::ZERO);
        let total: Resources = vec![a, b].into_iter().sum();
        assert_eq!(total, a + b);
    }

    #[test]
    fn dominant_share() {
        let cap = Resources::new_cores(10, ByteSize::from_gb(100));
        let r = Resources::new_cores(5, ByteSize::from_gb(80));
        assert!((r.dominant_share(&cap) - 0.8).abs() < 1e-12);
        assert!((r.cpu_fraction_of(&cap) - 0.5).abs() < 1e-12);
        assert_eq!(Resources::ZERO.dominant_share(&Resources::ZERO), 0.0);
    }

    #[test]
    fn display() {
        let r = Resources::new(1500, ByteSize::from_gb(2));
        assert_eq!(format!("{r}"), "1.50 cores / 2.00 GB");
    }
}
