//! Utilization-driven energy accounting.
//!
//! The paper computes energy exactly this way: "Energy consumption was
//! calculated by taking the average CPU utilization of each machine,
//! converting it to a corresponding wattage and multiplying it by the total
//! experiment time" (§3.3.2). [`EnergyModel`] is that conversion;
//! [`EnergyMeter`] integrates it over piecewise-constant utilization.

use cbp_simkit::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Linear utilization → power conversion.
///
/// `watts(u) = idle + (peak - idle) * u` — the standard affine server power
/// model. Defaults approximate the paper's dual Xeon 5650 machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    idle_watts: f64,
    peak_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            idle_watts: 100.0,
            peak_watts: 250.0,
        }
    }
}

impl EnergyModel {
    /// Creates a model with the given idle and peak draw.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative or `peak < idle`.
    pub fn new(idle_watts: f64, peak_watts: f64) -> Self {
        assert!(idle_watts >= 0.0, "idle power must be non-negative");
        assert!(peak_watts >= idle_watts, "peak power must be >= idle power");
        EnergyModel {
            idle_watts,
            peak_watts,
        }
    }

    /// Power draw at CPU utilization `u` (clamped to `[0, 1]`).
    pub fn watts(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_watts + (self.peak_watts - self.idle_watts) * u
    }

    /// Idle draw.
    pub fn idle_watts(&self) -> f64 {
        self.idle_watts
    }

    /// Fully-loaded draw.
    pub fn peak_watts(&self) -> f64 {
        self.peak_watts
    }
}

/// Integrates one machine's energy over piecewise-constant utilization.
///
/// Call [`EnergyMeter::set_utilization`] whenever the machine's allocation
/// changes; the meter charges the elapsed interval at the previous level.
///
/// ```
/// use cbp_cluster::{EnergyMeter, EnergyModel};
/// use cbp_simkit::SimTime;
///
/// let mut m = EnergyMeter::new(EnergyModel::new(100.0, 200.0));
/// m.set_utilization(SimTime::ZERO, 1.0);
/// m.set_utilization(SimTime::from_secs(3600), 0.0); // 1 h at peak
/// assert!((m.kwh(SimTime::from_secs(3600)) - 0.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: EnergyModel,
    joules: f64,
    last_update: SimTime,
    current_util: f64,
}

impl EnergyMeter {
    /// Creates a meter starting idle at time zero.
    pub fn new(model: EnergyModel) -> Self {
        EnergyMeter {
            model,
            joules: 0.0,
            last_update: SimTime::ZERO,
            current_util: 0.0,
        }
    }

    /// The conversion model.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    fn charge_until(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "energy meter time went backwards");
        let dt: SimDuration = now.saturating_since(self.last_update);
        self.joules += self.model.watts(self.current_util) * dt.as_secs_f64();
        self.last_update = now;
    }

    /// Records that utilization changed to `utilization` at time `now`.
    pub fn set_utilization(&mut self, now: SimTime, utilization: f64) {
        self.charge_until(now);
        self.current_util = utilization.clamp(0.0, 1.0);
    }

    /// Energy consumed through `now`, in joules (includes the tail interval
    /// at the current level).
    pub fn joules(&self, now: SimTime) -> f64 {
        let tail: SimDuration = now.saturating_since(self.last_update);
        self.joules + self.model.watts(self.current_util) * tail.as_secs_f64()
    }

    /// Energy consumed through `now`, in kilowatt-hours (the unit of the
    /// paper's Fig. 3b and Fig. 8b).
    pub fn kwh(&self, now: SimTime) -> f64 {
        self.joules(now) / 3.6e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_is_affine_and_clamped() {
        let m = EnergyModel::new(100.0, 250.0);
        assert_eq!(m.watts(0.0), 100.0);
        assert_eq!(m.watts(1.0), 250.0);
        assert_eq!(m.watts(0.5), 175.0);
        assert_eq!(m.watts(-1.0), 100.0);
        assert_eq!(m.watts(2.0), 250.0);
        assert_eq!(m.idle_watts(), 100.0);
        assert_eq!(m.peak_watts(), 250.0);
    }

    #[test]
    #[should_panic(expected = "peak power")]
    fn peak_below_idle_rejected() {
        EnergyModel::new(100.0, 50.0);
    }

    #[test]
    fn meter_integrates_piecewise() {
        let mut meter = EnergyMeter::new(EnergyModel::new(100.0, 200.0));
        // 10 s idle, then 10 s at full load.
        meter.set_utilization(SimTime::from_secs(10), 1.0);
        let j = meter.joules(SimTime::from_secs(20));
        assert!((j - (100.0 * 10.0 + 200.0 * 10.0)).abs() < 1e-9);
    }

    #[test]
    fn idle_machine_still_draws_power() {
        let meter = EnergyMeter::new(EnergyModel::default());
        let j = meter.joules(SimTime::from_secs(100));
        assert!((j - 100.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn kwh_conversion() {
        let mut meter = EnergyMeter::new(EnergyModel::new(0.0, 1000.0));
        meter.set_utilization(SimTime::ZERO, 1.0);
        // 1 kW for one hour = 1 kWh.
        assert!((meter.kwh(SimTime::from_secs(3600)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_updates_at_same_instant_are_safe() {
        let mut meter = EnergyMeter::new(EnergyModel::default());
        meter.set_utilization(SimTime::from_secs(5), 0.5);
        meter.set_utilization(SimTime::from_secs(5), 0.7);
        meter.set_utilization(SimTime::from_secs(5), 0.2);
        let j = meter.joules(SimTime::from_secs(5));
        assert!((j - 100.0 * 5.0).abs() < 1e-9);
    }
}
