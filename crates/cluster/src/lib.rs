//! The compute-cluster substrate: resources, nodes, containers, energy.
//!
//! Tasks run in "containers" (YARN's term; the Google trace's "slots") that
//! reserve a slice of a node's CPU and memory. The scheduler crates
//! (`cbp-core`, `cbp-yarn`) place containers on [`Node`]s and read
//! utilization back out for the energy accounting that the paper reports in
//! Figs. 3b, 4c, 6c and 8b.
//!
//! ```
//! use cbp_cluster::{Container, ContainerId, Node, NodeId, Resources};
//! use cbp_simkit::units::ByteSize;
//!
//! let mut node = Node::new(NodeId(0), Resources::new_cores(24, ByteSize::from_gb(48)));
//! let c = Container::new(ContainerId(1), Resources::new_cores(1, ByteSize::from_gb(2)), 7);
//! node.allocate(c)?;
//! assert_eq!(node.container_count(), 1);
//! # Ok::<(), cbp_cluster::AllocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod node;
mod resources;

pub use energy::{EnergyMeter, EnergyModel};
pub use node::{AllocError, Container, ContainerId, Node, NodeId};
pub use resources::Resources;
