//! Nodes and containers.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::resources::Resources;

/// Identifier of a compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a container (unique across the cluster for one run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContainerId(pub u64);

/// A resource lease on a node, running one task.
///
/// `task` is an opaque handle owned by the scheduler layer (a task index in
/// `cbp-core`, a container-attempt key in `cbp-yarn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Container {
    id: ContainerId,
    resources: Resources,
    task: u64,
}

impl Container {
    /// Creates a container lease description.
    pub const fn new(id: ContainerId, resources: Resources, task: u64) -> Self {
        Container {
            id,
            resources,
            task,
        }
    }

    /// The container id.
    pub const fn id(&self) -> ContainerId {
        self.id
    }

    /// The reserved resources.
    pub const fn resources(&self) -> Resources {
        self.resources
    }

    /// The scheduler-level task handle.
    pub const fn task(&self) -> u64 {
        self.task
    }
}

/// Why an allocation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The node lacks free CPU or memory for the request.
    Insufficient {
        /// What was requested.
        requested: Resources,
        /// What was free.
        available: Resources,
    },
    /// A container with the same id is already on the node.
    DuplicateContainer(ContainerId),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Insufficient {
                requested,
                available,
            } => {
                write!(
                    f,
                    "insufficient resources: requested {requested}, available {available}"
                )
            }
            AllocError::DuplicateContainer(id) => {
                write!(f, "container {id:?} already allocated")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// A compute node: a capacity vector and the containers currently leased
/// from it.
///
/// Invariant (checked on every mutation): the sum of container resources
/// never exceeds capacity.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    capacity: Resources,
    allocated: Resources,
    containers: HashMap<ContainerId, Container>,
}

impl Node {
    /// Creates an empty node with the given capacity.
    pub fn new(id: NodeId, capacity: Resources) -> Self {
        Node {
            id,
            capacity,
            allocated: Resources::ZERO,
            containers: HashMap::new(),
        }
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Total capacity.
    pub fn capacity(&self) -> Resources {
        self.capacity
    }

    /// Resources currently leased.
    pub fn allocated(&self) -> Resources {
        self.allocated
    }

    /// Resources currently free.
    pub fn available(&self) -> Resources {
        self.capacity.saturating_sub(&self.allocated)
    }

    /// CPU utilization in `[0, 1]` (drives the energy model).
    pub fn cpu_utilization(&self) -> f64 {
        self.allocated.cpu_fraction_of(&self.capacity)
    }

    /// True if `demand` currently fits.
    pub fn can_fit(&self, demand: &Resources) -> bool {
        demand.fits_in(&self.available())
    }

    /// Leases a container.
    ///
    /// # Errors
    ///
    /// [`AllocError::Insufficient`] if the demand exceeds free resources, or
    /// [`AllocError::DuplicateContainer`] if the id is already present; the
    /// node is unchanged on error.
    pub fn allocate(&mut self, container: Container) -> Result<(), AllocError> {
        if self.containers.contains_key(&container.id()) {
            return Err(AllocError::DuplicateContainer(container.id()));
        }
        if !self.can_fit(&container.resources()) {
            return Err(AllocError::Insufficient {
                requested: container.resources(),
                available: self.available(),
            });
        }
        self.allocated += container.resources();
        self.containers.insert(container.id(), container);
        debug_assert!(self.allocated.fits_in(&self.capacity));
        Ok(())
    }

    /// Releases a container, returning it (e.g. so the caller can requeue
    /// its task). Returns `None` if the id is not on this node.
    pub fn release(&mut self, id: ContainerId) -> Option<Container> {
        let container = self.containers.remove(&id)?;
        self.allocated = self.allocated.saturating_sub(&container.resources());
        Some(container)
    }

    /// The container with the given id, if present.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// Number of containers on the node.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Iterates over containers (arbitrary order).
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbp_simkit::units::ByteSize;

    fn node() -> Node {
        Node::new(NodeId(0), Resources::new_cores(24, ByteSize::from_gb(48)))
    }

    fn container(id: u64, cores: u64, gb: u64) -> Container {
        Container::new(
            ContainerId(id),
            Resources::new_cores(cores, ByteSize::from_gb(gb)),
            id,
        )
    }

    #[test]
    fn allocate_release_roundtrip() {
        let mut n = node();
        n.allocate(container(1, 4, 8)).unwrap();
        assert_eq!(n.allocated(), Resources::new_cores(4, ByteSize::from_gb(8)));
        assert_eq!(
            n.available(),
            Resources::new_cores(20, ByteSize::from_gb(40))
        );
        assert_eq!(n.container_count(), 1);
        assert_eq!(n.container(ContainerId(1)).unwrap().task(), 1);
        let released = n.release(ContainerId(1)).unwrap();
        assert_eq!(released.id(), ContainerId(1));
        assert_eq!(n.allocated(), Resources::ZERO);
        assert!(n.release(ContainerId(1)).is_none());
    }

    #[test]
    fn over_allocation_rejected_and_state_unchanged() {
        let mut n = node();
        n.allocate(container(1, 20, 40)).unwrap();
        let err = n.allocate(container(2, 8, 4)).unwrap_err();
        assert!(matches!(err, AllocError::Insufficient { .. }));
        assert_eq!(n.container_count(), 1);
        // Memory-bound rejection too.
        let err = n.allocate(container(3, 1, 10)).unwrap_err();
        assert!(matches!(err, AllocError::Insufficient { .. }));
        assert!(err.to_string().contains("insufficient"));
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut n = node();
        n.allocate(container(1, 1, 1)).unwrap();
        let err = n.allocate(container(1, 1, 1)).unwrap_err();
        assert_eq!(err, AllocError::DuplicateContainer(ContainerId(1)));
    }

    #[test]
    fn exact_fill_is_allowed() {
        let mut n = node();
        n.allocate(container(1, 24, 48)).unwrap();
        assert_eq!(n.available(), Resources::ZERO);
        assert!((n.cpu_utilization() - 1.0).abs() < 1e-12);
        assert!(!n.can_fit(&Resources::new(1, ByteSize::ZERO)));
    }

    #[test]
    fn utilization_tracks_cpu_only() {
        let mut n = node();
        n.allocate(container(1, 12, 2)).unwrap();
        assert!((n.cpu_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn many_small_containers() {
        let mut n = node();
        for i in 0..24 {
            n.allocate(container(i, 1, 2)).unwrap();
        }
        assert_eq!(n.container_count(), 24);
        assert!(matches!(
            n.allocate(container(99, 1, 2)),
            Err(AllocError::Insufficient { .. })
        ));
        assert_eq!(n.containers().count(), 24);
    }
}
