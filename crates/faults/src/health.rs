//! Checkpoint-path health monitoring: per-node and global circuit
//! breakers with graceful degradation to kill.
//!
//! The paper's adaptive checkpoint-vs-kill rule (Algorithm 1) is a
//! static cost comparison: it assumes the dump/restore path works. A
//! real cluster's checkpoint path is a *time-varying* property of the
//! environment — a wedged device, a partitioned rack or a corrupted
//! CRIU install makes every dump fail, and a scheduler that keeps
//! checkpointing into a broken path burns its retry budget on every
//! victim. The [`Breaker`] here is the classic remedy: a sliding
//! failure-rate monitor with **closed → open → half-open** transitions.
//!
//! * **Closed** — checkpointing allowed; dump/restore outcomes and
//!   stall observations feed a decayed failure rate.
//! * **Open** — the failure rate crossed the threshold: the scheduler
//!   degrades to kill-based preemption (`DumpFallback("breaker-open")`)
//!   until a cooldown elapses.
//! * **Half-open** — after the cooldown one *probe* checkpoint is let
//!   through; success closes the breaker, failure re-opens it.
//!
//! Determinism: breakers are fed exclusively by simulation events and
//! consulted at deterministic points, so (seed, plan) replays reproduce
//! every transition exactly. With no [`BreakerSpec`] configured the
//! monitor is absent and the simulators take byte-identical paths.

use cbp_simkit::{SimDuration, SimTime};

use crate::BreakerSpec;

/// Circuit-breaker state (see the module docs for the transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: checkpointing allowed, outcomes observed.
    Closed,
    /// Tripped: checkpoint requests degrade to kill until the cooldown.
    Open,
    /// Probing: one checkpoint is in flight to test the path.
    HalfOpen,
}

/// A state-transition notification (traced as `breaker_open` /
/// `breaker_close`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Closed/half-open → open.
    Opened,
    /// Half-open probe succeeded → closed.
    Closed,
}

/// One circuit breaker: a decayed failure-rate window plus the state
/// machine.
#[derive(Debug, Clone)]
pub struct Breaker {
    spec: BreakerSpec,
    state: BreakerState,
    /// Decayed count of failed observations.
    fail_mass: f64,
    /// Decayed count of all observations.
    total_mass: f64,
    /// When the breaker last opened (None unless open).
    opened_at: Option<SimTime>,
    /// Cumulative time spent open.
    open_secs: f64,
    /// A half-open probe is in flight (deny further checkpoints).
    probe_inflight: bool,
}

impl Breaker {
    /// A closed breaker with an empty window.
    pub fn new(spec: BreakerSpec) -> Self {
        Breaker {
            spec,
            state: BreakerState::Closed,
            fail_mass: 0.0,
            total_mass: 0.0,
            opened_at: None,
            open_secs: 0.0,
            probe_inflight: false,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Decayed failure rate over the sliding window (0 when empty).
    pub fn failure_rate(&self) -> f64 {
        if self.total_mass <= 0.0 {
            0.0
        } else {
            self.fail_mass / self.total_mass
        }
    }

    fn open(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = Some(now);
        self.probe_inflight = false;
    }

    fn close(&mut self) {
        self.state = BreakerState::Closed;
        self.probe_inflight = false;
        // Fresh window: pre-open history must not immediately re-trip.
        self.fail_mass = 0.0;
        self.total_mass = 0.0;
    }

    /// Feeds one dump/restore outcome (or stall observation, as a
    /// failure) into the window and runs the state machine. Returns the
    /// transition, if any.
    pub fn observe(&mut self, now: SimTime, ok: bool) -> Option<BreakerTransition> {
        self.fail_mass *= self.spec.decay;
        self.total_mass *= self.spec.decay;
        self.total_mass += 1.0;
        if !ok {
            self.fail_mass += 1.0;
        }
        match self.state {
            BreakerState::Closed => {
                if self.total_mass >= self.spec.min_samples
                    && self.failure_rate() >= self.spec.threshold
                {
                    self.open(now);
                    Some(BreakerTransition::Opened)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.close();
                    Some(BreakerTransition::Closed)
                } else {
                    self.open(now);
                    Some(BreakerTransition::Opened)
                }
            }
            // Outcomes of operations started before the trip land here;
            // they already weighed in via the window.
            BreakerState::Open => None,
        }
    }

    /// Would a checkpoint request at `now` be let through? Pure check —
    /// call [`Breaker::note_allowed`] only once the request actually
    /// proceeds (a composite monitor may veto it elsewhere).
    pub fn would_allow(&self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => self
                .opened_at
                .is_some_and(|t| now.saturating_since(t) >= self.spec.cooldown),
            BreakerState::HalfOpen => !self.probe_inflight,
        }
    }

    /// Commits the [`Breaker::would_allow`] decision: an open breaker
    /// past its cooldown moves to half-open and the probe slot is taken.
    pub fn note_allowed(&mut self, now: SimTime) {
        match self.state {
            BreakerState::Closed => {}
            BreakerState::Open => {
                if let Some(t) = self.opened_at.take() {
                    self.open_secs += now.saturating_since(t).as_secs_f64();
                }
                self.state = BreakerState::HalfOpen;
                self.probe_inflight = true;
            }
            BreakerState::HalfOpen => self.probe_inflight = true,
        }
    }

    /// Cumulative open time, closing the books at `end` if still open.
    pub fn open_secs(&self, end: SimTime) -> f64 {
        match self.opened_at {
            Some(t) => self.open_secs + end.saturating_since(t).as_secs_f64(),
            None => self.open_secs,
        }
    }
}

/// A breaker state change surfaced to the simulator for tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthEvent {
    /// The node whose breaker transitioned; `None` for the global one.
    pub node: Option<u32>,
    /// The transition.
    pub transition: BreakerTransition,
}

/// The checkpoint-path health monitor: one breaker per node plus a
/// global breaker fed by every observation (a cluster-wide pathology —
/// e.g. a partitioned DFS — trips the global breaker even when no
/// single node accumulates enough samples).
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    nodes: Vec<Breaker>,
    global: Breaker,
}

impl HealthMonitor {
    /// A monitor for `nodes` nodes, all breakers closed.
    pub fn new(spec: BreakerSpec, nodes: usize) -> Self {
        HealthMonitor {
            nodes: vec![Breaker::new(spec); nodes],
            global: Breaker::new(spec),
        }
    }

    /// Feeds one checkpoint-path outcome on `node` into the node's and
    /// the global breaker. Returns the transitions to trace (at most
    /// one per breaker).
    pub fn observe(&mut self, node: u32, now: SimTime, ok: bool) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        if let Some(b) = self.nodes.get_mut(node as usize) {
            if let Some(transition) = b.observe(now, ok) {
                events.push(HealthEvent {
                    node: Some(node),
                    transition,
                });
            }
        }
        if let Some(transition) = self.global.observe(now, ok) {
            events.push(HealthEvent {
                node: None,
                transition,
            });
        }
        events
    }

    /// Is a checkpoint on `node` allowed at `now`? Both the node's and
    /// the global breaker must agree; the (half-open) probe slot is
    /// consumed only when both do.
    pub fn allow(&mut self, node: u32, now: SimTime) -> bool {
        let node_ok = self
            .nodes
            .get(node as usize)
            .is_none_or(|b| b.would_allow(now));
        if node_ok && self.global.would_allow(now) {
            if let Some(b) = self.nodes.get_mut(node as usize) {
                b.note_allowed(now);
            }
            self.global.note_allowed(now);
            true
        } else {
            false
        }
    }

    /// The state of `node`'s breaker (for tests).
    pub fn node_state(&self, node: u32) -> BreakerState {
        self.nodes
            .get(node as usize)
            .map(|b| b.state())
            .unwrap_or(BreakerState::Closed)
    }

    /// The global breaker's state.
    pub fn global_state(&self) -> BreakerState {
        self.global.state()
    }

    /// Total breaker-open seconds across every node breaker and the
    /// global one, closing the books at `end`.
    pub fn open_secs_total(&self, end: SimTime) -> f64 {
        self.nodes.iter().map(|b| b.open_secs(end)).sum::<f64>() + self.global.open_secs(end)
    }
}

/// Convenience: the cooldown a monitor was built with (used by tests).
impl HealthMonitor {
    /// The spec's cooldown.
    pub fn cooldown(&self) -> SimDuration {
        self.global.spec.cooldown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BreakerSpec {
        BreakerSpec {
            threshold: 0.5,
            min_samples: 4.0,
            cooldown: SimDuration::from_secs(600),
            decay: 1.0,
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn opens_after_threshold_and_min_samples() {
        let mut b = Breaker::new(spec());
        // Three failures: rate 1.0 but below min_samples — still closed.
        for i in 0..3 {
            assert_eq!(b.observe(t(i), false), None);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        // Fourth failure reaches min_samples: opens.
        assert_eq!(b.observe(t(3), false), Some(BreakerTransition::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.would_allow(t(4)), "open breaker denies inside cooldown");
    }

    #[test]
    fn successes_keep_it_closed() {
        let mut b = Breaker::new(spec());
        for i in 0..100 {
            let r = b.observe(t(i), i % 4 != 0); // 25% failures < 50%
            assert_eq!(r, None);
            assert_eq!(b.state(), BreakerState::Closed);
        }
    }

    #[test]
    fn half_open_probe_success_closes() {
        let mut b = Breaker::new(spec());
        for i in 0..4 {
            b.observe(t(i), false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown not yet elapsed.
        assert!(!b.would_allow(t(300)));
        // Cooldown elapsed: one probe allowed, a second denied.
        assert!(b.would_allow(t(700)));
        b.note_allowed(t(700));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.would_allow(t(701)), "only one probe in flight");
        // Probe succeeds: closed with a fresh window.
        assert_eq!(b.observe(t(720), true), Some(BreakerTransition::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.failure_rate(), 0.0);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = Breaker::new(spec());
        for i in 0..4 {
            b.observe(t(i), false);
        }
        assert!(b.would_allow(t(700)));
        b.note_allowed(t(700));
        assert_eq!(b.observe(t(720), false), Some(BreakerTransition::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        // The new open period restarts the cooldown clock.
        assert!(!b.would_allow(t(900)));
        assert!(b.would_allow(t(1400)));
    }

    #[test]
    fn open_secs_accrues_across_periods() {
        let mut b = Breaker::new(spec());
        for i in 0..4 {
            b.observe(t(i), false);
        }
        // Open at t=3; probe at t=700 ends the first open period (697 s).
        b.note_allowed(t(700));
        assert!((b.open_secs(t(800)) - 697.0).abs() < 1e-9);
        // Probe fails at 720: open again; books close at 1000 (+280 s).
        b.observe(t(720), false);
        assert!((b.open_secs(t(1000)) - (697.0 + 280.0)).abs() < 1e-9);
    }

    #[test]
    fn decay_forgets_old_failures() {
        let mut b = Breaker::new(BreakerSpec {
            decay: 0.5,
            ..spec()
        });
        // Three old failures decay away under a stream of successes.
        for i in 0..3 {
            b.observe(t(i), false);
        }
        for i in 3..20 {
            b.observe(t(i), true);
        }
        assert!(b.failure_rate() < 0.01);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn monitor_is_per_node_with_a_global_backstop() {
        let mut m = HealthMonitor::new(spec(), 4);
        // Node 1 fails repeatedly; node 0 stays healthy.
        let mut opened = Vec::new();
        for i in 0..4 {
            opened.extend(m.observe(1, t(i), false));
            opened.extend(m.observe(0, t(i), true));
        }
        assert_eq!(m.node_state(1), BreakerState::Open);
        assert_eq!(m.node_state(0), BreakerState::Closed);
        // Global saw 4 failures / 8 observations = 0.5: also open.
        assert_eq!(m.global_state(), BreakerState::Open);
        assert!(opened
            .iter()
            .any(|e| e.node == Some(1) && e.transition == BreakerTransition::Opened));
        assert!(opened
            .iter()
            .any(|e| e.node.is_none() && e.transition == BreakerTransition::Opened));
        // With the global breaker open, even the healthy node is denied.
        assert!(!m.allow(0, t(10)));
    }

    #[test]
    fn allow_consumes_probe_only_when_both_agree() {
        let mut m = HealthMonitor::new(spec(), 2);
        for i in 0..4 {
            m.observe(0, t(i), false);
        }
        // Node 0 and global both open. Past the cooldown, node 1 is
        // closed and global probes: allowed.
        assert!(m.allow(1, t(700)));
        // Global probe in flight: node 0 (also past cooldown) is denied
        // and must NOT have consumed its own probe slot.
        assert!(!m.allow(0, t(701)));
        assert_eq!(m.node_state(0), BreakerState::Open);
        // Global probe succeeds: global closes, node 0 may now probe.
        m.observe(1, t(710), true);
        assert_eq!(m.global_state(), BreakerState::Closed);
        assert!(m.allow(0, t(711)));
        assert_eq!(m.node_state(0), BreakerState::HalfOpen);
    }
}
