//! Deterministic fault plans for the `cbp` simulators.
//!
//! The paper's argument — checkpoint-based preemption beats kill —
//! hinges on the dump/restore path being dependable. Real CRIU dumps
//! fail, images corrupt, storage devices stall, and ApplicationMasters
//! go unresponsive. This crate models those regimes as a **seeded,
//! stateless fault plan**: every injection decision is a pure hash of
//! `(plan seed, operation tag, identity, attempt)`, so
//!
//! * the same `(simulation seed, fault plan)` pair always produces the
//!   same faults — byte-identical traces, replayable chaos runs; and
//! * fault decisions never draw from a simulator's RNG stream, so
//!   *enabling* a plan with all-zero probabilities is observationally
//!   identical to running without one.
//!
//! [`FaultSpec`] is the declarative knob set (probabilities, retry
//! budgets, stall windows); [`FaultPlan`] is the cheap decision oracle
//! built from it. The simulators (`cbp-core`'s `ClusterSim`,
//! `cbp-yarn`'s `YarnSim`) consult the plan at each dump completion,
//! restore completion, preemption RPC and device operation, and apply
//! the *handling policies* — bounded retries with exponential backoff,
//! kill fallback, restart-from-scratch, RM-side escalation — that keep
//! every submitted task live.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use cbp_simkit::{SimDuration, SimTime};

/// Storage-device degradation: during a stalled window the device's
/// effective bandwidth drops by `slowdown`.
///
/// Simulated time is cut into fixed windows of `window` length; each
/// `(node, window index)` pair is independently stalled with
/// probability `prob`. Cost estimators consult the same oracle, so
/// degradation-aware scheduling sees the slowdown it will pay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallSpec {
    /// Probability that a given `(node, window)` is degraded.
    pub prob: f64,
    /// Service-time multiplier while degraded (≥ 1).
    pub slowdown: f64,
    /// Window length.
    pub window: SimDuration,
}

impl Default for StallSpec {
    fn default() -> Self {
        StallSpec {
            prob: 0.0,
            slowdown: 4.0,
            window: SimDuration::from_secs(600),
        }
    }
}

/// Declarative fault plan: per-operation fault probabilities plus the
/// retry/fallback budgets the recovery policies use.
///
/// All probabilities default to zero; a default spec injects nothing
/// and (by construction of [`FaultPlan`]) perturbs nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed of the fault plan's decision hash (independent of the
    /// simulation seed: the same workload can be replayed under many
    /// plans, or many workloads under one plan).
    pub seed: u64,
    /// Probability that one checkpoint dump attempt fails.
    pub dump_fail_prob: f64,
    /// Probability that one restore attempt fails transiently (a retry
    /// — e.g. from a surviving HDFS replica — may succeed).
    pub restore_fail_prob: f64,
    /// Probability that a checkpoint image is corrupted at dump time:
    /// every restore of it fails, forcing a restart from scratch.
    pub corrupt_image_prob: f64,
    /// Probability that an ApplicationMaster ignores a preemption
    /// request (YARN protocol simulator only).
    pub am_unresponsive_prob: f64,
    /// Storage degradation & stall windows (none by default).
    pub stall: Option<StallSpec>,
    /// Dump retries after the first failed attempt before falling back
    /// to a kill (`"dump-fail"`).
    pub max_dump_retries: u32,
    /// Base backoff before a dump retry; doubles per attempt.
    pub dump_retry_backoff: SimDuration,
    /// Restore retries after the first failed attempt before
    /// restarting the task from scratch.
    pub max_restore_retries: u32,
    /// RM-side escalation deadline for an unresponsive AM when no
    /// `graceful_timeout` is configured (liveness backstop).
    pub escalation_timeout: SimDuration,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            dump_fail_prob: 0.0,
            restore_fail_prob: 0.0,
            corrupt_image_prob: 0.0,
            am_unresponsive_prob: 0.0,
            stall: None,
            max_dump_retries: 2,
            dump_retry_backoff: SimDuration::from_secs(5),
            max_restore_retries: 2,
            escalation_timeout: SimDuration::from_secs(60),
        }
    }
}

impl FaultSpec {
    /// The `light` chaos profile: occasional faults, quick recovery.
    pub fn light() -> Self {
        FaultSpec {
            dump_fail_prob: 0.05,
            restore_fail_prob: 0.05,
            corrupt_image_prob: 0.01,
            am_unresponsive_prob: 0.02,
            stall: Some(StallSpec {
                prob: 0.05,
                ..StallSpec::default()
            }),
            ..FaultSpec::default()
        }
    }

    /// The `heavy` chaos profile: the hostile regime where checkpoint
    /// value can invert.
    pub fn heavy() -> Self {
        FaultSpec {
            dump_fail_prob: 0.25,
            restore_fail_prob: 0.25,
            corrupt_image_prob: 0.10,
            am_unresponsive_prob: 0.15,
            stall: Some(StallSpec {
                prob: 0.25,
                slowdown: 8.0,
                window: SimDuration::from_secs(300),
            }),
            ..FaultSpec::default()
        }
    }

    /// Parses a CLI fault spec.
    ///
    /// Accepts a named profile (`off`, `light`, `heavy`) or a
    /// comma-separated `key=value` list, optionally starting from a
    /// profile (`heavy,seed=7`). Keys:
    ///
    /// | key | meaning |
    /// |---|---|
    /// | `seed` | fault-plan seed (u64) |
    /// | `dump` | dump failure probability |
    /// | `restore` | restore failure probability |
    /// | `corrupt` | corrupted-image probability |
    /// | `am` | AM-unresponsive probability |
    /// | `stall` | device stall-window probability |
    /// | `slowdown` | stalled-window service multiplier |
    /// | `window` | stall window length, seconds |
    /// | `dump-retries` | dump retry budget |
    /// | `restore-retries` | restore retry budget |
    /// | `backoff` | base dump retry backoff, seconds |
    /// | `escalation` | AM escalation deadline, seconds |
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for (i, part) in text.split(',').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part {
                "off" => {
                    spec = FaultSpec::default();
                    continue;
                }
                "light" => {
                    spec = FaultSpec::light();
                    continue;
                }
                "heavy" => {
                    spec = FaultSpec::heavy();
                    continue;
                }
                _ => {}
            }
            let Some((key, value)) = part.split_once('=') else {
                return Err(format!(
                    "fault spec item {i} ({part:?}): expected profile \
                     (off/light/heavy) or key=value"
                ));
            };
            let prob = |v: &str| -> Result<f64, String> {
                v.parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("fault spec {key}={v}: expected probability in [0,1]"))
            };
            let secs = |v: &str| -> Result<SimDuration, String> {
                v.parse::<f64>()
                    .ok()
                    .filter(|s| *s >= 0.0)
                    .map(SimDuration::from_secs_f64)
                    .ok_or_else(|| format!("fault spec {key}={v}: expected seconds >= 0"))
            };
            match key {
                "seed" => {
                    spec.seed = value
                        .parse()
                        .map_err(|_| format!("fault spec seed={value}: expected u64"))?;
                }
                "dump" => spec.dump_fail_prob = prob(value)?,
                "restore" => spec.restore_fail_prob = prob(value)?,
                "corrupt" => spec.corrupt_image_prob = prob(value)?,
                "am" => spec.am_unresponsive_prob = prob(value)?,
                "stall" => {
                    spec.stall.get_or_insert_with(StallSpec::default).prob = prob(value)?;
                }
                "slowdown" => {
                    let s = value
                        .parse::<f64>()
                        .ok()
                        .filter(|s| *s >= 1.0)
                        .ok_or_else(|| {
                            format!("fault spec slowdown={value}: expected factor >= 1")
                        })?;
                    spec.stall.get_or_insert_with(StallSpec::default).slowdown = s;
                }
                "window" => {
                    let w = secs(value)?;
                    if w.is_zero() {
                        return Err("fault spec window=0: window must be positive".into());
                    }
                    spec.stall.get_or_insert_with(StallSpec::default).window = w;
                }
                "dump-retries" => {
                    spec.max_dump_retries = value
                        .parse()
                        .map_err(|_| format!("fault spec dump-retries={value}: expected u32"))?;
                }
                "restore-retries" => {
                    spec.max_restore_retries = value
                        .parse()
                        .map_err(|_| format!("fault spec restore-retries={value}: expected u32"))?;
                }
                "backoff" => spec.dump_retry_backoff = secs(value)?,
                "escalation" => spec.escalation_timeout = secs(value)?,
                other => return Err(format!("fault spec: unknown key {other:?}")),
            }
        }
        Ok(spec)
    }

    /// True if every fault probability is zero (the plan injects
    /// nothing; stall windows with zero probability also count as
    /// inert).
    pub fn is_inert(&self) -> bool {
        self.dump_fail_prob == 0.0
            && self.restore_fail_prob == 0.0
            && self.corrupt_image_prob == 0.0
            && self.am_unresponsive_prob == 0.0
            && self.stall.is_none_or(|s| s.prob == 0.0)
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} dump={} restore={} corrupt={} am={}",
            self.seed,
            self.dump_fail_prob,
            self.restore_fail_prob,
            self.corrupt_image_prob,
            self.am_unresponsive_prob,
        )?;
        if let Some(s) = self.stall {
            write!(
                f,
                " stall={} slowdown={} window={}s",
                s.prob,
                s.slowdown,
                s.window.as_secs_f64()
            )?;
        }
        Ok(())
    }
}

// Domain-separation tags: one per decision family, so e.g. dump and
// restore faults for the same (task, epoch, attempt) are independent.
const TAG_DUMP: u64 = 0x009D_5F01;
const TAG_RESTORE: u64 = 0x009D_5F02;
const TAG_CORRUPT: u64 = 0x009D_5F03;
const TAG_AM: u64 = 0x009D_5F04;
const TAG_STALL: u64 = 0x009D_5F05;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform f64 in `[0, 1)` (53 mantissa bits).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The decision oracle built from a [`FaultSpec`].
///
/// Every method is a pure function of `(spec, arguments)` — no internal
/// state, no RNG stream — so decisions are order-independent and the
/// plan can be consulted from any point in the event loop without
/// perturbing determinism.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
}

impl FaultPlan {
    /// Builds the oracle.
    pub fn new(spec: FaultSpec) -> Self {
        FaultPlan { spec }
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    fn decide(&self, tag: u64, a: u64, b: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let h = mix(mix(mix(mix(self.spec.seed) ^ tag) ^ a) ^ b);
        unit(h) < p
    }

    /// Does dump attempt `attempt` of `(task, epoch)` fail?
    pub fn dump_fails(&self, task: u64, epoch: u32, attempt: u32) -> bool {
        self.decide(
            TAG_DUMP,
            task,
            ((epoch as u64) << 32) | attempt as u64,
            self.spec.dump_fail_prob,
        )
    }

    /// Does restore attempt `attempt` of `(task, epoch)` fail
    /// transiently?
    pub fn restore_fails(&self, task: u64, epoch: u32, attempt: u32) -> bool {
        self.decide(
            TAG_RESTORE,
            task,
            ((epoch as u64) << 32) | attempt as u64,
            self.spec.restore_fail_prob,
        )
    }

    /// Is the image dumped at `(task, epoch)` corrupted? Corruption is
    /// decided per image, not per attempt: retries never help.
    pub fn image_corrupt(&self, task: u64, epoch: u32) -> bool {
        self.decide(
            TAG_CORRUPT,
            task,
            epoch as u64,
            self.spec.corrupt_image_prob,
        )
    }

    /// Does the AM ignore the preemption request issued at `(task,
    /// epoch)`?
    pub fn am_unresponsive(&self, task: u64, epoch: u32) -> bool {
        self.decide(TAG_AM, task, epoch as u64, self.spec.am_unresponsive_prob)
    }

    /// Service-time multiplier for storage operations on `node` at
    /// `now` (1.0 when healthy, `slowdown` inside a stalled window).
    pub fn device_factor(&self, node: u32, now: SimTime) -> f64 {
        let Some(stall) = self.spec.stall else {
            return 1.0;
        };
        if stall.prob <= 0.0 {
            return 1.0;
        }
        let widx = now.as_micros() / stall.window.as_micros().max(1);
        if self.decide(TAG_STALL, node as u64, widx, stall.prob) {
            stall.slowdown.max(1.0)
        } else {
            1.0
        }
    }

    /// Backoff before dump retry `attempt` (1-based): exponential,
    /// doubling per attempt, capped at 16× the base.
    pub fn dump_retry_backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(4);
        SimDuration::from_micros(
            self.spec
                .dump_retry_backoff
                .as_micros()
                .saturating_mul(1u64 << shift),
        )
    }

    /// Dump retry budget (attempts allowed after the first failure).
    pub fn max_dump_retries(&self) -> u32 {
        self.spec.max_dump_retries
    }

    /// Restore retry budget.
    pub fn max_restore_retries(&self) -> u32 {
        self.spec.max_restore_retries
    }

    /// RM-side escalation deadline for an unresponsive AM.
    pub fn escalation_timeout(&self) -> SimDuration {
        self.spec.escalation_timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let plan = FaultPlan::new(FaultSpec {
            dump_fail_prob: 0.5,
            restore_fail_prob: 0.5,
            ..FaultSpec::default()
        });
        let a: Vec<bool> = (0..100).map(|i| plan.dump_fails(i, 0, 0)).collect();
        // Consulting other decision families in between changes nothing.
        let _ = plan.restore_fails(3, 1, 2);
        let b: Vec<bool> = (0..100).map(|i| plan.dump_fails(i, 0, 0)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "p=0.5 over 100 draws fires");
        assert!(!a.iter().all(|&x| x), "p=0.5 over 100 draws also misses");
    }

    #[test]
    fn zero_probability_never_fires() {
        let plan = FaultPlan::new(FaultSpec::default());
        assert!(plan.spec().is_inert());
        for t in 0..1000u64 {
            assert!(!plan.dump_fails(t, 0, 0));
            assert!(!plan.restore_fails(t, 0, 0));
            assert!(!plan.image_corrupt(t, 0));
            assert!(!plan.am_unresponsive(t, 0));
            assert_eq!(plan.device_factor(t as u32, SimTime::from_secs(t)), 1.0);
        }
    }

    #[test]
    fn unit_probability_always_fires() {
        let plan = FaultPlan::new(FaultSpec {
            dump_fail_prob: 1.0,
            ..FaultSpec::default()
        });
        for t in 0..100u64 {
            assert!(plan.dump_fails(t, 3, 1));
        }
    }

    #[test]
    fn seeds_decouple_plans() {
        let a = FaultPlan::new(FaultSpec {
            seed: 1,
            dump_fail_prob: 0.5,
            ..FaultSpec::default()
        });
        let b = FaultPlan::new(FaultSpec {
            seed: 2,
            dump_fail_prob: 0.5,
            ..FaultSpec::default()
        });
        let same = (0..256u64)
            .filter(|&t| a.dump_fails(t, 0, 0) == b.dump_fails(t, 0, 0))
            .count();
        assert!(same < 256, "different seeds must disagree somewhere");
    }

    #[test]
    fn families_are_domain_separated() {
        let plan = FaultPlan::new(FaultSpec {
            dump_fail_prob: 0.5,
            restore_fail_prob: 0.5,
            ..FaultSpec::default()
        });
        let agree = (0..256u64)
            .filter(|&t| plan.dump_fails(t, 0, 0) == plan.restore_fails(t, 0, 0))
            .count();
        assert!(agree < 256, "dump and restore draws must be independent");
    }

    #[test]
    fn empirical_rate_tracks_probability() {
        let plan = FaultPlan::new(FaultSpec {
            seed: 9,
            dump_fail_prob: 0.2,
            ..FaultSpec::default()
        });
        let n = 20_000u64;
        let hits = (0..n).filter(|&t| plan.dump_fails(t, 0, 0)).count() as f64;
        let rate = hits / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate} far from 0.2");
    }

    #[test]
    fn stall_windows_are_stable_within_a_window() {
        let plan = FaultPlan::new(FaultSpec {
            stall: Some(StallSpec {
                prob: 0.5,
                slowdown: 3.0,
                window: SimDuration::from_secs(100),
            }),
            ..FaultSpec::default()
        });
        let mut stalled = 0;
        for w in 0..200u64 {
            let t0 = SimTime::from_secs(w * 100);
            let t1 = SimTime::from_secs(w * 100 + 99);
            let f0 = plan.device_factor(0, t0);
            let f1 = plan.device_factor(0, t1);
            assert_eq!(f0, f1, "factor is constant inside window {w}");
            assert!(f0 == 1.0 || f0 == 3.0);
            if f0 > 1.0 {
                stalled += 1;
            }
        }
        assert!(stalled > 50 && stalled < 150, "stalled {stalled}/200");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let plan = FaultPlan::new(FaultSpec {
            dump_retry_backoff: SimDuration::from_secs(5),
            ..FaultSpec::default()
        });
        assert_eq!(plan.dump_retry_backoff(1), SimDuration::from_secs(5));
        assert_eq!(plan.dump_retry_backoff(2), SimDuration::from_secs(10));
        assert_eq!(plan.dump_retry_backoff(3), SimDuration::from_secs(20));
        assert_eq!(plan.dump_retry_backoff(100), SimDuration::from_secs(80));
    }

    #[test]
    fn parse_profiles_and_overrides() {
        assert_eq!(FaultSpec::parse("off").unwrap(), FaultSpec::default());
        assert_eq!(FaultSpec::parse("light").unwrap(), FaultSpec::light());
        assert_eq!(FaultSpec::parse("heavy").unwrap(), FaultSpec::heavy());
        let s = FaultSpec::parse("dump=0.2,restore=0.1,corrupt=0.05,am=0.3,seed=7").unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.dump_fail_prob, 0.2);
        assert_eq!(s.restore_fail_prob, 0.1);
        assert_eq!(s.corrupt_image_prob, 0.05);
        assert_eq!(s.am_unresponsive_prob, 0.3);
        let s = FaultSpec::parse("heavy,seed=3,dump=0.5").unwrap();
        assert_eq!(s.seed, 3);
        assert_eq!(s.dump_fail_prob, 0.5);
        assert_eq!(s.restore_fail_prob, FaultSpec::heavy().restore_fail_prob);
        let s = FaultSpec::parse("stall=0.4,slowdown=6,window=120").unwrap();
        let st = s.stall.unwrap();
        assert_eq!(st.prob, 0.4);
        assert_eq!(st.slowdown, 6.0);
        assert_eq!(st.window, SimDuration::from_secs(120));
        let s =
            FaultSpec::parse("dump-retries=5,restore-retries=1,backoff=2,escalation=30").unwrap();
        assert_eq!(s.max_dump_retries, 5);
        assert_eq!(s.max_restore_retries, 1);
        assert_eq!(s.dump_retry_backoff, SimDuration::from_secs(2));
        assert_eq!(s.escalation_timeout, SimDuration::from_secs(30));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(FaultSpec::parse("dump=1.5").is_err());
        assert!(FaultSpec::parse("dump=-0.1").is_err());
        assert!(FaultSpec::parse("slowdown=0.5").is_err());
        assert!(FaultSpec::parse("window=0").is_err());
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("noequals").is_err());
        assert!(FaultSpec::parse("seed=abc").is_err());
    }

    #[test]
    fn display_is_compact() {
        let s = FaultSpec::parse("light").unwrap();
        let text = format!("{s}");
        assert!(text.contains("dump=0.05"));
        assert!(text.contains("stall=0.05"));
    }
}
